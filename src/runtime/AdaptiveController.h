//===- runtime/AdaptiveController.h - Online tiering controller -*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive execution controller: replaces the paper's offline two-pass
/// scheme (profile run, then recompile) with an online loop over the same
/// machinery.  Execution starts in tier 0 — the plainly decoded engine with
/// AdaptiveHooks sampling every Nth conditional branch.  Samples feed three
/// consumers:
///
///  - a HotnessSampler (per-branch bias for the hot-first layout, and
///    per-function sample counts for the tier-up decision),
///  - per-sequence range-bin counters: the sampled compare value is
///    classified into the same explicit-then-default bins the offline
///    instrumenter uses, giving a live partial profile that feeds the
///    paper's Figure 8 ordering selection unchanged,
///  - a DriftDetector per sequence, which flags phase shifts in the value
///    distribution after a version is deployed.
///
/// When a function's estimated branch executions cross HotThreshold the
/// controller runs ordering selection plus the decode-time fuser on the
/// live profile — inline, or on a background worker — and publishes the
/// result as a ProgramVersion.  The engines' TrySwap hook then migrates
/// live activations onto it at block-boundary safe points.  Re-optimization
/// on drift is limited by a recompile budget and two hysteresis rules
/// (minimum samples between recompiles; unchanged ordering-decision
/// signature suppresses the rebuild).
///
/// Sampling and swapping never touch observable behaviour: DynamicCounts,
/// predictor feeds, output, exit values, traps, and instruction-limit
/// behaviour stay bit-identical to a from-scratch run of any engine.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_RUNTIME_ADAPTIVECONTROLLER_H
#define BROPT_RUNTIME_ADAPTIVECONTROLLER_H

#include "core/Reorder.h"
#include "core/SequenceDetection.h"
#include "profile/ProfileDB.h"
#include "runtime/DriftDetector.h"
#include "runtime/HotnessSampler.h"
#include "runtime/SwapPoint.h"
#include "sim/Interpreter.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace bropt {

class AsyncNativeCompiler;
class NativeCompileJob;
class NativeProgram;
class NativeRunner;

/// Tiering knobs.  The defaults suit long-running workloads; tests and the
/// fuzz oracle shrink the thresholds to exercise tiering on small inputs.
struct RuntimeOptions {
  /// Estimated conditional-branch executions (samples * interval) a single
  /// function must accumulate before the module tiers up.
  uint64_t HotThreshold = 50'000;
  /// Conditional branches between samples; 1 samples every branch.
  uint32_t SampleInterval = 64;
  /// Samples per sequence in one drift-detection window.
  uint32_t DriftWindow = 256;
  /// Normalized histogram distance in [0, 1] above which a window counts
  /// as drift.
  double DriftThreshold = 0.35;
  /// Total optimized builds (tier-up included) one controller may run.
  unsigned MaxRecompiles = 8;
  /// Hysteresis: samples that must pass after a build before drift may
  /// trigger the next one.
  uint64_t MinSamplesBetweenRecompiles = 2048;
  /// Run optimization jobs on a background worker thread.  False (the
  /// default) runs them inline at the triggering sample, which makes swap
  /// timing deterministic — what the tests and the fuzz oracle need.
  bool Background = false;
  /// Base fuser configuration; Profile and Hotness are overwritten per job
  /// with the live snapshot.
  FuseOptions Fuse;
  /// Optional tiering-event log sink.  With Background set the callback
  /// may be invoked from the worker thread.
  std::function<void(const std::string &)> Trace;

  // --- Tier-2 (native) knobs; ignored unless NativeTier is set ---

  /// Compile functions that stay hot past NativeThreshold down to real
  /// machine code (CEmitter + NativeRunner) and run whole activations
  /// natively.  Requires the fused tier to have deployed first: the native
  /// body is built from the same ordering decisions, so the tier ladder is
  /// tree/decoded -> fused -> native.
  bool NativeTier = false;
  /// Estimated conditional-branch executions a function must accumulate
  /// before it is considered for the native tier.
  uint64_t NativeThreshold = 500'000;
  /// Hysteresis: samples that must pass after one native build before the
  /// next may start (the first build is exempt).
  uint64_t MinSamplesBetweenNativeBuilds = 4096;
  /// Total native builds one controller may launch; once spent the
  /// controller settles permanently in the fused tier.  Re-activating a
  /// previously built body costs nothing and is never counted.
  unsigned MaxNativeCompiles = 4;
  /// While native, every Nth activation runs interpreted so sampling can
  /// still observe drift.  The recheck interval starts at NativeRecheckMin
  /// and doubles after each clean recheck up to NativeRecheckMax
  /// (exponential backoff: steady state pays ~1/Max in interpreter runs);
  /// a de-optimization resets it to the minimum.
  uint32_t NativeRecheckMin = 8;
  uint32_t NativeRecheckMax = 128;
  /// Wall-clock cap on one host-compiler invocation; 0 means no cap.  On
  /// expiry the compiler's process group is killed and the controller
  /// falls back to the fused tier for good.
  double NativeCompileTimeout = 0;
  /// Default deadline for drainBackgroundWork(); 0 waits forever.
  double DrainTimeoutSeconds = 60.0;
  /// Entry function the emitted native body exposes (and the only call
  /// closure it contains).
  std::string EntryName = "main";
  /// Compiles go through this runner; null uses NativeRunner::shared().
  /// Tests point it at a private runner to fault-inject a hung compiler
  /// without wedging the process-wide cache.
  NativeRunner *Runner = nullptr;
  /// Shape-selection options the tier-2 native rebuild applies (pass 2 on
  /// the live profile snapshot).  Callers compiling misprediction-aware
  /// pass the same armed cost model here so the tier ladder selects the
  /// same shapes the offline compile would (docs/PREDICT.md).
  ReorderOptions Reorder;
  /// Zoo name of the targeted predictor; non-empty lets importProfile
  /// calibrate Reorder.Cost's quality from a saved Misprediction plane.
  std::string Predictor;
};

/// Counters describing what the controller did.  Read via stats() between
/// runs (after drainBackgroundWork() when Background is set).
struct RuntimeStats {
  uint64_t SamplesTaken = 0;     ///< OnSample invocations
  uint64_t TierUps = 0;          ///< functions that crossed HotThreshold
  uint64_t Swaps = 0;            ///< activations migrated at a safe point
  uint64_t DeferredSwaps = 0;    ///< safe points with no image in the target
  uint64_t DriftEvents = 0;      ///< drift windows above the threshold
  uint64_t Recompiles = 0;       ///< optimized builds published
  uint64_t RecompilesSuppressed = 0; ///< skipped: budget/hysteresis/same sig
  double RecompileSeconds = 0.0; ///< wall time spent in optimization jobs
  uint64_t SamplesAtFirstSwap = 0; ///< SamplesTaken when the first swap ran
  uint64_t DroppedSamples = 0;   ///< samples with out-of-range ids

  // --- Tier-2 (native) counters ---
  uint64_t NativeTierUps = 0;    ///< native bodies activated (builds + cached)
  uint64_t NativeRuns = 0;       ///< whole activations executed natively
  uint64_t NativeRecheckRuns = 0; ///< activations run interpreted for drift
  uint64_t NativeDeopts = 0;     ///< drift de-optimizations back to fused
  uint64_t NativeCompiles = 0;   ///< native build jobs launched
  uint64_t NativeCompilesSuppressed = 0; ///< skipped: budget spent
  uint64_t NativeCompilesFailed = 0;     ///< compiler or loader errors
  uint64_t NativeCompilesCancelled = 0;  ///< cancelled or timed out
  double NativeCompileSeconds = 0.0; ///< wall time in native build jobs

  RuntimeStats &operator+=(const RuntimeStats &O) {
    SamplesTaken += O.SamplesTaken;
    TierUps += O.TierUps;
    Swaps += O.Swaps;
    DeferredSwaps += O.DeferredSwaps;
    DriftEvents += O.DriftEvents;
    Recompiles += O.Recompiles;
    RecompilesSuppressed += O.RecompilesSuppressed;
    RecompileSeconds += O.RecompileSeconds;
    if (!SamplesAtFirstSwap)
      SamplesAtFirstSwap = O.SamplesAtFirstSwap;
    DroppedSamples += O.DroppedSamples;
    NativeTierUps += O.NativeTierUps;
    NativeRuns += O.NativeRuns;
    NativeRecheckRuns += O.NativeRecheckRuns;
    NativeDeopts += O.NativeDeopts;
    NativeCompiles += O.NativeCompiles;
    NativeCompilesSuppressed += O.NativeCompilesSuppressed;
    NativeCompilesFailed += O.NativeCompilesFailed;
    NativeCompilesCancelled += O.NativeCompilesCancelled;
    NativeCompileSeconds += O.NativeCompileSeconds;
    return *this;
  }
};

/// One controller adapts one module.  Attach it to any number of
/// Interpreters over the module (one at a time — the sampler state is not
/// reentrant); profile state persists across runs, which is what lets the
/// second run of a workload start in the fused tier immediately.
class AdaptiveController {
public:
  explicit AdaptiveController(const Module &M, RuntimeOptions Options = {});
  ~AdaptiveController();

  AdaptiveController(const AdaptiveController &) = delete;
  AdaptiveController &operator=(const AdaptiveController &) = delete;

  /// Points \p I at the tier-0 program and installs the hooks.  The
  /// controller must outlive every run of \p I.
  void attach(Interpreter &I);

  /// The plain tier-0 program.
  const DecodedModule &tier0() const { return Tier0; }

  /// Blocks until any in-flight background optimization — fused rebuilds
  /// and native compiles alike — has finished.  \p DeadlineSeconds bounds
  /// the wait (negative uses Opts.DrainTimeoutSeconds; 0 waits forever);
  /// on expiry the in-flight native compile is cancelled (its compiler
  /// process group is killed) so a hung `$BROPT_CC` cannot wedge the
  /// caller.  \returns true when everything drained cleanly, false when
  /// the deadline forced a cancellation.
  bool drainBackgroundWork(double DeadlineSeconds = -1.0);

  /// Tier-2 gate, called by the exec backend at the top of each
  /// activation.  \returns the native body to run this activation
  /// natively, or null to run interpreted (not in the native tier yet, or
  /// this activation is a drift recheck).  Never blocks on a compile.
  std::shared_ptr<const NativeProgram> beginRun();

  /// True while a native body is installed as the active tier.
  bool nativeTiered() const { return ActiveNative != nullptr; }

  /// True once an optimized version has been published.
  bool tiered() const {
    return Latest.load(std::memory_order_acquire) != nullptr;
  }

  /// Snapshot of the tiering counters.
  RuntimeStats stats() const;

  const RuntimeOptions &options() const { return Opts; }

  /// Writes what the controller learned into \p DB (which must not
  /// already hold records for this module): every detected sequence's
  /// range-bin counts and the per-branch hotness, both scaled by
  /// SampleInterval into estimated executions.  Once a version has been
  /// deployed this exports the snapshot that *built* it, so replaying the
  /// profile through pass 2 reproduces the deployed orderings exactly —
  /// not the post-deployment counters, which may already have drifted.
  /// Call between runs (after drainBackgroundWork() in background mode).
  void exportProfile(ProfileDB &DB) const;

  /// Warm-starts the controller from a saved profile: sequence counters
  /// and branch hotness are seeded (scaled back down by SampleInterval),
  /// and a function already past HotThreshold tiers up immediately, so
  /// the first run starts in the optimized tier.  Stale records are
  /// skipped.  Call before the first run.
  void importProfile(const ProfileDB &DB);

  /// Ordering-decision fingerprint of the deployed version (the `Sig`
  /// runJob computes), or the empty string before any tier-up.
  std::string deployedOrderingSignature() const;

private:
  /// Live per-sequence profiling state.
  struct SequenceState {
    size_t DetectedIndex = 0;      ///< into Detected
    std::vector<Range> Bins;       ///< explicit ranges, then defaults
    std::vector<uint64_t> Counts;  ///< one sampled count per bin
    DriftDetector Drift;
  };

  /// Snapshot handed to an optimization job.
  struct JobInput {
    BranchHotness Hotness;
    std::vector<std::vector<uint64_t>> SeqCounts;
    const char *Reason = "";
  };

  void onSample(uint32_t FuncIndex, uint32_t BranchId, bool Taken,
                int64_t Value);
  const DecodedModule *trySwap(const DecodedModule &Cur, uint32_t FuncIndex,
                               size_t Index, size_t &NewIndex);
  /// Budget + hysteresis gate; schedules or runs one optimization job.
  void maybeReoptimize(const char *Reason);
  void runJob(const JobInput &Job);
  /// Tier-2: reactivates a cached body or launches one native build.
  void maybePromoteNative(const char *Reason);
  /// Publishes a finished native build (or records its failure); with
  /// \p Block waits for the in-flight job first.
  void pollNative(bool Block);
  /// Drops the active native body back to the fused tier.
  void deoptimizeNative(const char *Why);
  /// Emits the C for the current hot layout: clones the module, reorders
  /// the clone's sequences with the deployed profile snapshot, and emits
  /// the entry's call closure.
  std::string emitNativeSource();
  void trace(const std::string &Message) const {
    if (Opts.Trace)
      Opts.Trace(Message);
  }

  const Module &M;
  const RuntimeOptions Opts;
  /// Opts.Reorder plus any quality calibration importProfile derived from
  /// a saved Misprediction plane; what the tier-2 rebuild selects with.
  ReorderOptions TierReorder;
  DecodedModule Tier0;
  AdaptiveHooks Hooks;

  std::vector<RangeSequence> Detected;
  std::vector<SequenceState> Sequences;
  /// Branch id of any condition in a sequence -> index into Sequences.
  /// Every condition tests the same variable, so any arm's sampled value
  /// classifies into the sequence's bins.
  std::unordered_map<uint32_t, size_t> HeadToSeq;
  HotnessSampler Sampler;
  std::vector<bool> FuncTiered;

  // --- Execution-thread-only tiering state ---
  RuntimeStats ExecStats;
  uint64_t LastJobSample = 0; ///< SamplesTaken when the last job was gated

  // --- Tier-2 (native) state, execution thread only.  beginRun(),
  // onSample(), and drainBackgroundWork() all run on the thread driving
  // execution; only the compile itself happens elsewhere, behind the
  // NativeCompileJob handle. ---
  std::shared_ptr<const NativeProgram> ActiveNative; ///< null below tier 2
  std::string NativeOrderSig;   ///< fused ordering sig ActiveNative realizes
  std::shared_ptr<NativeCompileJob> PendingNative;
  std::string PendingNativeSig; ///< sig PendingNative was built for
  bool PendingCancelledByDeopt = false;
  /// Built bodies by the ordering signature they realize; re-entering a
  /// previously seen phase re-activates from here without a compile (and
  /// without touching the MaxNativeCompiles budget).
  std::unordered_map<std::string, std::shared_ptr<const NativeProgram>>
      NativeBySig;
  bool NativeFailed = false; ///< permanent fused fallback (fail/timeout/budget)
  unsigned NativeJobsPlanned = 0;
  uint64_t LastNativeBuildSample = 0;
  uint64_t LastDriftSample = 0; ///< SamplesTaken at the last drift event
  uint32_t RecheckInterval = 0; ///< current backoff; set on activation
  uint32_t RunsSinceRecheck = 0;
  /// Lazily created on first use; owns the compile worker thread.
  std::unique_ptr<AsyncNativeCompiler> NativeCompiler;

  // --- Shared publication state ---
  mutable std::mutex Mutex;
  RuntimeStats JobStats;                       ///< guarded by Mutex
  /// Snapshot that built the currently deployed version (guarded by
  /// Mutex); what exportProfile() serializes once tiered.
  std::unique_ptr<JobInput> DeployedJob;
  std::vector<std::unique_ptr<ProgramVersion>> Versions; ///< guarded
  std::unordered_map<const DecodedModule *, const ProgramVersion *>
      ByDM;                                    ///< guarded by Mutex
  std::atomic<const ProgramVersion *> Latest{nullptr};
  std::atomic<bool> JobInFlight{false};
  std::atomic<unsigned> JobsPlanned{0};

  /// Present only in background mode; destroyed first (declared last) so
  /// the worker joins before the state above goes away.
  std::unique_ptr<ThreadPool> Pool;
};

/// Re-derives, from a saved profile, the ordering-decision fingerprint a
/// controller over \p M would deploy: detect sequences, look each one's
/// record up by (function, ordinal) with signature validation, and run
/// Figure 8 selection on the recorded counts.  Because the exported counts
/// are a uniform scaling of the sampled ones, the normalized probabilities
/// — and hence every selection decision — are bit-identical to the live
/// job's; equality with deployedOrderingSignature() is what the replay
/// test and the profile-persistence fuzz oracle assert.
std::string orderingSignaturesFromProfile(const Module &M,
                                          const ProfileDB &DB);

} // namespace bropt

#endif // BROPT_RUNTIME_ADAPTIVECONTROLLER_H
