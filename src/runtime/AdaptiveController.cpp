//===- runtime/AdaptiveController.cpp - Online tiering controller ---------===//

#include "runtime/AdaptiveController.h"

#include "codegen/AsyncCompile.h"
#include "codegen/CEmitter.h"
#include "codegen/NativeRunner.h"
#include "core/Reorder.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "profile/MispredictProfile.h"

#include <algorithm>
#include <chrono>

using namespace bropt;

static RuntimeOptions sanitized(RuntimeOptions O) {
  if (!O.SampleInterval)
    O.SampleInterval = 1;
  if (!O.DriftWindow)
    O.DriftWindow = 1;
  if (!O.MaxRecompiles)
    O.MaxRecompiles = 1;
  if (!O.MaxNativeCompiles)
    O.MaxNativeCompiles = 1;
  if (!O.NativeRecheckMin)
    O.NativeRecheckMin = 1;
  O.NativeRecheckMax = std::max(O.NativeRecheckMax, O.NativeRecheckMin);
  return O;
}

AdaptiveController::AdaptiveController(const Module &Mod,
                                       RuntimeOptions Options)
    : M(Mod), Opts(sanitized(std::move(Options))),
      TierReorder(Opts.Reorder), Tier0(DecodedModule::decode(Mod)) {
  Hooks.SampleInterval = Opts.SampleInterval;
  Hooks.SampleCountdown = Opts.SampleInterval;
  Hooks.OnSample = [this](uint32_t FuncIndex, uint32_t BranchId, bool Taken,
                          int64_t Value) {
    onSample(FuncIndex, BranchId, Taken, Value);
  };
  Hooks.TrySwap = [this](const DecodedModule &Cur, uint32_t FuncIndex,
                         size_t Index, size_t &NewIndex) {
    return trySwap(Cur, FuncIndex, Index, NewIndex);
  };

  Sampler.init(Tier0.numBranchIds(), Tier0.size());
  FuncTiered.assign(Tier0.size(), false);

  // detectSequences only reads the module (same const_cast precedent as
  // the fuser's profile matching in sim/Fuse.cpp).
  Detected = detectSequences(const_cast<Module &>(Mod));

  // Mirror the branch-id numbering the decoders use: one id per CondBr in
  // module layout order.
  std::unordered_map<const Instruction *, uint32_t> BranchIdOf;
  uint32_t NextId = 0;
  for (const auto &F : Mod)
    for (const auto &Block : *F)
      for (const auto &Inst : *Block)
        if (Inst->getKind() == InstKind::CondBr)
          BranchIdOf.emplace(Inst.get(), NextId++);

  Sequences.reserve(Detected.size());
  for (size_t I = 0; I < Detected.size(); ++I) {
    const RangeSequence &Seq = Detected[I];
    // Register *every* condition branch of the sequence, not just the
    // head's: all conditions test the same variable (Theorem 1's
    // precondition), so a sample at any arm classifies into the same bin
    // partition.  This matters in the fused tier, where the chain fuser's
    // MultiCmp head may be a later condition than the detected head (the
    // head compare can be swallowed by a pre-op fusion instead) — and
    // where a fixed sample interval can phase-lock onto one op in a
    // periodic loop, starving any single registration point.
    bool AnyBranch = false;
    for (const RangeConditionDesc &Cond : Seq.Conds) {
      for (const BasicBlock *Block : Cond.Blocks) {
        const Instruction *Term = Block->getTerminator();
        auto IdIt = Term ? BranchIdOf.find(Term) : BranchIdOf.end();
        if (IdIt == BranchIdOf.end())
          continue;
        HeadToSeq.emplace(IdIt->second, Sequences.size());
        AnyBranch = true;
      }
    }
    if (!AnyBranch)
      continue; // no conditional branch we can sample at

    SequenceState State;
    State.DetectedIndex = I;
    State.Bins.reserve(Seq.Conds.size() + Seq.DefaultRanges.size());
    for (const RangeConditionDesc &Cond : Seq.Conds)
      State.Bins.push_back(Cond.R);
    for (const Range &R : Seq.DefaultRanges)
      State.Bins.push_back(R);
    State.Counts.assign(State.Bins.size(), 0);
    State.Drift =
        DriftDetector(State.Bins.size(), Opts.DriftWindow, Opts.DriftThreshold);
    Sequences.push_back(std::move(State));
  }

  if (Opts.Background)
    Pool = std::make_unique<ThreadPool>(1);
}

AdaptiveController::~AdaptiveController() {
  // Abort any in-flight native build so ~AsyncNativeCompiler (which joins
  // its worker) cannot block on a hung host compiler.
  if (PendingNative)
    PendingNative->cancel();
  // Join the worker before the version list and sampler state go away.
  Pool.reset();
}

void AdaptiveController::attach(Interpreter &I) {
  I.setMode(Interpreter::Mode::Adaptive);
  I.setPreparedProgram(&Tier0);
  I.setAdaptiveHooks(&Hooks);
}

bool AdaptiveController::drainBackgroundWork(double DeadlineSeconds) {
  if (DeadlineSeconds < 0)
    DeadlineSeconds = Opts.DrainTimeoutSeconds;

  bool Clean = true;
  if (Pool) {
    if (DeadlineSeconds <= 0)
      Pool->wait();
    else
      Clean = Pool->waitFor(DeadlineSeconds);
  }

  if (PendingNative) {
    const bool Done = DeadlineSeconds <= 0 ? PendingNative->wait()
                                           : PendingNative->wait(DeadlineSeconds);
    if (!Done) {
      // A hung compiler must not wedge the caller: kill its process group
      // and give the SIGKILL one poll tick to be observed.
      trace("native: drain deadline expired; cancelling in-flight compile");
      PendingNative->cancel();
      PendingNative->wait(1.0);
      Clean = false;
    }
    pollNative(/*Block=*/false); // publish the result or record the failure
  }
  return Clean;
}

RuntimeStats AdaptiveController::stats() const {
  RuntimeStats S = ExecStats;
  S.DroppedSamples = Sampler.DroppedSamples;
  std::lock_guard<std::mutex> Lock(Mutex);
  S.Recompiles = JobStats.Recompiles;
  S.RecompileSeconds = JobStats.RecompileSeconds;
  S.RecompilesSuppressed += JobStats.RecompilesSuppressed;
  return S;
}

std::string AdaptiveController::deployedOrderingSignature() const {
  const ProgramVersion *Deployed = Latest.load(std::memory_order_acquire);
  return Deployed ? Deployed->OrderSig : std::string();
}

void AdaptiveController::exportProfile(ProfileDB &DB) const {
  // Once tiered, export the snapshot that built the deployed version so a
  // replay reproduces its orderings; the live counters may have drifted
  // since the build.  Before any deploy, export the live counters.
  BranchHotness Hot;
  std::vector<std::vector<uint64_t>> SeqCounts;
  bool HaveSnapshot = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (DeployedJob) {
      Hot = DeployedJob->Hotness;
      SeqCounts = DeployedJob->SeqCounts;
      HaveSnapshot = true;
    }
  }
  if (!HaveSnapshot) {
    Hot = Sampler.Hotness;
    SeqCounts.reserve(Sequences.size());
    for (const SequenceState &State : Sequences)
      SeqCounts.push_back(State.Counts);
  }

  // Sampled counts scale up to estimated executions.  Uniform scaling
  // preserves every normalized probability bit-for-bit (IEEE division is
  // correctly rounded and (k*c)/(k*t) has the same real value as c/t), so
  // pass 2 on the exported profile makes the same decisions the job did.
  const uint64_t Scale = Opts.SampleInterval;

  std::unordered_map<size_t, size_t> StateOf;
  for (size_t I = 0; I < Sequences.size(); ++I)
    StateOf.emplace(Sequences[I].DetectedIndex, I);

  // Register *every* detected sequence, zero-count ones included, so
  // consumer-side ordinals line up (the keyer rule in ProfileDB.h).
  for (size_t D = 0; D < Detected.size(); ++D) {
    const RangeSequence &Seq = Detected[D];
    ProfileEntry &E = DB.registerSequence(
        ProfileKind::RangeBins, Seq.Id, Seq.F->getName(), Seq.signature(),
        Seq.Conds.size() + Seq.DefaultRanges.size());
    auto It = StateOf.find(D);
    if (It == StateOf.end())
      continue; // no sampleable branch; the record stays all-zero
    const std::vector<uint64_t> &Counts = SeqCounts[It->second];
    for (size_t Bin = 0; Bin < Counts.size() && Bin < E.BinCounts.size();
         ++Bin)
      E.BinCounts[Bin] += Counts[Bin] * Scale;
  }

  exportHotnessToProfile(M, Hot, DB, Scale);
}

void AdaptiveController::importProfile(const ProfileDB &DB) {
  const uint64_t Scale = Opts.SampleInterval;

  // A saved Misprediction plane for the targeted predictor calibrates the
  // tier-2 rebuild's cost model, mirroring compileWithProfile.  A profile
  // without the plane keeps the neutral quality.
  if (!Opts.Predictor.empty()) {
    MispredictSummary Summary =
        importMispredictProfile(DB, M, Opts.Predictor);
    if (!Summary.empty())
      TierReorder.Cost.PredictorQuality = Summary.quality();
  }

  std::unordered_map<size_t, size_t> StateOf;
  for (size_t I = 0; I < Sequences.size(); ++I)
    StateOf.emplace(Sequences[I].DetectedIndex, I);

  // Seed the per-sequence bin counters.  The keyer must advance over every
  // detected sequence — including ones with no sampleable branch — to stay
  // aligned with the ordinals the exporter assigned.
  SequenceKeyer Keyer;
  for (size_t D = 0; D < Detected.size(); ++D) {
    const RangeSequence &Seq = Detected[D];
    const unsigned Ordinal =
        Keyer.next(ProfileKind::RangeBins, Seq.F->getName());
    auto It = StateOf.find(D);
    if (It == StateOf.end())
      continue;
    ProfileLookupStatus Status = ProfileLookupStatus::Missing;
    const ProfileEntry *E = DB.lookupSequence(
        ProfileKind::RangeBins, Seq.F->getName(), Seq.signature(),
        Seq.Conds.size() + Seq.DefaultRanges.size(), Ordinal, &Status);
    if (!E) {
      if (Status != ProfileLookupStatus::Missing && Opts.Trace)
        trace("import: skip sequence " + std::to_string(Seq.Id) + " (" +
              profileLookupStatusName(Status) + ")");
      continue;
    }
    SequenceState &State = Sequences[It->second];
    for (size_t Bin = 0;
         Bin < State.Counts.size() && Bin < E->BinCounts.size(); ++Bin)
      State.Counts[Bin] += E->BinCounts[Bin] / Scale;
  }

  // Seed the branch hotness, scaled back down to sample units.
  BranchHotness H;
  if (importHotnessFromProfile(M, DB, H)) {
    for (size_t Id = 0;
         Id < H.Total.size() && Id < Sampler.Hotness.Total.size(); ++Id) {
      Sampler.Hotness.Taken[Id] += H.Taken[Id] / Scale;
      Sampler.Hotness.Total[Id] += H.Total[Id] / Scale;
    }
  }

  // Attribute the imported branch totals to functions and tier up any
  // function the saved profile already shows past the threshold, so the
  // first run starts optimized instead of re-learning.
  bool TieredUp = false;
  size_t FuncIndex = 0, FirstId = 0;
  for (const auto &F : M) {
    size_t Branches = 0;
    for (const auto &Block : *F)
      for (const auto &Inst : *Block)
        if (Inst->getKind() == InstKind::CondBr)
          ++Branches;
    uint64_t FuncTotal = 0;
    for (size_t Id = 0; Id < Branches && FirstId + Id < H.Total.size(); ++Id)
      FuncTotal += H.Total[FirstId + Id] / Scale;
    if (FuncIndex < Sampler.FuncSamples.size() && FuncTotal) {
      Sampler.FuncSamples[FuncIndex] += FuncTotal;
      if (!FuncTiered[FuncIndex] &&
          Sampler.FuncSamples[FuncIndex] * Opts.SampleInterval >=
              Opts.HotThreshold) {
        FuncTiered[FuncIndex] = true;
        ++ExecStats.TierUps;
        TieredUp = true;
        if (Opts.Trace)
          trace("tier-up: function " + F->getName() + " from imported profile");
      }
    }
    FirstId += Branches;
    ++FuncIndex;
  }
  if (TieredUp && !tiered())
    maybeReoptimize("profile-import");
}

void AdaptiveController::onSample(uint32_t FuncIndex, uint32_t BranchId,
                                  bool Taken, int64_t Value) {
  ++ExecStats.SamplesTaken;
  const uint64_t FuncCount = Sampler.observe(FuncIndex, BranchId, Taken);

  auto SeqIt = HeadToSeq.find(BranchId);
  if (SeqIt != HeadToSeq.end()) {
    SequenceState &State = Sequences[SeqIt->second];
    // The ranges are nonoverlapping and the defaults cover the rest of the
    // value space, so exactly one bin matches — the same classification
    // the offline instrumenter performs per head execution.
    for (size_t Bin = 0; Bin < State.Bins.size(); ++Bin) {
      if (!State.Bins[Bin].contains(Value))
        continue;
      ++State.Counts[Bin];
      if (State.Drift.observe(Bin)) {
        ++ExecStats.DriftEvents;
        LastDriftSample = ExecStats.SamplesTaken;
        if (Opts.Trace)
          trace("drift: sequence " +
                std::to_string(Detected[State.DetectedIndex].Id) +
                " distance " + std::to_string(State.Drift.lastDistance()));
        // The native body bakes the old ordering into machine code; drop
        // back to the fused tier before rebuilding it.
        if (ActiveNative)
          deoptimizeNative("drift");
        // Re-optimizing only makes sense once a version is deployed;
        // before tier-up the profile is still converging.
        if (tiered())
          maybeReoptimize("drift");
      }
      break;
    }
  }

  if (FuncIndex < FuncTiered.size() && !FuncTiered[FuncIndex] &&
      FuncCount * Opts.SampleInterval >= Opts.HotThreshold) {
    FuncTiered[FuncIndex] = true;
    ++ExecStats.TierUps;
    if (Opts.Trace)
      trace("tier-up: function " + Tier0.function(FuncIndex).Name + " after " +
            std::to_string(FuncCount) + " samples");
    // The build is module-wide; later functions crossing the threshold
    // ride on the already-published version.
    if (!tiered())
      maybeReoptimize("tier-up");
  }

  // Tier-2 gate.  Cheap per-sample checks run first; the stability gate
  // (a full DriftWindow since the last drift) and the build hysteresis are
  // silent — suppression counters only track real decisions, not every
  // sample inside a cool-down window.
  if (Opts.NativeTier && !NativeFailed && !ActiveNative && !PendingNative &&
      tiered() && FuncIndex < FuncTiered.size() &&
      FuncCount * Opts.SampleInterval >= Opts.NativeThreshold &&
      ExecStats.SamplesTaken - LastDriftSample >= Opts.DriftWindow &&
      (!NativeJobsPlanned ||
       ExecStats.SamplesTaken - LastNativeBuildSample >=
           Opts.MinSamplesBetweenNativeBuilds))
    maybePromoteNative("native-tier-up");
}

void AdaptiveController::maybeReoptimize(const char *Reason) {
  if (JobInFlight.load(std::memory_order_acquire))
    return; // a build is already running; samples keep accumulating

  if (JobsPlanned.load(std::memory_order_relaxed) >= Opts.MaxRecompiles) {
    ++ExecStats.RecompilesSuppressed;
    if (Opts.Trace)
      trace(std::string("suppress(") + Reason + "): recompile budget spent");
    return;
  }
  const bool FirstBuild = !tiered();
  if (!FirstBuild && ExecStats.SamplesTaken - LastJobSample <
                         Opts.MinSamplesBetweenRecompiles) {
    ++ExecStats.RecompilesSuppressed;
    if (Opts.Trace)
      trace(std::string("suppress(") + Reason + "): hysteresis window open");
    return;
  }

  LastJobSample = ExecStats.SamplesTaken;
  JobsPlanned.fetch_add(1, std::memory_order_relaxed);

  // Snapshot on the execution thread; the job must not race the sampler.
  JobInput Job;
  Job.Hotness = Sampler.Hotness;
  Job.SeqCounts.reserve(Sequences.size());
  for (const SequenceState &State : Sequences)
    Job.SeqCounts.push_back(State.Counts);
  Job.Reason = Reason;

  JobInFlight.store(true, std::memory_order_release);
  if (Pool)
    Pool->enqueue([this, J = std::move(Job)] { runJob(J); });
  else
    runJob(Job);
}

void AdaptiveController::runJob(const JobInput &Job) {
  const auto Start = std::chrono::steady_clock::now();

  // Turn the sampled bins into a live profile and, per sequence, rerun the
  // paper's ordering selection to fingerprint the decision it implies.
  // Every detected sequence is registered — the fuser's keyed lookup
  // assigns ordinals over all of them, so gaps would shift the keys.
  ProfileDB Live;
  for (const RangeSequence &Seq : Detected)
    Live.registerSequence(ProfileKind::RangeBins, Seq.Id, Seq.F->getName(),
                          Seq.signature(),
                          Seq.Conds.size() + Seq.DefaultRanges.size());

  std::string Sig;
  bool AnyCounts = false;
  for (size_t I = 0; I < Sequences.size(); ++I) {
    const RangeSequence &Seq = Detected[Sequences[I].DetectedIndex];
    const std::vector<uint64_t> &Counts = Job.SeqCounts[I];
    uint64_t Total = 0;
    for (uint64_t C : Counts)
      Total += C;
    if (!Total)
      continue; // never sampled; buildRangeInfos needs a nonzero total
    AnyCounts = true;
    for (size_t Bin = 0; Bin < Counts.size(); ++Bin)
      if (Counts[Bin])
        Live.increment(Seq.Id, Bin, Counts[Bin]);

    ProfileEntry Prof;
    Prof.FunctionName = Seq.F->getName();
    Prof.Signature = Seq.signature();
    Prof.BinCounts = Counts;
    OrderingDecision Decision = selectOrdering(buildRangeInfos(Seq, Prof));
    Sig += std::to_string(Seq.Id);
    Sig += ':';
    Sig += orderingSignature(Decision);
    Sig += ';';
  }

  // Hysteresis: an unchanged ordering decision means the deployed version
  // already implements what this profile asks for — skip the build and
  // refund the budget slot.
  const ProgramVersion *Deployed = Latest.load(std::memory_order_acquire);
  if (Deployed && Sig == Deployed->OrderSig) {
    JobsPlanned.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++JobStats.RecompilesSuppressed;
    }
    if (Opts.Trace)
      trace(std::string("suppress(") + Job.Reason + "): ordering unchanged");
    JobInFlight.store(false, std::memory_order_release);
    return;
  }

  FuseOptions FO = Opts.Fuse;
  FO.Profile = AnyCounts ? &Live : nullptr;
  FO.Hotness = Job.Hotness.empty() ? nullptr : &Job.Hotness;

  auto V = std::make_unique<ProgramVersion>();
  V->DM = decodeFused(M, FO, nullptr, &V->Map);
  V->buildReverseMap();
  V->OrderSig = std::move(Sig);

  const double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++JobStats.Recompiles;
    JobStats.RecompileSeconds += Seconds;
    DeployedJob = std::make_unique<JobInput>(Job);
    ByDM.emplace(&V->DM, V.get());
    Latest.store(V.get(), std::memory_order_release);
    Versions.push_back(std::move(V));
  }
  if (Opts.Trace)
    trace(std::string("recompile(") + Job.Reason + "): version " +
          std::to_string(stats().Recompiles) + " published");
  JobInFlight.store(false, std::memory_order_release);
}

const DecodedModule *AdaptiveController::trySwap(const DecodedModule &Cur,
                                                 uint32_t FuncIndex,
                                                 size_t Index,
                                                 size_t &NewIndex) {
  const ProgramVersion *Target = Latest.load(std::memory_order_acquire);
  if (!Target || &Target->DM == &Cur)
    return nullptr; // nothing newer to swap onto

  const ProgramVersion *CurVersion = nullptr;
  if (&Cur != &Tier0) {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = ByDM.find(&Cur);
    if (It != ByDM.end())
      CurVersion = It->second;
    // An unknown program shares tier-0 coordinates: plain decoding is
    // deterministic, so its block starts line up with Tier0's.
  }

  if (!translateSwapPoint(CurVersion, *Target, FuncIndex, Index, NewIndex)) {
    ++ExecStats.DeferredSwaps;
    return nullptr; // no image at this safe point; try again at the next
  }

  ++ExecStats.Swaps;
  if (!ExecStats.SamplesAtFirstSwap)
    ExecStats.SamplesAtFirstSwap = ExecStats.SamplesTaken;
  if (Opts.Trace)
    trace("swap: function " + Tier0.function(FuncIndex).Name + " at index " +
          std::to_string(Index) + " -> " + std::to_string(NewIndex));
  return &Target->DM;
}

std::shared_ptr<const NativeProgram> AdaptiveController::beginRun() {
  if (!Opts.NativeTier)
    return nullptr;
  pollNative(/*Block=*/false);
  if (!ActiveNative)
    return nullptr;

  // Native code neither samples nor counts, so drift is invisible while
  // in tier 2.  Periodically run one whole activation interpreted as a
  // recheck; each clean recheck doubles the interval (exponential
  // backoff), so a stable phase converges to ~1/NativeRecheckMax
  // interpreted activations while a drifting one is caught within
  // NativeRecheckMin of the deopt that reset the interval.
  if (++RunsSinceRecheck >= RecheckInterval) {
    RunsSinceRecheck = 0;
    RecheckInterval = std::min(RecheckInterval * 2, Opts.NativeRecheckMax);
    ++ExecStats.NativeRecheckRuns;
    if (Opts.Trace)
      trace("native: recheck run (next after " +
            std::to_string(RecheckInterval) + ")");
    return nullptr;
  }
  ++ExecStats.NativeRuns;
  return ActiveNative;
}

void AdaptiveController::pollNative(bool Block) {
  if (!PendingNative)
    return;
  if (!PendingNative->done() && !Block)
    return;
  PendingNative->wait();

  auto Job = std::move(PendingNative);
  PendingNative = nullptr;
  const bool WasDeoptCancel = PendingCancelledByDeopt;
  PendingCancelledByDeopt = false;
  ExecStats.NativeCompileSeconds += Job->seconds();

  if (auto Program = Job->get()) {
    NativeBySig[PendingNativeSig] = Program;
    // Activate only while the fused tier still implements the ordering
    // this body was built from; a build outrun by drift stays cached for
    // the day its phase returns.
    if (deployedOrderingSignature() == PendingNativeSig) {
      ActiveNative = std::move(Program);
      NativeOrderSig = PendingNativeSig;
      RecheckInterval = Opts.NativeRecheckMin;
      RunsSinceRecheck = 0;
      ++ExecStats.NativeTierUps;
      if (Opts.Trace)
        trace("native: promoted entry '" + Opts.EntryName + "' (" +
              std::to_string(Job->seconds()) + "s compile)");
    } else if (Opts.Trace) {
      trace("native: build finished for a stale layout; cached only");
    }
    return;
  }

  if (Job->cancelled()) {
    ++ExecStats.NativeCompilesCancelled;
    if (!WasDeoptCancel) {
      // Cancelled from outside (drain deadline or timeout): the compiler
      // is not trustworthy here — settle in the fused tier for good.
      NativeFailed = true;
    }
    if (Opts.Trace)
      trace("native: compile cancelled (" + Job->error() + ")");
    return;
  }

  ++ExecStats.NativeCompilesFailed;
  NativeFailed = true;
  if (Opts.Trace)
    trace("native: compile failed: " + Job->error());
}

void AdaptiveController::maybePromoteNative(const char *Reason) {
  const std::string Sig = deployedOrderingSignature();

  // Re-entering a phase whose body was already built: reactivate from the
  // per-signature cache.  Free — no compile, no budget.
  auto Cached = NativeBySig.find(Sig);
  if (Cached != NativeBySig.end()) {
    ActiveNative = Cached->second;
    NativeOrderSig = Sig;
    RecheckInterval = Opts.NativeRecheckMin;
    RunsSinceRecheck = 0;
    ++ExecStats.NativeTierUps;
    if (Opts.Trace)
      trace(std::string("native: re-promoted cached body (") + Reason + ")");
    return;
  }

  if (NativeJobsPlanned >= Opts.MaxNativeCompiles) {
    ++ExecStats.NativeCompilesSuppressed;
    NativeFailed = true; // stop re-evaluating every sample
    if (Opts.Trace)
      trace(std::string("native: suppress(") + Reason +
            "): compile budget spent; staying fused");
    return;
  }

  NativeRunner &Runner = Opts.Runner ? *Opts.Runner : NativeRunner::shared();
  if (!NativeCompiler)
    NativeCompiler =
        std::make_unique<AsyncNativeCompiler>(&Runner, Opts.NativeCompileTimeout);

  ++NativeJobsPlanned;
  ++ExecStats.NativeCompiles;
  LastNativeBuildSample = ExecStats.SamplesTaken;
  PendingNativeSig = Sig;
  if (Opts.Trace)
    trace(std::string("native: compile launched (") + Reason + ")");
  PendingNative = NativeCompiler->submit(emitNativeSource());

  // Synchronous mode mirrors the fused tier: block at the triggering
  // sample so promotion timing is deterministic for tests and the oracle.
  // The wait is still bounded by NativeCompileTimeout via the control.
  if (!Opts.Background)
    pollNative(/*Block=*/true);
}

void AdaptiveController::deoptimizeNative(const char *Why) {
  ActiveNative.reset();
  NativeOrderSig.clear();
  RecheckInterval = Opts.NativeRecheckMin;
  RunsSinceRecheck = 0;
  ++ExecStats.NativeDeopts;
  if (PendingNative && !PendingNative->done()) {
    // The in-flight build used the pre-drift profile; abort it.  The
    // deliberate cancel must not latch NativeFailed.
    PendingCancelledByDeopt = true;
    PendingNative->cancel();
  }
  if (Opts.Trace)
    trace(std::string("native: deopt (") + Why + "); back to fused tier");
}

std::string AdaptiveController::emitNativeSource() {
  CEmitterOptions CO;
  CO.EntryName = Opts.EntryName;
  CO.OnlyReachable = true;

  // The interpreter's fused tier reorders at decode time and leaves M
  // untouched, so the native body re-applies the ordering to IR: clone M
  // via a print/parse round trip, then run the paper's pass 2 on the
  // clone with the deployed profile snapshot.  exportProfile serializes
  // exactly the snapshot that built the deployed fused version, so the
  // clone's layout realizes deployedOrderingSignature() — the key this
  // build is cached and activated under.
  std::string ParseError;
  std::unique_ptr<Module> Clone = parseModuleText(printModule(M), &ParseError);
  if (!Clone) {
    if (Opts.Trace)
      trace("native: module clone failed (" + ParseError +
            "); emitting the unreordered layout");
    return emitC(M, CO);
  }

  ProfileDB Snapshot;
  exportProfile(Snapshot);
  std::vector<RangeSequence> CloneSeqs = detectSequences(*Clone);
  // TierReorder carries the caller's shape-selection options — including
  // an armed, calibrated cost model when the compile targets a predictor —
  // so the native body selects the same shapes the offline pass 2 would.
  reorderSequences(*Clone, CloneSeqs, Snapshot, TierReorder);
  return emitC(*Clone, CO);
}

std::string bropt::orderingSignaturesFromProfile(const Module &Mod,
                                                 const ProfileDB &DB) {
  std::vector<RangeSequence> Seqs =
      detectSequences(const_cast<Module &>(Mod));
  SequenceKeyer Keyer;
  std::string Sig;
  for (const RangeSequence &Seq : Seqs) {
    const unsigned Ordinal =
        Keyer.next(ProfileKind::RangeBins, Seq.F->getName());
    const ProfileEntry *E = DB.lookupSequence(
        ProfileKind::RangeBins, Seq.F->getName(), Seq.signature(),
        Seq.Conds.size() + Seq.DefaultRanges.size(), Ordinal);
    if (!E || !E->totalExecutions())
      continue; // never executed, or stale — runJob skipped it too
    OrderingDecision Decision = selectOrdering(buildRangeInfos(Seq, *E));
    Sig += std::to_string(Seq.Id);
    Sig += ':';
    Sig += orderingSignature(Decision);
    Sig += ';';
  }
  return Sig;
}
