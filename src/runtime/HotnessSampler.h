//===- runtime/HotnessSampler.h - Sampled branch-bias collection -*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight per-branch and per-function counters the adaptive runtime's
/// tier 0 feeds from sampled execution (sim/Interpreter.h AdaptiveHooks).
/// The branch bias drives the fuser's hot-first layout; the per-function
/// sample counts drive the tier-up decision.
///
/// Also exposes collectBranchHotness(), an offline convenience that runs a
/// module once with every-branch sampling to produce exact taken/total
/// counts — the benchmark harness uses it to feed the layout the same
/// measured bias the online controller would converge to.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_RUNTIME_HOTNESSSAMPLER_H
#define BROPT_RUNTIME_HOTNESSSAMPLER_H

#include "profile/ProfileDB.h"
#include "sim/Fuse.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace bropt {

class Module;

/// Accumulates sampled branch outcomes and attributes them to functions.
struct HotnessSampler {
  /// Per-branch-id taken/total counts (the layout's input).
  BranchHotness Hotness;
  /// Per-function number of samples observed.
  std::vector<uint64_t> FuncSamples;
  /// Samples that could not be attributed because the branch or function
  /// index was out of range.  Such a sample means the hooks and the
  /// decoded program disagree about the id space — profile quality is
  /// degraded, so the count is surfaced (RuntimeStats::DroppedSamples)
  /// instead of silently ignored.
  uint64_t DroppedSamples = 0;

  void init(uint32_t NumBranchIds, size_t NumFunctions) {
    Hotness.Taken.assign(NumBranchIds, 0);
    Hotness.Total.assign(NumBranchIds, 0);
    FuncSamples.assign(NumFunctions, 0);
    DroppedSamples = 0;
  }

  /// Records one sample.  \returns the function's updated sample count.
  uint64_t observe(uint32_t FuncIndex, uint32_t BranchId, bool Taken) {
    const bool BranchKnown = BranchId < Hotness.Total.size();
    const bool FuncKnown = FuncIndex < FuncSamples.size();
    if (!BranchKnown || !FuncKnown)
      ++DroppedSamples;
    if (BranchKnown) {
      ++Hotness.Total[BranchId];
      Hotness.Taken[BranchId] += Taken;
    }
    return FuncKnown ? ++FuncSamples[FuncIndex] : 0;
  }
};

/// Runs \p M on \p Input in the decoded engine with a sample interval of 1
/// and returns the exact per-branch taken/total counts.  Purely a
/// measurement: output and side effects of the run are discarded.
BranchHotness collectBranchHotness(const Module &M, std::string_view Input,
                                   uint64_t InstructionLimit = 0);

/// Records \p H — module-wide, branch-id indexed — into \p DB as one
/// hotness section per function, splitting the id space by \p M's branch
/// layout (one id per conditional branch, in module layout order,
/// contiguous per function).  Counts are multiplied by \p Scale so sampled
/// counts can be stored as estimated executions.
void exportHotnessToProfile(const Module &M, const BranchHotness &H,
                            ProfileDB &DB, uint64_t Scale = 1);

/// Rebuilds the module-wide BranchHotness from \p DB's per-function
/// records, the inverse of exportHotnessToProfile.  A function whose
/// recorded branch count disagrees with \p M's layout is skipped — stale
/// profiles degrade coverage, never misattribute.  \returns the number of
/// functions imported.
size_t importHotnessFromProfile(const Module &M, const ProfileDB &DB,
                                BranchHotness &H);

} // namespace bropt

#endif // BROPT_RUNTIME_HOTNESSSAMPLER_H
