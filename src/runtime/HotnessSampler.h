//===- runtime/HotnessSampler.h - Sampled branch-bias collection -*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight per-branch and per-function counters the adaptive runtime's
/// tier 0 feeds from sampled execution (sim/Interpreter.h AdaptiveHooks).
/// The branch bias drives the fuser's hot-first layout; the per-function
/// sample counts drive the tier-up decision.
///
/// Also exposes collectBranchHotness(), an offline convenience that runs a
/// module once with every-branch sampling to produce exact taken/total
/// counts — the benchmark harness uses it to feed the layout the same
/// measured bias the online controller would converge to.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_RUNTIME_HOTNESSSAMPLER_H
#define BROPT_RUNTIME_HOTNESSSAMPLER_H

#include "sim/Fuse.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace bropt {

class Module;

/// Accumulates sampled branch outcomes and attributes them to functions.
struct HotnessSampler {
  /// Per-branch-id taken/total counts (the layout's input).
  BranchHotness Hotness;
  /// Per-function number of samples observed.
  std::vector<uint64_t> FuncSamples;

  void init(uint32_t NumBranchIds, size_t NumFunctions) {
    Hotness.Taken.assign(NumBranchIds, 0);
    Hotness.Total.assign(NumBranchIds, 0);
    FuncSamples.assign(NumFunctions, 0);
  }

  /// Records one sample.  \returns the function's updated sample count.
  uint64_t observe(uint32_t FuncIndex, uint32_t BranchId, bool Taken) {
    if (BranchId < Hotness.Total.size()) {
      ++Hotness.Total[BranchId];
      Hotness.Taken[BranchId] += Taken;
    }
    return FuncIndex < FuncSamples.size() ? ++FuncSamples[FuncIndex] : 0;
  }
};

/// Runs \p M on \p Input in the decoded engine with a sample interval of 1
/// and returns the exact per-branch taken/total counts.  Purely a
/// measurement: output and side effects of the run are discarded.
BranchHotness collectBranchHotness(const Module &M, std::string_view Input,
                                   uint64_t InstructionLimit = 0);

} // namespace bropt

#endif // BROPT_RUNTIME_HOTNESSSAMPLER_H
