//===- lang/Parser.h - Mini-C recursive-descent parser ----------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses Mini-C source into a TranslationUnit.  Diagnostics are collected
/// rather than thrown; the parser recovers at statement boundaries so one
/// bad construct does not hide later errors.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_LANG_PARSER_H
#define BROPT_LANG_PARSER_H

#include "lang/AST.h"

#include <string>
#include <string_view>
#include <vector>

namespace bropt {

/// One parse or semantic diagnostic.
struct Diagnostic {
  unsigned Line = 0;
  std::string Message;
};

/// Renders diagnostics as "line N: message" lines.
std::string renderDiagnostics(const std::vector<Diagnostic> &Diags);

/// Parses \p Source.  On success, \p Unit is filled and true is returned.
/// On failure, false is returned and \p Diags explains why (it may also
/// contain warnings on success).
bool parseSource(std::string_view Source, TranslationUnit &Unit,
                 std::vector<Diagnostic> &Diags);

} // namespace bropt

#endif // BROPT_LANG_PARSER_H
