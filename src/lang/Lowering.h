//===- lang/Lowering.h - AST-to-IR lowering ---------------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a checked Mini-C TranslationUnit to IR.  Short-circuit control
/// flow becomes compare/branch chains — the raw material the paper's
/// detection algorithm mines for reorderable range-condition sequences —
/// and switch statements become SwitchInst terminators that the
/// SwitchLowering pass expands per the chosen heuristic set.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_LANG_LOWERING_H
#define BROPT_LANG_LOWERING_H

#include "ir/Module.h"
#include "lang/AST.h"

#include <memory>

namespace bropt {

/// Lowers \p Unit into a fresh Module.  \p Unit must have passed
/// analyzeUnit(); lowering asserts on violations rather than diagnosing.
std::unique_ptr<Module> lowerUnit(const TranslationUnit &Unit);

/// Convenience: parse + analyze + lower.  \returns null and fills
/// \p ErrorText on any front-end failure.
std::unique_ptr<Module> compileSource(std::string_view Source,
                                      std::string *ErrorText = nullptr);

} // namespace bropt

#endif // BROPT_LANG_LOWERING_H
