//===- lang/Lexer.h - Mini-C lexer ------------------------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the Mini-C language the benchmark analogues are written
/// in: a C subset with int scalars and arrays, functions, control flow
/// (if/while/do/for/switch), short-circuit logic, and character literals.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_LANG_LEXER_H
#define BROPT_LANG_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bropt {

/// Token kinds of Mini-C.
enum class TokenKind : uint8_t {
  EndOfFile,
  Error,
  Identifier,
  IntLiteral,
  // Keywords.
  KwInt,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwSwitch,
  KwCase,
  KwDefault,
  KwBreak,
  KwContinue,
  KwReturn,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Colon,
  Question,
  // Operators.
  Assign,
  PlusAssign,
  MinusAssign,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Not,
  AmpAmp,
  PipePipe,
  Amp,
  Pipe,
  Caret,
  Shl,
  Shr,
  PlusPlus,
  MinusMinus,
};

/// \returns a human-readable spelling for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string_view Text;  ///< source spelling (views into the source buffer)
  int64_t IntValue = 0;   ///< value for IntLiteral (and char literals)
  unsigned Line = 0;
  unsigned Column = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Lexes a whole Mini-C source buffer.
///
/// The returned tokens view into \p Source, which must outlive them.
/// Malformed input produces a Token with Kind == Error whose Text explains
/// the problem; lexing continues afterwards so the parser can report
/// multiple issues.
std::vector<Token> lexSource(std::string_view Source);

} // namespace bropt

#endif // BROPT_LANG_LEXER_H
