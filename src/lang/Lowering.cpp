//===- lang/Lowering.cpp - AST-to-IR lowering ------------------------------===//

#include "lang/Lowering.h"

#include "ir/IRBuilder.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "support/Debug.h"

#include <unordered_map>

using namespace bropt;

namespace {

class LoweringImpl {
public:
  explicit LoweringImpl(const TranslationUnit &Unit) : Unit(Unit) {}

  std::unique_ptr<Module> run() {
    M = std::make_unique<Module>();
    for (const GlobalDecl &Global : Unit.Globals) {
      uint32_t Words = Global.ArraySize.value_or(1);
      GlobalVariable *GV =
          M->createGlobal(Global.Name, Words, Global.Init);
      Globals.emplace(Global.Name, GV);
    }
    // Declare functions first so calls can reference later definitions.
    for (const FunctionDecl &Func : Unit.Functions)
      Functions.emplace(
          Func.Name,
          M->createFunction(Func.Name,
                            static_cast<unsigned>(Func.Params.size())));
    for (const FunctionDecl &Func : Unit.Functions)
      lowerFunction(Func);
    return std::move(M);
  }

private:
  //===------------------------------------------------------------------===//
  // Function scaffolding
  //===------------------------------------------------------------------===//

  void lowerFunction(const FunctionDecl &Decl) {
    F = Functions.at(Decl.Name);
    Scopes.clear();
    Scopes.emplace_back();
    BreakTargets.clear();
    ContinueTargets.clear();
    for (size_t Index = 0; Index < Decl.Params.size(); ++Index)
      Scopes.back()[Decl.Params[Index]] = static_cast<unsigned>(Index);
    Builder.setInsertionPoint(F->createBlock("entry"));
    lowerStmt(Decl.Body.get());
    if (!Builder.atTerminator())
      Builder.emitRet(Operand::imm(0));
    F->recomputePredecessors();
  }

  /// Starts a fresh insertion block (used after emitting a terminator when
  /// lowering must continue, e.g. for code after a return).
  void startBlock(BasicBlock *Block) { Builder.setInsertionPoint(Block); }

  BasicBlock *newBlock(const char *Name) { return F->createBlock(Name); }

  //===------------------------------------------------------------------===//
  // Name resolution
  //===------------------------------------------------------------------===//

  /// \returns the register of a local, or nullopt for a global scalar.
  std::optional<unsigned> lookupLocal(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return std::nullopt;
  }

  /// True if \p Reg currently backs a named local (or parameter).
  bool isLocalRegister(unsigned Reg) const {
    for (const auto &Scope : Scopes)
      for (const auto &[Name, LocalReg] : Scope)
        if (LocalReg == Reg)
          return true;
    return false;
  }

  const GlobalVariable *globalOf(const std::string &Name) const {
    auto It = Globals.find(Name);
    assert(It != Globals.end() && "sema admitted an unknown global");
    return It->second;
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  /// Lowers \p E to an operand; literals stay immediates so comparisons
  /// against constants remain single compare instructions.
  Operand lowerExpr(const Expr *E) {
    switch (E->getKind()) {
    case ExprKind::IntLit:
      return Operand::imm(cast<IntLitExpr>(E)->getValue());
    case ExprKind::VarRef: {
      const std::string &Name = cast<VarRefExpr>(E)->getName();
      if (auto Reg = lookupLocal(Name))
        return Operand::reg(*Reg);
      const GlobalVariable *GV = globalOf(Name);
      unsigned Dest = F->newReg();
      Builder.emitLoad(Dest, Operand::imm(GV->BaseAddress));
      return Operand::reg(Dest);
    }
    case ExprKind::ArrayRef: {
      Operand Address = lowerArrayAddress(cast<ArrayRefExpr>(E));
      unsigned Dest = F->newReg();
      Builder.emitLoad(Dest, Address);
      return Operand::reg(Dest);
    }
    case ExprKind::Call:
      return lowerCall(cast<CallExpr>(E));
    case ExprKind::Unary: {
      const auto *Un = cast<UnaryExpr>(E);
      Operand Src = lowerExpr(Un->getOperand());
      if (Src.isImm())
        return Operand::imm(Un->getOp() == UnOpKind::Neg
                                ? -Src.getImm()
                                : (Src.getImm() == 0 ? 1 : 0));
      unsigned Dest = F->newReg();
      Builder.emitUnary(
          Un->getOp() == UnOpKind::Neg ? UnaryOp::Neg : UnaryOp::Not, Dest,
          Src);
      return Operand::reg(Dest);
    }
    case ExprKind::Binary: {
      const auto *Bin = cast<BinaryExpr>(E);
      if (Bin->getOp() == BinOpKind::LogicalAnd ||
          Bin->getOp() == BinOpKind::LogicalOr || isComparisonOp(Bin->getOp()))
        return materializeBool(E);
      Operand Lhs = lowerExpr(Bin->getLhs());
      Operand Rhs = lowerExpr(Bin->getRhs());
      BinaryOp Op = arithOpFor(Bin->getOp());
      if (Lhs.isImm() && Rhs.isImm())
        if (auto Folded = foldBinary(Op, Lhs.getImm(), Rhs.getImm()))
          return Operand::imm(*Folded);
      unsigned Dest = F->newReg();
      Builder.emitBinary(Op, Dest, Lhs, Rhs);
      return Operand::reg(Dest);
    }
    case ExprKind::Assign:
      return lowerAssign(cast<AssignExpr>(E));
    case ExprKind::IncDec:
      return lowerIncDec(cast<IncDecExpr>(E));
    case ExprKind::Ternary: {
      const auto *Ternary = cast<TernaryExpr>(E);
      unsigned Dest = F->newReg();
      BasicBlock *ThenBB = newBlock("tern.then");
      BasicBlock *ElseBB = newBlock("tern.else");
      BasicBlock *JoinBB = newBlock("tern.join");
      lowerCondition(Ternary->getCond(), ThenBB, ElseBB);
      startBlock(ThenBB);
      Builder.emitMove(Dest, lowerExpr(Ternary->getThen()));
      Builder.emitJump(JoinBB);
      startBlock(ElseBB);
      Builder.emitMove(Dest, lowerExpr(Ternary->getElse()));
      Builder.emitJump(JoinBB);
      startBlock(JoinBB);
      return Operand::reg(Dest);
    }
    }
    BROPT_UNREACHABLE("unknown expression kind");
  }

  static BinaryOp arithOpFor(BinOpKind Op) {
    switch (Op) {
    case BinOpKind::Add:
      return BinaryOp::Add;
    case BinOpKind::Sub:
      return BinaryOp::Sub;
    case BinOpKind::Mul:
      return BinaryOp::Mul;
    case BinOpKind::Div:
      return BinaryOp::Div;
    case BinOpKind::Rem:
      return BinaryOp::Rem;
    case BinOpKind::BitAnd:
      return BinaryOp::And;
    case BinOpKind::BitOr:
      return BinaryOp::Or;
    case BinOpKind::BitXor:
      return BinaryOp::Xor;
    case BinOpKind::Shl:
      return BinaryOp::Shl;
    case BinOpKind::Shr:
      return BinaryOp::Shr;
    default:
      BROPT_UNREACHABLE("not an arithmetic operator");
    }
  }

  static std::optional<int64_t> foldBinary(BinaryOp Op, int64_t L, int64_t R) {
    switch (Op) {
    case BinaryOp::Add:
      return static_cast<int64_t>(static_cast<uint64_t>(L) +
                                  static_cast<uint64_t>(R));
    case BinaryOp::Sub:
      return static_cast<int64_t>(static_cast<uint64_t>(L) -
                                  static_cast<uint64_t>(R));
    case BinaryOp::Mul:
      return static_cast<int64_t>(static_cast<uint64_t>(L) *
                                  static_cast<uint64_t>(R));
    case BinaryOp::Div:
      if (R == 0 || (L == INT64_MIN && R == -1))
        return std::nullopt; // keep the trap at run time
      return L / R;
    case BinaryOp::Rem:
      if (R == 0 || (L == INT64_MIN && R == -1))
        return std::nullopt;
      return L % R;
    case BinaryOp::And:
      return L & R;
    case BinaryOp::Or:
      return L | R;
    case BinaryOp::Xor:
      return L ^ R;
    case BinaryOp::Shl:
      return static_cast<int64_t>(static_cast<uint64_t>(L)
                                  << (static_cast<uint64_t>(R) & 63));
    case BinaryOp::Shr:
      return L >> (static_cast<uint64_t>(R) & 63);
    }
    BROPT_UNREACHABLE("unknown binary op");
  }

  Operand lowerArrayAddress(const ArrayRefExpr *Ref) {
    const GlobalVariable *GV = globalOf(Ref->getName());
    Operand Index = lowerExpr(Ref->getIndex());
    if (Index.isImm())
      return Operand::imm(GV->BaseAddress + Index.getImm());
    unsigned AddrReg = F->newReg();
    Builder.emitBinary(BinaryOp::Add, AddrReg,
                       Operand::imm(GV->BaseAddress), Index);
    return Operand::reg(AddrReg);
  }

  Operand lowerCall(const CallExpr *Call) {
    const std::string &Name = Call->getCallee();
    if (Name == "getchar") {
      unsigned Dest = F->newReg();
      Builder.emitReadChar(Dest);
      return Operand::reg(Dest);
    }
    if (Name == "putchar") {
      Operand Arg = lowerExpr(Call->getArgs()[0].get());
      Builder.emitPutChar(Arg);
      return Arg;
    }
    if (Name == "printint") {
      Operand Arg = lowerExpr(Call->getArgs()[0].get());
      Builder.emitPrintInt(Arg);
      return Arg;
    }
    std::vector<Operand> Args;
    Args.reserve(Call->getArgs().size());
    for (const ExprPtr &Arg : Call->getArgs())
      Args.push_back(lowerExpr(Arg.get()));
    unsigned Dest = F->newReg();
    Builder.emitCall(Dest, Functions.at(Name), std::move(Args));
    return Operand::reg(Dest);
  }

  /// Lowers \p E so its result lands directly in \p Dest when the
  /// expression produces a value in one instruction; otherwise falls back
  /// to lowerExpr + move.  Avoiding the temporary keeps idioms like
  /// `c = getchar()` comparing the same register everywhere, which is what
  /// sequence detection keys on.
  void lowerExprInto(unsigned Dest, const Expr *E) {
    if (const auto *Call = dyn_cast<CallExpr>(E)) {
      if (Call->getCallee() == "getchar") {
        Builder.emitReadChar(Dest);
        return;
      }
      if (!isBuiltinFunction(Call->getCallee())) {
        std::vector<Operand> Args;
        Args.reserve(Call->getArgs().size());
        for (const ExprPtr &Arg : Call->getArgs())
          Args.push_back(lowerExpr(Arg.get()));
        Builder.emitCall(Dest, Functions.at(Call->getCallee()),
                         std::move(Args));
        return;
      }
    }
    if (const auto *Bin = dyn_cast<BinaryExpr>(E)) {
      if (!isComparisonOp(Bin->getOp()) &&
          Bin->getOp() != BinOpKind::LogicalAnd &&
          Bin->getOp() != BinOpKind::LogicalOr) {
        Operand Lhs = lowerExpr(Bin->getLhs());
        Operand Rhs = lowerExpr(Bin->getRhs());
        Builder.emitBinary(arithOpFor(Bin->getOp()), Dest, Lhs, Rhs);
        return;
      }
    }
    if (const auto *Un = dyn_cast<UnaryExpr>(E)) {
      Operand Src = lowerExpr(Un->getOperand());
      if (!Src.isImm()) {
        Builder.emitUnary(Un->getOp() == UnOpKind::Neg ? UnaryOp::Neg
                                                       : UnaryOp::Not,
                          Dest, Src);
        return;
      }
    }
    if (const auto *Ref = dyn_cast<ArrayRefExpr>(E)) {
      Builder.emitLoad(Dest, lowerArrayAddress(Ref));
      return;
    }
    Builder.emitMove(Dest, lowerExpr(E));
  }

  Operand lowerAssign(const AssignExpr *Assign) {
    // Plain assignment into a local: produce the value in place.
    if (Assign->getOp() == AssignExpr::OpKind::Plain) {
      if (const auto *Var = dyn_cast<VarRefExpr>(Assign->getTarget())) {
        if (auto Reg = lookupLocal(Var->getName())) {
          lowerExprInto(*Reg, Assign->getValue());
          return Operand::reg(*Reg);
        }
      }
    }
    Operand Value = lowerExpr(Assign->getValue());
    if (Assign->getOp() != AssignExpr::OpKind::Plain) {
      Operand Current = lowerExpr(Assign->getTarget());
      unsigned Dest = F->newReg();
      Builder.emitBinary(Assign->getOp() == AssignExpr::OpKind::Add
                             ? BinaryOp::Add
                             : BinaryOp::Sub,
                         Dest, Current, Value);
      Value = Operand::reg(Dest);
    }
    storeToLValue(Assign->getTarget(), Value);
    // When the target is a local, yield its register rather than the
    // source operand: idioms like `(c = getchar()) != EOF` then compare
    // the same register the loop body tests, which is what lets detection
    // chain the EOF test into the body's sequence (paper Figure 1).
    if (const auto *Var = dyn_cast<VarRefExpr>(Assign->getTarget()))
      if (auto Reg = lookupLocal(Var->getName()))
        return Operand::reg(*Reg);
    return Value;
  }

  Operand lowerIncDec(const IncDecExpr *IncDec) {
    Operand Old = lowerExpr(IncDec->getTarget());
    if (!IncDec->isPrefix() && Old.isReg()) {
      // Postfix yields the pre-update value; snapshot it, because the
      // register we just read may be the variable itself.
      unsigned Snapshot = F->newReg();
      Builder.emitMove(Snapshot, Old);
      Old = Operand::reg(Snapshot);
    }
    unsigned NewReg = F->newReg();
    Builder.emitBinary(IncDec->isIncrement() ? BinaryOp::Add : BinaryOp::Sub,
                       NewReg, Old, Operand::imm(1));
    storeToLValue(IncDec->getTarget(), Operand::reg(NewReg));
    return IncDec->isPrefix() ? Operand::reg(NewReg) : Old;
  }

  void storeToLValue(const Expr *Target, Operand Value) {
    if (const auto *Var = dyn_cast<VarRefExpr>(Target)) {
      if (auto Reg = lookupLocal(Var->getName())) {
        Builder.emitMove(*Reg, Value);
        return;
      }
      const GlobalVariable *GV = globalOf(Var->getName());
      Builder.emitStore(Value, Operand::imm(GV->BaseAddress));
      return;
    }
    const auto *Ref = cast<ArrayRefExpr>(Target);
    Operand Address = lowerArrayAddress(Ref);
    Builder.emitStore(Value, Address);
  }

  /// Lowers a boolean-valued expression to a register holding 0 or 1.
  Operand materializeBool(const Expr *E) {
    unsigned Dest = F->newReg();
    BasicBlock *TrueBB = newBlock("bool.true");
    BasicBlock *FalseBB = newBlock("bool.false");
    BasicBlock *JoinBB = newBlock("bool.join");
    lowerCondition(E, TrueBB, FalseBB);
    startBlock(TrueBB);
    Builder.emitMove(Dest, Operand::imm(1));
    Builder.emitJump(JoinBB);
    startBlock(FalseBB);
    Builder.emitMove(Dest, Operand::imm(0));
    Builder.emitJump(JoinBB);
    startBlock(JoinBB);
    return Operand::reg(Dest);
  }

  static CondCode condCodeFor(BinOpKind Op) {
    switch (Op) {
    case BinOpKind::Eq:
      return CondCode::EQ;
    case BinOpKind::Ne:
      return CondCode::NE;
    case BinOpKind::Lt:
      return CondCode::LT;
    case BinOpKind::Le:
      return CondCode::LE;
    case BinOpKind::Gt:
      return CondCode::GT;
    case BinOpKind::Ge:
      return CondCode::GE;
    default:
      BROPT_UNREACHABLE("not a comparison operator");
    }
  }

  /// Lowers \p E as control flow: jumps to \p TrueBB when it is nonzero
  /// and \p FalseBB otherwise, with short-circuit evaluation.
  void lowerCondition(const Expr *E, BasicBlock *TrueBB, BasicBlock *FalseBB) {
    if (const auto *Bin = dyn_cast<BinaryExpr>(E)) {
      if (Bin->getOp() == BinOpKind::LogicalAnd) {
        BasicBlock *MidBB = newBlock("and.rhs");
        lowerCondition(Bin->getLhs(), MidBB, FalseBB);
        startBlock(MidBB);
        lowerCondition(Bin->getRhs(), TrueBB, FalseBB);
        return;
      }
      if (Bin->getOp() == BinOpKind::LogicalOr) {
        BasicBlock *MidBB = newBlock("or.rhs");
        lowerCondition(Bin->getLhs(), TrueBB, MidBB);
        startBlock(MidBB);
        lowerCondition(Bin->getRhs(), TrueBB, FalseBB);
        return;
      }
      if (isComparisonOp(Bin->getOp())) {
        Operand Lhs = lowerExpr(Bin->getLhs());
        Operand Rhs = lowerExpr(Bin->getRhs());
        CondCode CC = condCodeFor(Bin->getOp());
        if (Lhs.isImm() && Rhs.isImm()) {
          // Constant condition: fold to an unconditional jump.
          Builder.emitJump(evalCondCode(CC, Lhs.getImm(), Rhs.getImm())
                               ? TrueBB
                               : FalseBB);
          return;
        }
        if (Lhs.isImm()) {
          // Canonicalize to register-vs-immediate compares, the shape the
          // range-condition detector expects.
          std::swap(Lhs, Rhs);
          CC = swapCondCode(CC);
        }
        Builder.emitCmp(Lhs, Rhs);
        Builder.emitCondBr(CC, TrueBB, FalseBB);
        return;
      }
    }
    if (const auto *Un = dyn_cast<UnaryExpr>(E)) {
      if (Un->getOp() == UnOpKind::Not) {
        lowerCondition(Un->getOperand(), FalseBB, TrueBB);
        return;
      }
    }
    Operand Value = lowerExpr(E);
    if (Value.isImm()) {
      Builder.emitJump(Value.getImm() != 0 ? TrueBB : FalseBB);
      return;
    }
    Builder.emitCmp(Value, Operand::imm(0));
    Builder.emitCondBr(CondCode::NE, TrueBB, FalseBB);
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  void lowerStmt(const Stmt *S) {
    switch (S->getKind()) {
    case StmtKind::Block: {
      Scopes.emplace_back();
      for (const StmtPtr &Child : cast<BlockStmt>(S)->getStmts())
        lowerStmt(Child.get());
      Scopes.pop_back();
      return;
    }
    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      BasicBlock *ThenBB = newBlock("if.then");
      BasicBlock *JoinBB = newBlock("if.join");
      BasicBlock *ElseBB = If->getElse() ? newBlock("if.else") : JoinBB;
      lowerCondition(If->getCond(), ThenBB, ElseBB);
      startBlock(ThenBB);
      lowerStmt(If->getThen());
      if (!Builder.atTerminator())
        Builder.emitJump(JoinBB);
      if (If->getElse()) {
        startBlock(ElseBB);
        lowerStmt(If->getElse());
        if (!Builder.atTerminator())
          Builder.emitJump(JoinBB);
      }
      startBlock(JoinBB);
      return;
    }
    case StmtKind::While: {
      const auto *While = cast<WhileStmt>(S);
      BasicBlock *CondBB = newBlock("while.cond");
      BasicBlock *BodyBB = newBlock("while.body");
      BasicBlock *ExitBB = newBlock("while.exit");
      Builder.emitJump(CondBB);
      startBlock(CondBB);
      lowerCondition(While->getCond(), BodyBB, ExitBB);
      startBlock(BodyBB);
      BreakTargets.push_back(ExitBB);
      ContinueTargets.push_back(CondBB);
      lowerStmt(While->getBody());
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      if (!Builder.atTerminator())
        Builder.emitJump(CondBB);
      startBlock(ExitBB);
      return;
    }
    case StmtKind::DoWhile: {
      const auto *Do = cast<DoWhileStmt>(S);
      BasicBlock *BodyBB = newBlock("do.body");
      BasicBlock *CondBB = newBlock("do.cond");
      BasicBlock *ExitBB = newBlock("do.exit");
      Builder.emitJump(BodyBB);
      startBlock(BodyBB);
      BreakTargets.push_back(ExitBB);
      ContinueTargets.push_back(CondBB);
      lowerStmt(Do->getBody());
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      if (!Builder.atTerminator())
        Builder.emitJump(CondBB);
      startBlock(CondBB);
      lowerCondition(Do->getCond(), BodyBB, ExitBB);
      startBlock(ExitBB);
      return;
    }
    case StmtKind::For: {
      const auto *For = cast<ForStmt>(S);
      Scopes.emplace_back();
      if (For->getInit())
        lowerStmt(For->getInit());
      BasicBlock *CondBB = newBlock("for.cond");
      BasicBlock *BodyBB = newBlock("for.body");
      BasicBlock *StepBB = newBlock("for.step");
      BasicBlock *ExitBB = newBlock("for.exit");
      Builder.emitJump(CondBB);
      startBlock(CondBB);
      if (For->getCond())
        lowerCondition(For->getCond(), BodyBB, ExitBB);
      else
        Builder.emitJump(BodyBB);
      startBlock(BodyBB);
      BreakTargets.push_back(ExitBB);
      ContinueTargets.push_back(StepBB);
      lowerStmt(For->getBody());
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      if (!Builder.atTerminator())
        Builder.emitJump(StepBB);
      startBlock(StepBB);
      if (For->getStep())
        lowerExpr(For->getStep());
      Builder.emitJump(CondBB);
      Scopes.pop_back();
      startBlock(ExitBB);
      return;
    }
    case StmtKind::Switch:
      lowerSwitch(cast<SwitchStmt>(S));
      return;
    case StmtKind::Break:
      assert(!BreakTargets.empty() && "sema admitted a stray break");
      Builder.emitJump(BreakTargets.back());
      startBlock(newBlock("after.break"));
      return;
    case StmtKind::Continue:
      assert(!ContinueTargets.empty() && "sema admitted a stray continue");
      Builder.emitJump(ContinueTargets.back());
      startBlock(newBlock("after.continue"));
      return;
    case StmtKind::Return: {
      const auto *Ret = cast<ReturnStmt>(S);
      Operand Value =
          Ret->getValue() ? lowerExpr(Ret->getValue()) : Operand::imm(0);
      Builder.emitRet(Value);
      startBlock(newBlock("after.return"));
      return;
    }
    case StmtKind::ExprStmt:
      lowerExpr(cast<ExprStmt>(S)->getExpr());
      return;
    case StmtKind::VarDecl: {
      const auto *Decl = cast<VarDeclStmt>(S);
      Operand Init =
          Decl->getInit() ? lowerExpr(Decl->getInit()) : Operand::imm(0);
      // Adopt a freshly produced temporary as the variable's register so
      // `int c = getchar();` and the comparisons that follow all use one
      // register (the paper relies on the branch variable living in a
      // single register through the sequence).  Registers that belong to
      // other locals must be copied, not aliased.
      unsigned Reg;
      if (Init.isReg() && !isLocalRegister(Init.getReg())) {
        Reg = Init.getReg();
      } else {
        Reg = F->newReg();
        Builder.emitMove(Reg, Init);
      }
      Scopes.back()[Decl->getName()] = Reg;
      return;
    }
    case StmtKind::Empty:
      return;
    }
  }

  void lowerSwitch(const SwitchStmt *Switch) {
    Operand Value = lowerExpr(Switch->getValue());
    // SwitchInst wants a register so the later lowering pass can compare it
    // repeatedly without re-evaluating anything.
    if (Value.isImm()) {
      unsigned Reg = F->newReg();
      Builder.emitMove(Reg, Value);
      Value = Operand::reg(Reg);
    }

    BasicBlock *ExitBB = newBlock("switch.exit");
    std::vector<BasicBlock *> SectionBlocks;
    BasicBlock *DefaultBB = ExitBB;
    std::vector<SwitchInst::Case> Cases;
    for (const SwitchSection &Section : Switch->getSections()) {
      BasicBlock *SectionBB = newBlock("switch.section");
      SectionBlocks.push_back(SectionBB);
      for (const std::optional<int64_t> &Label : Section.Labels) {
        if (Label)
          Cases.push_back({*Label, SectionBB});
        else
          DefaultBB = SectionBB;
      }
    }
    Builder.emitSwitch(Value, std::move(Cases), DefaultBB);

    BreakTargets.push_back(ExitBB);
    const auto &Sections = Switch->getSections();
    for (size_t Index = 0; Index < Sections.size(); ++Index) {
      startBlock(SectionBlocks[Index]);
      for (const StmtPtr &Child : Sections[Index].Stmts)
        lowerStmt(Child.get());
      if (!Builder.atTerminator()) {
        // C fall-through into the next section, or out of the switch.
        BasicBlock *Next = Index + 1 < Sections.size()
                               ? SectionBlocks[Index + 1]
                               : ExitBB;
        Builder.emitJump(Next);
      }
    }
    BreakTargets.pop_back();
    startBlock(ExitBB);
  }

  const TranslationUnit &Unit;
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  IRBuilder Builder;
  std::unordered_map<std::string, const GlobalVariable *> Globals;
  std::unordered_map<std::string, Function *> Functions;
  std::vector<std::unordered_map<std::string, unsigned>> Scopes;
  std::vector<BasicBlock *> BreakTargets;
  std::vector<BasicBlock *> ContinueTargets;
};

} // namespace

std::unique_ptr<Module> bropt::lowerUnit(const TranslationUnit &Unit) {
  return LoweringImpl(Unit).run();
}

std::unique_ptr<Module> bropt::compileSource(std::string_view Source,
                                             std::string *ErrorText) {
  TranslationUnit Unit;
  std::vector<Diagnostic> Diags;
  if (!parseSource(Source, Unit, Diags) || !analyzeUnit(Unit, Diags)) {
    if (ErrorText)
      *ErrorText = renderDiagnostics(Diags);
    return nullptr;
  }
  return lowerUnit(Unit);
}
