//===- lang/AST.h - Mini-C abstract syntax tree -----------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node classes for Mini-C.  The tree is produced by the parser,
/// validated by Sema, and consumed by Lowering.  Nodes use the same opt-in
/// RTTI scheme as the IR (classof + isa/cast/dyn_cast free functions).
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_LANG_AST_H
#define BROPT_LANG_AST_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace bropt {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binary operators at the AST level (short-circuit logic included).
enum class BinOpKind : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LogicalAnd,
  LogicalOr,
};

/// \returns true for ==, !=, <, <=, >, >=.
bool isComparisonOp(BinOpKind Op);

enum class ExprKind : uint8_t {
  IntLit,
  VarRef,
  ArrayRef,
  Call,
  Unary,
  Binary,
  Assign,
  IncDec,
  Ternary,
};

/// Base class for expressions.
class Expr {
public:
  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;
  virtual ~Expr() = default;

  ExprKind getKind() const { return Kind; }
  unsigned getLine() const { return Line; }

protected:
  Expr(ExprKind Kind, unsigned Line) : Kind(Kind), Line(Line) {}

private:
  ExprKind Kind;
  unsigned Line;
};

using ExprPtr = std::unique_ptr<Expr>;

template <typename To> bool isa(const Expr *E) {
  assert(E && "isa<> on a null expression");
  return To::classof(E);
}
template <typename To> To *cast(Expr *E) {
  assert(isa<To>(E) && "bad expression cast");
  return static_cast<To *>(E);
}
template <typename To> const To *cast(const Expr *E) {
  assert(isa<To>(E) && "bad expression cast");
  return static_cast<const To *>(E);
}
template <typename To> To *dyn_cast(Expr *E) {
  return isa<To>(E) ? static_cast<To *>(E) : nullptr;
}
template <typename To> const To *dyn_cast(const Expr *E) {
  return isa<To>(E) ? static_cast<const To *>(E) : nullptr;
}

/// Integer or character literal.
class IntLitExpr final : public Expr {
public:
  IntLitExpr(int64_t Value, unsigned Line)
      : Expr(ExprKind::IntLit, Line), Value(Value) {}
  int64_t getValue() const { return Value; }
  void setValue(int64_t V) { Value = V; }
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::IntLit; }

private:
  int64_t Value;
};

/// Reference to a scalar variable (local, parameter, or global).
class VarRefExpr final : public Expr {
public:
  VarRefExpr(std::string Name, unsigned Line)
      : Expr(ExprKind::VarRef, Line), Name(std::move(Name)) {}
  const std::string &getName() const { return Name; }
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::VarRef; }

private:
  std::string Name;
};

/// arr[index] where arr is a global array.
class ArrayRefExpr final : public Expr {
public:
  ArrayRefExpr(std::string Name, ExprPtr Index, unsigned Line)
      : Expr(ExprKind::ArrayRef, Line), Name(std::move(Name)),
        Index(std::move(Index)) {}
  const std::string &getName() const { return Name; }
  const Expr *getIndex() const { return Index.get(); }
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::ArrayRef;
  }

private:
  std::string Name;
  ExprPtr Index;
};

/// Function call; getchar/putchar/printint are recognized by name.
class CallExpr final : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, unsigned Line)
      : Expr(ExprKind::Call, Line), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  const std::string &getCallee() const { return Callee; }
  const std::vector<ExprPtr> &getArgs() const { return Args; }
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Call; }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
};

enum class UnOpKind : uint8_t { Neg, Not };

/// -e or !e.
class UnaryExpr final : public Expr {
public:
  UnaryExpr(UnOpKind Op, ExprPtr Operand, unsigned Line)
      : Expr(ExprKind::Unary, Line), Op(Op), Operand(std::move(Operand)) {}
  UnOpKind getOp() const { return Op; }
  const Expr *getOperand() const { return Operand.get(); }
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Unary; }

private:
  UnOpKind Op;
  ExprPtr Operand;
};

/// e1 op e2.
class BinaryExpr final : public Expr {
public:
  BinaryExpr(BinOpKind Op, ExprPtr Lhs, ExprPtr Rhs, unsigned Line)
      : Expr(ExprKind::Binary, Line), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  BinOpKind getOp() const { return Op; }
  const Expr *getLhs() const { return Lhs.get(); }
  const Expr *getRhs() const { return Rhs.get(); }
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Binary;
  }

private:
  BinOpKind Op;
  ExprPtr Lhs, Rhs;
};

/// target = value, target += value, target -= value.
class AssignExpr final : public Expr {
public:
  enum class OpKind : uint8_t { Plain, Add, Sub };

  AssignExpr(OpKind Op, ExprPtr Target, ExprPtr Value, unsigned Line)
      : Expr(ExprKind::Assign, Line), Op(Op), Target(std::move(Target)),
        Value(std::move(Value)) {}
  OpKind getOp() const { return Op; }
  const Expr *getTarget() const { return Target.get(); }
  const Expr *getValue() const { return Value.get(); }
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Assign;
  }

private:
  OpKind Op;
  ExprPtr Target, Value;
};

/// ++x, x++, --x, x--.
class IncDecExpr final : public Expr {
public:
  IncDecExpr(bool IsIncrement, bool IsPrefix, ExprPtr Target, unsigned Line)
      : Expr(ExprKind::IncDec, Line), Increment(IsIncrement),
        Prefix(IsPrefix), Target(std::move(Target)) {}
  bool isIncrement() const { return Increment; }
  bool isPrefix() const { return Prefix; }
  const Expr *getTarget() const { return Target.get(); }
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::IncDec;
  }

private:
  bool Increment;
  bool Prefix;
  ExprPtr Target;
};

/// cond ? then : otherwise.
class TernaryExpr final : public Expr {
public:
  TernaryExpr(ExprPtr Cond, ExprPtr Then, ExprPtr Else, unsigned Line)
      : Expr(ExprKind::Ternary, Line), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}
  const Expr *getCond() const { return Cond.get(); }
  const Expr *getThen() const { return Then.get(); }
  const Expr *getElse() const { return Else.get(); }
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Ternary;
  }

private:
  ExprPtr Cond, Then, Else;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Block,
  If,
  While,
  DoWhile,
  For,
  Switch,
  Break,
  Continue,
  Return,
  ExprStmt,
  VarDecl,
  Empty,
};

/// Base class for statements.
class Stmt {
public:
  Stmt(const Stmt &) = delete;
  Stmt &operator=(const Stmt &) = delete;
  virtual ~Stmt() = default;

  StmtKind getKind() const { return Kind; }
  unsigned getLine() const { return Line; }

protected:
  Stmt(StmtKind Kind, unsigned Line) : Kind(Kind), Line(Line) {}

private:
  StmtKind Kind;
  unsigned Line;
};

using StmtPtr = std::unique_ptr<Stmt>;

template <typename To> bool isa(const Stmt *S) {
  assert(S && "isa<> on a null statement");
  return To::classof(S);
}
template <typename To> To *cast(Stmt *S) {
  assert(isa<To>(S) && "bad statement cast");
  return static_cast<To *>(S);
}
template <typename To> const To *cast(const Stmt *S) {
  assert(isa<To>(S) && "bad statement cast");
  return static_cast<const To *>(S);
}
template <typename To> To *dyn_cast(Stmt *S) {
  return isa<To>(S) ? static_cast<To *>(S) : nullptr;
}
template <typename To> const To *dyn_cast(const Stmt *S) {
  return isa<To>(S) ? static_cast<const To *>(S) : nullptr;
}

/// { stmt* }
class BlockStmt final : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Stmts, unsigned Line)
      : Stmt(StmtKind::Block, Line), Stmts(std::move(Stmts)) {}
  const std::vector<StmtPtr> &getStmts() const { return Stmts; }
  /// Mutable access for tools that shrink programs (fuzz minimizer).
  std::vector<StmtPtr> &stmts() { return Stmts; }
  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::Block; }

private:
  std::vector<StmtPtr> Stmts;
};

/// if (cond) then [else otherwise]
class IfStmt final : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, unsigned Line)
      : Stmt(StmtKind::If, Line), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}
  const Expr *getCond() const { return Cond.get(); }
  const Stmt *getThen() const { return Then.get(); }
  const Stmt *getElse() const { return Else.get(); }
  /// Minimizer hooks: extract or drop branches in place.
  StmtPtr takeThen() { return std::move(Then); }
  StmtPtr takeElse() { return std::move(Else); }
  void setThen(StmtPtr S) { Then = std::move(S); }
  void setElse(StmtPtr S) { Else = std::move(S); }
  StmtPtr &thenSlot() { return Then; }
  StmtPtr &elseSlot() { return Else; }
  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then, Else; ///< Else may be null
};

/// while (cond) body
class WhileStmt final : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, unsigned Line)
      : Stmt(StmtKind::While, Line), Cond(std::move(Cond)),
        Body(std::move(Body)) {}
  const Expr *getCond() const { return Cond.get(); }
  const Stmt *getBody() const { return Body.get(); }
  StmtPtr takeBody() { return std::move(Body); }
  void setBody(StmtPtr S) { Body = std::move(S); }
  StmtPtr &bodySlot() { return Body; }
  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::While; }

private:
  ExprPtr Cond;
  StmtPtr Body;
};

/// do body while (cond);
class DoWhileStmt final : public Stmt {
public:
  DoWhileStmt(StmtPtr Body, ExprPtr Cond, unsigned Line)
      : Stmt(StmtKind::DoWhile, Line), Body(std::move(Body)),
        Cond(std::move(Cond)) {}
  const Stmt *getBody() const { return Body.get(); }
  const Expr *getCond() const { return Cond.get(); }
  StmtPtr takeBody() { return std::move(Body); }
  void setBody(StmtPtr S) { Body = std::move(S); }
  StmtPtr &bodySlot() { return Body; }
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::DoWhile;
  }

private:
  StmtPtr Body;
  ExprPtr Cond;
};

/// for (init; cond; step) body — any part may be absent.
class ForStmt final : public Stmt {
public:
  ForStmt(StmtPtr Init, ExprPtr Cond, ExprPtr Step, StmtPtr Body,
          unsigned Line)
      : Stmt(StmtKind::For, Line), Init(std::move(Init)),
        Cond(std::move(Cond)), Step(std::move(Step)), Body(std::move(Body)) {}
  const Stmt *getInit() const { return Init.get(); }
  const Expr *getCond() const { return Cond.get(); }
  const Expr *getStep() const { return Step.get(); }
  const Stmt *getBody() const { return Body.get(); }
  StmtPtr takeBody() { return std::move(Body); }
  void setBody(StmtPtr S) { Body = std::move(S); }
  StmtPtr &bodySlot() { return Body; }
  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::For; }

private:
  StmtPtr Init; ///< VarDecl or ExprStmt or null
  ExprPtr Cond; ///< null = always true
  ExprPtr Step; ///< may be null
  StmtPtr Body;
};

/// One labeled section of a switch body; control falls through to the next
/// section exactly as in C.
struct SwitchSection {
  /// Case labels attached to this section; nullopt is 'default'.
  std::vector<std::optional<int64_t>> Labels;
  std::vector<StmtPtr> Stmts;
};

/// switch (value) { case ...: ... }
class SwitchStmt final : public Stmt {
public:
  SwitchStmt(ExprPtr Value, std::vector<SwitchSection> Sections, unsigned Line)
      : Stmt(StmtKind::Switch, Line), Value(std::move(Value)),
        Sections(std::move(Sections)) {}
  const Expr *getValue() const { return Value.get(); }
  const std::vector<SwitchSection> &getSections() const { return Sections; }
  /// Mutable access for tools that shrink programs (fuzz minimizer).
  std::vector<SwitchSection> &sections() { return Sections; }
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Switch;
  }

private:
  ExprPtr Value;
  std::vector<SwitchSection> Sections;
};

class BreakStmt final : public Stmt {
public:
  explicit BreakStmt(unsigned Line) : Stmt(StmtKind::Break, Line) {}
  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::Break; }
};

class ContinueStmt final : public Stmt {
public:
  explicit ContinueStmt(unsigned Line) : Stmt(StmtKind::Continue, Line) {}
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Continue;
  }
};

/// return [expr];
class ReturnStmt final : public Stmt {
public:
  ReturnStmt(ExprPtr Value, unsigned Line)
      : Stmt(StmtKind::Return, Line), Value(std::move(Value)) {}
  const Expr *getValue() const { return Value.get(); } ///< may be null
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Return;
  }

private:
  ExprPtr Value;
};

/// expr;
class ExprStmt final : public Stmt {
public:
  ExprStmt(ExprPtr E, unsigned Line)
      : Stmt(StmtKind::ExprStmt, Line), E(std::move(E)) {}
  const Expr *getExpr() const { return E.get(); }
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::ExprStmt;
  }

private:
  ExprPtr E;
};

/// int x [= init];  (local scalar declaration)
class VarDeclStmt final : public Stmt {
public:
  VarDeclStmt(std::string Name, ExprPtr Init, unsigned Line)
      : Stmt(StmtKind::VarDecl, Line), Name(std::move(Name)),
        Init(std::move(Init)) {}
  const std::string &getName() const { return Name; }
  const Expr *getInit() const { return Init.get(); } ///< may be null
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::VarDecl;
  }

private:
  std::string Name;
  ExprPtr Init;
};

class EmptyStmt final : public Stmt {
public:
  explicit EmptyStmt(unsigned Line) : Stmt(StmtKind::Empty, Line) {}
  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::Empty; }
};

//===----------------------------------------------------------------------===//
// Declarations and the translation unit
//===----------------------------------------------------------------------===//

/// A function definition.
struct FunctionDecl {
  std::string Name;
  std::vector<std::string> Params;
  bool ReturnsValue = true; ///< false for 'void'
  StmtPtr Body;             ///< always a BlockStmt
  unsigned Line = 0;
};

/// A global scalar or array definition.
struct GlobalDecl {
  std::string Name;
  std::optional<uint32_t> ArraySize; ///< nullopt = scalar
  std::vector<int64_t> Init;         ///< scalar: 0 or 1 entry
  unsigned Line = 0;
};

/// A parsed Mini-C source file.
struct TranslationUnit {
  std::vector<GlobalDecl> Globals;
  std::vector<FunctionDecl> Functions;
};

} // namespace bropt

#endif // BROPT_LANG_AST_H
