//===- lang/AST.cpp - Mini-C abstract syntax tree --------------------------===//

#include "lang/AST.h"

using namespace bropt;

bool bropt::isComparisonOp(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Eq:
  case BinOpKind::Ne:
  case BinOpKind::Lt:
  case BinOpKind::Le:
  case BinOpKind::Gt:
  case BinOpKind::Ge:
    return true;
  default:
    return false;
  }
}
