//===- lang/Parser.cpp - Mini-C recursive-descent parser -------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "support/Strings.h"

using namespace bropt;

std::string bropt::renderDiagnostics(const std::vector<Diagnostic> &Diags) {
  std::string Text;
  for (const Diagnostic &D : Diags)
    Text += formatString("line %u: %s\n", D.Line, D.Message.c_str());
  return Text;
}

namespace {

class ParserImpl {
public:
  ParserImpl(std::vector<Token> Tokens, std::vector<Diagnostic> &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  bool run(TranslationUnit &Unit) {
    // Surface lexer errors first.
    for (const Token &Tok : Tokens)
      if (Tok.is(TokenKind::Error))
        error(Tok.Line, std::string(Tok.Text));
    if (!Diags.empty())
      return false;

    while (!peek().is(TokenKind::EndOfFile)) {
      if (!parseTopLevel(Unit))
        synchronizeTopLevel();
    }
    return !HadError;
  }

private:
  //===------------------------------------------------------------------===//
  // Token stream helpers
  //===------------------------------------------------------------------===//

  const Token &peek(size_t Ahead = 0) const {
    size_t Index = Pos + Ahead;
    if (Index >= Tokens.size())
      Index = Tokens.size() - 1; // EndOfFile
    return Tokens[Index];
  }

  const Token &advance() {
    const Token &Tok = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return Tok;
  }

  bool match(TokenKind Kind) {
    if (!peek().is(Kind))
      return false;
    advance();
    return true;
  }

  bool expect(TokenKind Kind, const char *Context) {
    if (match(Kind))
      return true;
    error(peek().Line, formatString("expected %s %s, found %s",
                                    tokenKindName(Kind), Context,
                                    tokenKindName(peek().Kind)));
    return false;
  }

  void error(unsigned Line, std::string Message) {
    HadError = true;
    Diags.push_back({Line, std::move(Message)});
  }

  /// Skips ahead to something that can plausibly start a top-level decl.
  void synchronizeTopLevel() {
    while (!peek().is(TokenKind::EndOfFile)) {
      if (peek().is(TokenKind::KwInt) || peek().is(TokenKind::KwVoid))
        return;
      advance();
    }
  }

  /// Skips to the next ';' or '}' after a statement-level error.
  void synchronizeStmt() {
    while (!peek().is(TokenKind::EndOfFile)) {
      if (match(TokenKind::Semicolon))
        return;
      if (peek().is(TokenKind::RBrace))
        return;
      advance();
    }
  }

  //===------------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------------===//

  bool parseTopLevel(TranslationUnit &Unit) {
    bool IsVoid = peek().is(TokenKind::KwVoid);
    if (!IsVoid && !peek().is(TokenKind::KwInt)) {
      error(peek().Line, "expected 'int' or 'void' at top level");
      return false;
    }
    advance();
    if (!peek().is(TokenKind::Identifier)) {
      error(peek().Line, "expected a name after the type");
      return false;
    }
    Token NameTok = advance();
    if (peek().is(TokenKind::LParen))
      return parseFunction(Unit, NameTok, /*ReturnsValue=*/!IsVoid);
    if (IsVoid) {
      error(NameTok.Line, "global variables must have type 'int'");
      return false;
    }
    return parseGlobal(Unit, NameTok);
  }

  bool parseGlobal(TranslationUnit &Unit, const Token &NameTok) {
    GlobalDecl Global;
    Global.Name = std::string(NameTok.Text);
    Global.Line = NameTok.Line;
    if (match(TokenKind::LBracket)) {
      if (!peek().is(TokenKind::IntLiteral)) {
        error(peek().Line, "array size must be an integer literal");
        return false;
      }
      int64_t Size = advance().IntValue;
      if (Size <= 0 || Size > (1 << 24)) {
        error(NameTok.Line, "array size out of range");
        return false;
      }
      Global.ArraySize = static_cast<uint32_t>(Size);
      if (!expect(TokenKind::RBracket, "after the array size"))
        return false;
    }
    if (match(TokenKind::Assign)) {
      if (Global.ArraySize) {
        if (!expect(TokenKind::LBrace, "to begin the array initializer"))
          return false;
        if (!peek().is(TokenKind::RBrace)) {
          do {
            int64_t Value;
            if (!parseSignedLiteral(Value))
              return false;
            Global.Init.push_back(Value);
          } while (match(TokenKind::Comma));
        }
        if (!expect(TokenKind::RBrace, "to end the array initializer"))
          return false;
        if (Global.Init.size() > *Global.ArraySize) {
          error(NameTok.Line, "too many initializers for the array");
          return false;
        }
      } else {
        int64_t Value;
        if (!parseSignedLiteral(Value))
          return false;
        Global.Init.push_back(Value);
      }
    }
    if (!expect(TokenKind::Semicolon, "after the global declaration"))
      return false;
    Unit.Globals.push_back(std::move(Global));
    return true;
  }

  bool parseSignedLiteral(int64_t &Value) {
    bool Negate = match(TokenKind::Minus);
    if (!peek().is(TokenKind::IntLiteral)) {
      error(peek().Line, "expected an integer literal");
      return false;
    }
    Value = advance().IntValue;
    if (Negate)
      Value = -Value;
    return true;
  }

  bool parseFunction(TranslationUnit &Unit, const Token &NameTok,
                     bool ReturnsValue) {
    FunctionDecl Func;
    Func.Name = std::string(NameTok.Text);
    Func.ReturnsValue = ReturnsValue;
    Func.Line = NameTok.Line;
    expect(TokenKind::LParen, "to begin the parameter list");
    if (!peek().is(TokenKind::RParen) && !peek().is(TokenKind::KwVoid)) {
      do {
        if (!expect(TokenKind::KwInt, "before the parameter name"))
          return false;
        if (!peek().is(TokenKind::Identifier)) {
          error(peek().Line, "expected a parameter name");
          return false;
        }
        Func.Params.push_back(std::string(advance().Text));
      } while (match(TokenKind::Comma));
    } else {
      match(TokenKind::KwVoid); // allow f(void)
    }
    if (!expect(TokenKind::RParen, "to end the parameter list"))
      return false;
    if (!peek().is(TokenKind::LBrace)) {
      error(peek().Line, "expected a function body");
      return false;
    }
    Func.Body = parseBlock();
    if (!Func.Body)
      return false;
    Unit.Functions.push_back(std::move(Func));
    return true;
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  StmtPtr parseBlock() {
    unsigned Line = peek().Line;
    if (!expect(TokenKind::LBrace, "to begin a block"))
      return nullptr;
    std::vector<StmtPtr> Stmts;
    while (!peek().is(TokenKind::RBrace) &&
           !peek().is(TokenKind::EndOfFile)) {
      StmtPtr S = parseStmt();
      if (!S) {
        synchronizeStmt();
        continue;
      }
      Stmts.push_back(std::move(S));
    }
    if (!expect(TokenKind::RBrace, "to end the block"))
      return nullptr;
    return std::make_unique<BlockStmt>(std::move(Stmts), Line);
  }

  StmtPtr parseStmt() {
    unsigned Line = peek().Line;
    switch (peek().Kind) {
    case TokenKind::LBrace:
      return parseBlock();
    case TokenKind::Semicolon:
      advance();
      return std::make_unique<EmptyStmt>(Line);
    case TokenKind::KwInt:
      return parseVarDecl();
    case TokenKind::KwIf: {
      advance();
      if (!expect(TokenKind::LParen, "after 'if'"))
        return nullptr;
      ExprPtr Cond = parseExpr();
      if (!Cond || !expect(TokenKind::RParen, "after the if condition"))
        return nullptr;
      StmtPtr Then = parseStmt();
      if (!Then)
        return nullptr;
      StmtPtr Else;
      if (match(TokenKind::KwElse)) {
        Else = parseStmt();
        if (!Else)
          return nullptr;
      }
      return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                      std::move(Else), Line);
    }
    case TokenKind::KwWhile: {
      advance();
      if (!expect(TokenKind::LParen, "after 'while'"))
        return nullptr;
      ExprPtr Cond = parseExpr();
      if (!Cond || !expect(TokenKind::RParen, "after the loop condition"))
        return nullptr;
      StmtPtr Body = parseStmt();
      if (!Body)
        return nullptr;
      return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body),
                                         Line);
    }
    case TokenKind::KwDo: {
      advance();
      StmtPtr Body = parseStmt();
      if (!Body)
        return nullptr;
      if (!expect(TokenKind::KwWhile, "after a do body"))
        return nullptr;
      if (!expect(TokenKind::LParen, "after 'while'"))
        return nullptr;
      ExprPtr Cond = parseExpr();
      if (!Cond || !expect(TokenKind::RParen, "after the loop condition") ||
          !expect(TokenKind::Semicolon, "after the do-while statement"))
        return nullptr;
      return std::make_unique<DoWhileStmt>(std::move(Body), std::move(Cond),
                                           Line);
    }
    case TokenKind::KwFor:
      return parseFor();
    case TokenKind::KwSwitch:
      return parseSwitch();
    case TokenKind::KwBreak:
      advance();
      if (!expect(TokenKind::Semicolon, "after 'break'"))
        return nullptr;
      return std::make_unique<BreakStmt>(Line);
    case TokenKind::KwContinue:
      advance();
      if (!expect(TokenKind::Semicolon, "after 'continue'"))
        return nullptr;
      return std::make_unique<ContinueStmt>(Line);
    case TokenKind::KwReturn: {
      advance();
      ExprPtr Value;
      if (!peek().is(TokenKind::Semicolon)) {
        Value = parseExpr();
        if (!Value)
          return nullptr;
      }
      if (!expect(TokenKind::Semicolon, "after 'return'"))
        return nullptr;
      return std::make_unique<ReturnStmt>(std::move(Value), Line);
    }
    default: {
      ExprPtr E = parseExpr();
      if (!E || !expect(TokenKind::Semicolon, "after the expression"))
        return nullptr;
      return std::make_unique<ExprStmt>(std::move(E), Line);
    }
    }
  }

  StmtPtr parseVarDecl() {
    unsigned Line = peek().Line;
    advance(); // int
    if (!peek().is(TokenKind::Identifier)) {
      error(peek().Line, "expected a variable name");
      return nullptr;
    }
    std::string Name(advance().Text);
    ExprPtr Init;
    if (match(TokenKind::Assign)) {
      Init = parseExpr();
      if (!Init)
        return nullptr;
    }
    if (!expect(TokenKind::Semicolon, "after the declaration"))
      return nullptr;
    return std::make_unique<VarDeclStmt>(std::move(Name), std::move(Init),
                                         Line);
  }

  StmtPtr parseFor() {
    unsigned Line = peek().Line;
    advance(); // for
    if (!expect(TokenKind::LParen, "after 'for'"))
      return nullptr;
    StmtPtr Init;
    if (!match(TokenKind::Semicolon)) {
      if (peek().is(TokenKind::KwInt)) {
        Init = parseVarDecl();
        if (!Init)
          return nullptr;
      } else {
        ExprPtr E = parseExpr();
        if (!E || !expect(TokenKind::Semicolon, "after the for initializer"))
          return nullptr;
        Init = std::make_unique<ExprStmt>(std::move(E), Line);
      }
    }
    ExprPtr Cond;
    if (!peek().is(TokenKind::Semicolon)) {
      Cond = parseExpr();
      if (!Cond)
        return nullptr;
    }
    if (!expect(TokenKind::Semicolon, "after the for condition"))
      return nullptr;
    ExprPtr Step;
    if (!peek().is(TokenKind::RParen)) {
      Step = parseExpr();
      if (!Step)
        return nullptr;
    }
    if (!expect(TokenKind::RParen, "to end the for header"))
      return nullptr;
    StmtPtr Body = parseStmt();
    if (!Body)
      return nullptr;
    return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                     std::move(Step), std::move(Body), Line);
  }

  StmtPtr parseSwitch() {
    unsigned Line = peek().Line;
    advance(); // switch
    if (!expect(TokenKind::LParen, "after 'switch'"))
      return nullptr;
    ExprPtr Value = parseExpr();
    if (!Value || !expect(TokenKind::RParen, "after the switch value"))
      return nullptr;
    if (!expect(TokenKind::LBrace, "to begin the switch body"))
      return nullptr;

    std::vector<SwitchSection> Sections;
    while (!peek().is(TokenKind::RBrace) &&
           !peek().is(TokenKind::EndOfFile)) {
      if (!peek().is(TokenKind::KwCase) && !peek().is(TokenKind::KwDefault)) {
        error(peek().Line, "expected 'case' or 'default' in a switch body");
        return nullptr;
      }
      SwitchSection Section;
      // Gather consecutive labels.
      while (peek().is(TokenKind::KwCase) || peek().is(TokenKind::KwDefault)) {
        if (match(TokenKind::KwDefault)) {
          Section.Labels.push_back(std::nullopt);
        } else {
          advance(); // case
          int64_t LabelValue;
          if (!parseSignedLiteral(LabelValue))
            return nullptr;
          Section.Labels.push_back(LabelValue);
        }
        if (!expect(TokenKind::Colon, "after the case label"))
          return nullptr;
      }
      // Gather statements until the next label or the closing brace.
      while (!peek().is(TokenKind::KwCase) &&
             !peek().is(TokenKind::KwDefault) &&
             !peek().is(TokenKind::RBrace) &&
             !peek().is(TokenKind::EndOfFile)) {
        StmtPtr S = parseStmt();
        if (!S)
          return nullptr;
        Section.Stmts.push_back(std::move(S));
      }
      Sections.push_back(std::move(Section));
    }
    if (!expect(TokenKind::RBrace, "to end the switch body"))
      return nullptr;
    return std::make_unique<SwitchStmt>(std::move(Value), std::move(Sections),
                                        Line);
  }

  //===------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===------------------------------------------------------------------===//

  ExprPtr parseExpr() { return parseAssignment(); }

  ExprPtr parseAssignment() {
    ExprPtr Lhs = parseTernary();
    if (!Lhs)
      return nullptr;
    unsigned Line = peek().Line;
    AssignExpr::OpKind Op;
    if (peek().is(TokenKind::Assign))
      Op = AssignExpr::OpKind::Plain;
    else if (peek().is(TokenKind::PlusAssign))
      Op = AssignExpr::OpKind::Add;
    else if (peek().is(TokenKind::MinusAssign))
      Op = AssignExpr::OpKind::Sub;
    else
      return Lhs;
    advance();
    ExprPtr Rhs = parseAssignment();
    if (!Rhs)
      return nullptr;
    return std::make_unique<AssignExpr>(Op, std::move(Lhs), std::move(Rhs),
                                        Line);
  }

  ExprPtr parseTernary() {
    ExprPtr Cond = parseBinary(0);
    if (!Cond)
      return nullptr;
    if (!match(TokenKind::Question))
      return Cond;
    unsigned Line = peek().Line;
    ExprPtr Then = parseExpr();
    if (!Then || !expect(TokenKind::Colon, "in the conditional expression"))
      return nullptr;
    ExprPtr Else = parseTernary();
    if (!Else)
      return nullptr;
    return std::make_unique<TernaryExpr>(std::move(Cond), std::move(Then),
                                         std::move(Else), Line);
  }

  /// Binary operator precedence; higher binds tighter.
  static int precedenceOf(TokenKind Kind) {
    switch (Kind) {
    case TokenKind::PipePipe:
      return 1;
    case TokenKind::AmpAmp:
      return 2;
    case TokenKind::Pipe:
      return 3;
    case TokenKind::Caret:
      return 4;
    case TokenKind::Amp:
      return 5;
    case TokenKind::EqEq:
    case TokenKind::NotEq:
      return 6;
    case TokenKind::Less:
    case TokenKind::LessEq:
    case TokenKind::Greater:
    case TokenKind::GreaterEq:
      return 7;
    case TokenKind::Shl:
    case TokenKind::Shr:
      return 8;
    case TokenKind::Plus:
    case TokenKind::Minus:
      return 9;
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent:
      return 10;
    default:
      return -1;
    }
  }

  static BinOpKind binOpFor(TokenKind Kind) {
    switch (Kind) {
    case TokenKind::PipePipe:
      return BinOpKind::LogicalOr;
    case TokenKind::AmpAmp:
      return BinOpKind::LogicalAnd;
    case TokenKind::Pipe:
      return BinOpKind::BitOr;
    case TokenKind::Caret:
      return BinOpKind::BitXor;
    case TokenKind::Amp:
      return BinOpKind::BitAnd;
    case TokenKind::EqEq:
      return BinOpKind::Eq;
    case TokenKind::NotEq:
      return BinOpKind::Ne;
    case TokenKind::Less:
      return BinOpKind::Lt;
    case TokenKind::LessEq:
      return BinOpKind::Le;
    case TokenKind::Greater:
      return BinOpKind::Gt;
    case TokenKind::GreaterEq:
      return BinOpKind::Ge;
    case TokenKind::Shl:
      return BinOpKind::Shl;
    case TokenKind::Shr:
      return BinOpKind::Shr;
    case TokenKind::Plus:
      return BinOpKind::Add;
    case TokenKind::Minus:
      return BinOpKind::Sub;
    case TokenKind::Star:
      return BinOpKind::Mul;
    case TokenKind::Slash:
      return BinOpKind::Div;
    case TokenKind::Percent:
      return BinOpKind::Rem;
    default:
      return BinOpKind::Add; // unreachable; precedenceOf filtered
    }
  }

  ExprPtr parseBinary(int MinPrecedence) {
    ExprPtr Lhs = parseUnary();
    if (!Lhs)
      return nullptr;
    while (true) {
      int Precedence = precedenceOf(peek().Kind);
      if (Precedence < 0 || Precedence < MinPrecedence)
        return Lhs;
      Token OpTok = advance();
      ExprPtr Rhs = parseBinary(Precedence + 1);
      if (!Rhs)
        return nullptr;
      Lhs = std::make_unique<BinaryExpr>(binOpFor(OpTok.Kind), std::move(Lhs),
                                         std::move(Rhs), OpTok.Line);
    }
  }

  ExprPtr parseUnary() {
    unsigned Line = peek().Line;
    if (match(TokenKind::Minus)) {
      ExprPtr Operand = parseUnary();
      if (!Operand)
        return nullptr;
      return std::make_unique<UnaryExpr>(UnOpKind::Neg, std::move(Operand),
                                         Line);
    }
    if (match(TokenKind::Not)) {
      ExprPtr Operand = parseUnary();
      if (!Operand)
        return nullptr;
      return std::make_unique<UnaryExpr>(UnOpKind::Not, std::move(Operand),
                                         Line);
    }
    if (match(TokenKind::Plus))
      return parseUnary();
    if (peek().is(TokenKind::PlusPlus) || peek().is(TokenKind::MinusMinus)) {
      bool IsIncrement = advance().is(TokenKind::PlusPlus);
      ExprPtr Target = parseUnary();
      if (!Target)
        return nullptr;
      return std::make_unique<IncDecExpr>(IsIncrement, /*IsPrefix=*/true,
                                          std::move(Target), Line);
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    if (!E)
      return nullptr;
    while (peek().is(TokenKind::PlusPlus) ||
           peek().is(TokenKind::MinusMinus)) {
      Token OpTok = advance();
      E = std::make_unique<IncDecExpr>(OpTok.is(TokenKind::PlusPlus),
                                       /*IsPrefix=*/false, std::move(E),
                                       OpTok.Line);
    }
    return E;
  }

  ExprPtr parsePrimary() {
    unsigned Line = peek().Line;
    if (peek().is(TokenKind::IntLiteral)) {
      int64_t Value = advance().IntValue;
      return std::make_unique<IntLitExpr>(Value, Line);
    }
    if (match(TokenKind::LParen)) {
      ExprPtr E = parseExpr();
      if (!E || !expect(TokenKind::RParen, "to close the parenthesis"))
        return nullptr;
      return E;
    }
    if (peek().is(TokenKind::Identifier)) {
      std::string Name(advance().Text);
      if (match(TokenKind::LParen)) {
        std::vector<ExprPtr> Args;
        if (!peek().is(TokenKind::RParen)) {
          do {
            ExprPtr Arg = parseExpr();
            if (!Arg)
              return nullptr;
            Args.push_back(std::move(Arg));
          } while (match(TokenKind::Comma));
        }
        if (!expect(TokenKind::RParen, "to end the argument list"))
          return nullptr;
        return std::make_unique<CallExpr>(std::move(Name), std::move(Args),
                                          Line);
      }
      if (match(TokenKind::LBracket)) {
        ExprPtr Index = parseExpr();
        if (!Index || !expect(TokenKind::RBracket, "after the array index"))
          return nullptr;
        return std::make_unique<ArrayRefExpr>(std::move(Name),
                                              std::move(Index), Line);
      }
      return std::make_unique<VarRefExpr>(std::move(Name), Line);
    }
    error(Line, formatString("expected an expression, found %s",
                             tokenKindName(peek().Kind)));
    return nullptr;
  }

  std::vector<Token> Tokens;
  std::vector<Diagnostic> &Diags;
  size_t Pos = 0;
  bool HadError = false;
};

} // namespace

bool bropt::parseSource(std::string_view Source, TranslationUnit &Unit,
                        std::vector<Diagnostic> &Diags) {
  return ParserImpl(lexSource(Source), Diags).run(Unit);
}
