//===- lang/Sema.cpp - Mini-C semantic checks ------------------------------===//

#include "lang/Sema.h"

#include "support/Strings.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace bropt;

bool bropt::isBuiltinFunction(const std::string &Name) {
  return Name == "getchar" || Name == "putchar" || Name == "printint";
}

namespace {

/// What a name refers to at module scope.
enum class GlobalSymbolKind { Scalar, Array, Function };

class SemaImpl {
public:
  SemaImpl(const TranslationUnit &Unit, std::vector<Diagnostic> &Diags)
      : Unit(Unit), Diags(Diags) {}

  bool run() {
    collectModuleSymbols();
    for (const FunctionDecl &Func : Unit.Functions)
      checkFunction(Func);
    return !HadError;
  }

private:
  void error(unsigned Line, std::string Message) {
    HadError = true;
    Diags.push_back({Line, std::move(Message)});
  }

  void collectModuleSymbols() {
    for (const GlobalDecl &Global : Unit.Globals) {
      if (isBuiltinFunction(Global.Name)) {
        error(Global.Line, "'" + Global.Name + "' is a built-in name");
        continue;
      }
      auto Kind = Global.ArraySize ? GlobalSymbolKind::Array
                                   : GlobalSymbolKind::Scalar;
      if (!ModuleSymbols.emplace(Global.Name, Kind).second)
        error(Global.Line, "duplicate definition of '" + Global.Name + "'");
    }
    for (const FunctionDecl &Func : Unit.Functions) {
      if (isBuiltinFunction(Func.Name)) {
        error(Func.Line, "'" + Func.Name + "' is a built-in name");
        continue;
      }
      if (!ModuleSymbols.emplace(Func.Name, GlobalSymbolKind::Function)
               .second) {
        error(Func.Line, "duplicate definition of '" + Func.Name + "'");
        continue;
      }
      FunctionArity.emplace(Func.Name, Func.Params.size());
    }
  }

  //===------------------------------------------------------------------===//
  // Per-function state
  //===------------------------------------------------------------------===//

  bool isLocal(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It)
      if (It->count(Name))
        return true;
    return false;
  }

  void declareLocal(const std::string &Name, unsigned Line) {
    if (!Scopes.back().insert(Name).second)
      error(Line, "redeclaration of '" + Name + "' in the same scope");
  }

  void checkFunction(const FunctionDecl &Func) {
    Scopes.clear();
    Scopes.emplace_back();
    LoopDepth = 0;
    SwitchDepth = 0;
    std::unordered_set<std::string> Seen;
    for (const std::string &Param : Func.Params) {
      if (!Seen.insert(Param).second)
        error(Func.Line, "duplicate parameter '" + Param + "'");
      Scopes.back().insert(Param);
    }
    checkStmt(Func.Body.get());
    Scopes.pop_back();
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  void checkStmt(const Stmt *S) {
    switch (S->getKind()) {
    case StmtKind::Block: {
      Scopes.emplace_back();
      for (const StmtPtr &Child : cast<BlockStmt>(S)->getStmts())
        checkStmt(Child.get());
      Scopes.pop_back();
      return;
    }
    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      checkExpr(If->getCond());
      checkStmt(If->getThen());
      if (If->getElse())
        checkStmt(If->getElse());
      return;
    }
    case StmtKind::While: {
      const auto *While = cast<WhileStmt>(S);
      checkExpr(While->getCond());
      ++LoopDepth;
      checkStmt(While->getBody());
      --LoopDepth;
      return;
    }
    case StmtKind::DoWhile: {
      const auto *Do = cast<DoWhileStmt>(S);
      ++LoopDepth;
      checkStmt(Do->getBody());
      --LoopDepth;
      checkExpr(Do->getCond());
      return;
    }
    case StmtKind::For: {
      const auto *For = cast<ForStmt>(S);
      Scopes.emplace_back(); // the for header opens a scope
      if (For->getInit())
        checkStmt(For->getInit());
      if (For->getCond())
        checkExpr(For->getCond());
      if (For->getStep())
        checkExpr(For->getStep());
      ++LoopDepth;
      checkStmt(For->getBody());
      --LoopDepth;
      Scopes.pop_back();
      return;
    }
    case StmtKind::Switch: {
      const auto *Switch = cast<SwitchStmt>(S);
      checkExpr(Switch->getValue());
      std::set<int64_t> Labels;
      bool SawDefault = false;
      for (const SwitchSection &Section : Switch->getSections())
        for (const std::optional<int64_t> &Label : Section.Labels) {
          if (!Label) {
            if (SawDefault)
              error(S->getLine(), "multiple 'default' labels in one switch");
            SawDefault = true;
          } else if (!Labels.insert(*Label).second) {
            error(S->getLine(),
                  formatString("duplicate case label %lld",
                               static_cast<long long>(*Label)));
          }
        }
      ++SwitchDepth;
      Scopes.emplace_back();
      for (const SwitchSection &Section : Switch->getSections())
        for (const StmtPtr &Child : Section.Stmts)
          checkStmt(Child.get());
      Scopes.pop_back();
      --SwitchDepth;
      return;
    }
    case StmtKind::Break:
      if (LoopDepth == 0 && SwitchDepth == 0)
        error(S->getLine(), "'break' outside a loop or switch");
      return;
    case StmtKind::Continue:
      if (LoopDepth == 0)
        error(S->getLine(), "'continue' outside a loop");
      return;
    case StmtKind::Return: {
      const auto *Ret = cast<ReturnStmt>(S);
      if (Ret->getValue())
        checkExpr(Ret->getValue());
      return;
    }
    case StmtKind::ExprStmt:
      checkExpr(cast<ExprStmt>(S)->getExpr());
      return;
    case StmtKind::VarDecl: {
      const auto *Decl = cast<VarDeclStmt>(S);
      if (Decl->getInit())
        checkExpr(Decl->getInit());
      declareLocal(Decl->getName(), S->getLine());
      return;
    }
    case StmtKind::Empty:
      return;
    }
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  void checkExpr(const Expr *E) {
    switch (E->getKind()) {
    case ExprKind::IntLit:
      return;
    case ExprKind::VarRef: {
      const std::string &Name = cast<VarRefExpr>(E)->getName();
      if (isLocal(Name))
        return;
      auto It = ModuleSymbols.find(Name);
      if (It == ModuleSymbols.end()) {
        error(E->getLine(), "use of undeclared identifier '" + Name + "'");
        return;
      }
      if (It->second == GlobalSymbolKind::Array)
        error(E->getLine(),
              "array '" + Name + "' must be used with an index");
      else if (It->second == GlobalSymbolKind::Function)
        error(E->getLine(), "function '" + Name + "' used as a variable");
      return;
    }
    case ExprKind::ArrayRef: {
      const auto *Ref = cast<ArrayRefExpr>(E);
      checkExpr(Ref->getIndex());
      if (isLocal(Ref->getName())) {
        error(E->getLine(),
              "'" + Ref->getName() + "' is a scalar and cannot be indexed");
        return;
      }
      auto It = ModuleSymbols.find(Ref->getName());
      if (It == ModuleSymbols.end())
        error(E->getLine(),
              "use of undeclared identifier '" + Ref->getName() + "'");
      else if (It->second != GlobalSymbolKind::Array)
        error(E->getLine(), "'" + Ref->getName() + "' is not an array");
      return;
    }
    case ExprKind::Call: {
      const auto *Call = cast<CallExpr>(E);
      for (const ExprPtr &Arg : Call->getArgs())
        checkExpr(Arg.get());
      const std::string &Name = Call->getCallee();
      if (isBuiltinFunction(Name)) {
        size_t Expected = Name == "getchar" ? 0 : 1;
        if (Call->getArgs().size() != Expected)
          error(E->getLine(),
                formatString("'%s' takes %zu argument(s)", Name.c_str(),
                             Expected));
        return;
      }
      auto It = FunctionArity.find(Name);
      if (It == FunctionArity.end()) {
        error(E->getLine(), "call to undeclared function '" + Name + "'");
        return;
      }
      if (Call->getArgs().size() != It->second)
        error(E->getLine(),
              formatString("'%s' takes %zu argument(s), %zu given",
                           Name.c_str(), It->second, Call->getArgs().size()));
      return;
    }
    case ExprKind::Unary:
      checkExpr(cast<UnaryExpr>(E)->getOperand());
      return;
    case ExprKind::Binary: {
      const auto *Bin = cast<BinaryExpr>(E);
      checkExpr(Bin->getLhs());
      checkExpr(Bin->getRhs());
      return;
    }
    case ExprKind::Assign: {
      const auto *Assign = cast<AssignExpr>(E);
      checkLValue(Assign->getTarget());
      checkExpr(Assign->getTarget());
      checkExpr(Assign->getValue());
      return;
    }
    case ExprKind::IncDec: {
      const auto *IncDec = cast<IncDecExpr>(E);
      checkLValue(IncDec->getTarget());
      checkExpr(IncDec->getTarget());
      return;
    }
    case ExprKind::Ternary: {
      const auto *Ternary = cast<TernaryExpr>(E);
      checkExpr(Ternary->getCond());
      checkExpr(Ternary->getThen());
      checkExpr(Ternary->getElse());
      return;
    }
    }
  }

  void checkLValue(const Expr *E) {
    if (E->getKind() != ExprKind::VarRef && E->getKind() != ExprKind::ArrayRef)
      error(E->getLine(), "expression is not assignable");
  }

  const TranslationUnit &Unit;
  std::vector<Diagnostic> &Diags;
  bool HadError = false;

  std::unordered_map<std::string, GlobalSymbolKind> ModuleSymbols;
  std::unordered_map<std::string, size_t> FunctionArity;
  std::vector<std::unordered_set<std::string>> Scopes;
  unsigned LoopDepth = 0;
  unsigned SwitchDepth = 0;
};

} // namespace

bool bropt::analyzeUnit(const TranslationUnit &Unit,
                        std::vector<Diagnostic> &Diags) {
  return SemaImpl(Unit, Diags).run();
}
