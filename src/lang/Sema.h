//===- lang/Sema.h - Mini-C semantic checks ---------------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and well-formedness checks over the Mini-C AST:
/// duplicate definitions, unknown identifiers, call arity, lvalue rules,
/// break/continue placement, and switch label uniqueness.  Lowering assumes
/// a unit that passed these checks.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_LANG_SEMA_H
#define BROPT_LANG_SEMA_H

#include "lang/AST.h"
#include "lang/Parser.h"

namespace bropt {

/// Checks \p Unit.  \returns true if it is well-formed; diagnostics are
/// appended to \p Diags either way.
bool analyzeUnit(const TranslationUnit &Unit, std::vector<Diagnostic> &Diags);

/// Built-in function names with special lowering.
bool isBuiltinFunction(const std::string &Name);

} // namespace bropt

#endif // BROPT_LANG_SEMA_H
