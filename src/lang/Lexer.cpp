//===- lang/Lexer.cpp - Mini-C lexer ---------------------------------------===//

#include "lang/Lexer.h"

#include "support/Debug.h"

#include <cctype>
#include <unordered_map>

using namespace bropt;

const char *bropt::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwSwitch:
    return "'switch'";
  case TokenKind::KwCase:
    return "'case'";
  case TokenKind::KwDefault:
    return "'default'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::PlusAssign:
    return "'+='";
  case TokenKind::MinusAssign:
    return "'-='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Not:
    return "'!'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Shl:
    return "'<<'";
  case TokenKind::Shr:
    return "'>>'";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  }
  BROPT_UNREACHABLE("unknown token kind");
}

namespace {

class LexerImpl {
public:
  explicit LexerImpl(std::string_view Source) : Source(Source) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    while (true) {
      Token Tok = next();
      Tokens.push_back(Tok);
      if (Tok.is(TokenKind::EndOfFile))
        return Tokens;
    }
  }

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }

  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }

  bool atEnd() const { return Pos >= Source.size(); }

  void skipWhitespaceAndComments() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (!atEnd()) {
          advance();
          advance();
        }
        continue;
      }
      return;
    }
  }

  Token make(TokenKind Kind, size_t Start, unsigned TokLine,
             unsigned TokColumn) {
    Token Tok;
    Tok.Kind = Kind;
    Tok.Text = Source.substr(Start, Pos - Start);
    Tok.Line = TokLine;
    Tok.Column = TokColumn;
    return Tok;
  }

  Token error(const char *Message, size_t Start, unsigned TokLine,
              unsigned TokColumn) {
    Token Tok = make(TokenKind::Error, Start, TokLine, TokColumn);
    Tok.Text = Message;
    return Tok;
  }

  Token next() {
    skipWhitespaceAndComments();
    size_t Start = Pos;
    unsigned TokLine = Line, TokColumn = Column;
    if (atEnd())
      return make(TokenKind::EndOfFile, Start, TokLine, TokColumn);

    char C = advance();

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_')
        advance();
      Token Tok = make(TokenKind::Identifier, Start, TokLine, TokColumn);
      static const std::unordered_map<std::string_view, TokenKind> Keywords = {
          {"int", TokenKind::KwInt},         {"void", TokenKind::KwVoid},
          {"if", TokenKind::KwIf},           {"else", TokenKind::KwElse},
          {"while", TokenKind::KwWhile},     {"do", TokenKind::KwDo},
          {"for", TokenKind::KwFor},         {"switch", TokenKind::KwSwitch},
          {"case", TokenKind::KwCase},       {"default", TokenKind::KwDefault},
          {"break", TokenKind::KwBreak},
          {"continue", TokenKind::KwContinue},
          {"return", TokenKind::KwReturn},
      };
      auto It = Keywords.find(Tok.Text);
      if (It != Keywords.end())
        Tok.Kind = It->second;
      return Tok;
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t Value = C - '0';
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Value = Value * 10 + (advance() - '0');
      Token Tok = make(TokenKind::IntLiteral, Start, TokLine, TokColumn);
      Tok.IntValue = Value;
      return Tok;
    }

    if (C == '\'') {
      if (atEnd())
        return error("unterminated character literal", Start, TokLine,
                     TokColumn);
      int64_t Value;
      char Ch = advance();
      if (Ch == '\\') {
        if (atEnd())
          return error("unterminated character literal", Start, TokLine,
                       TokColumn);
        char Esc = advance();
        switch (Esc) {
        case 'n':
          Value = '\n';
          break;
        case 't':
          Value = '\t';
          break;
        case 'r':
          Value = '\r';
          break;
        case '0':
          Value = '\0';
          break;
        case '\\':
          Value = '\\';
          break;
        case '\'':
          Value = '\'';
          break;
        default:
          return error("unknown escape in character literal", Start, TokLine,
                       TokColumn);
        }
      } else {
        Value = static_cast<unsigned char>(Ch);
      }
      if (atEnd() || advance() != '\'')
        return error("unterminated character literal", Start, TokLine,
                     TokColumn);
      Token Tok = make(TokenKind::IntLiteral, Start, TokLine, TokColumn);
      Tok.IntValue = Value;
      return Tok;
    }

    auto twoChar = [&](char Next, TokenKind Two, TokenKind One) {
      if (peek() == Next) {
        advance();
        return make(Two, Start, TokLine, TokColumn);
      }
      return make(One, Start, TokLine, TokColumn);
    };

    switch (C) {
    case '(':
      return make(TokenKind::LParen, Start, TokLine, TokColumn);
    case ')':
      return make(TokenKind::RParen, Start, TokLine, TokColumn);
    case '{':
      return make(TokenKind::LBrace, Start, TokLine, TokColumn);
    case '}':
      return make(TokenKind::RBrace, Start, TokLine, TokColumn);
    case '[':
      return make(TokenKind::LBracket, Start, TokLine, TokColumn);
    case ']':
      return make(TokenKind::RBracket, Start, TokLine, TokColumn);
    case ';':
      return make(TokenKind::Semicolon, Start, TokLine, TokColumn);
    case ',':
      return make(TokenKind::Comma, Start, TokLine, TokColumn);
    case ':':
      return make(TokenKind::Colon, Start, TokLine, TokColumn);
    case '?':
      return make(TokenKind::Question, Start, TokLine, TokColumn);
    case '=':
      return twoChar('=', TokenKind::EqEq, TokenKind::Assign);
    case '!':
      return twoChar('=', TokenKind::NotEq, TokenKind::Not);
    case '<':
      if (peek() == '<') {
        advance();
        return make(TokenKind::Shl, Start, TokLine, TokColumn);
      }
      return twoChar('=', TokenKind::LessEq, TokenKind::Less);
    case '>':
      if (peek() == '>') {
        advance();
        return make(TokenKind::Shr, Start, TokLine, TokColumn);
      }
      return twoChar('=', TokenKind::GreaterEq, TokenKind::Greater);
    case '+':
      if (peek() == '+') {
        advance();
        return make(TokenKind::PlusPlus, Start, TokLine, TokColumn);
      }
      return twoChar('=', TokenKind::PlusAssign, TokenKind::Plus);
    case '-':
      if (peek() == '-') {
        advance();
        return make(TokenKind::MinusMinus, Start, TokLine, TokColumn);
      }
      return twoChar('=', TokenKind::MinusAssign, TokenKind::Minus);
    case '*':
      return make(TokenKind::Star, Start, TokLine, TokColumn);
    case '/':
      return make(TokenKind::Slash, Start, TokLine, TokColumn);
    case '%':
      return make(TokenKind::Percent, Start, TokLine, TokColumn);
    case '&':
      return twoChar('&', TokenKind::AmpAmp, TokenKind::Amp);
    case '|':
      return twoChar('|', TokenKind::PipePipe, TokenKind::Pipe);
    case '^':
      return make(TokenKind::Caret, Start, TokLine, TokColumn);
    default:
      return error("unexpected character", Start, TokLine, TokColumn);
    }
  }

  std::string_view Source;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace

std::vector<Token> bropt::lexSource(std::string_view Source) {
  return LexerImpl(Source).run();
}
