//===- ir/Instruction.h - Instruction class hierarchy -----------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR instruction hierarchy.  Instructions are owned by basic blocks.
/// The hierarchy uses LLVM-style opt-in RTTI: every concrete class provides
/// classof, and isa<>/cast<>/dyn_cast<> dispatch on InstKind.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_IR_INSTRUCTION_H
#define BROPT_IR_INSTRUCTION_H

#include "ir/Opcodes.h"
#include "ir/Operand.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace bropt {

class BasicBlock;
class Function;

/// Base class of all IR instructions.
///
/// An instruction knows its kind, its parent block, which register it
/// defines (if any), which registers it reads, and — for terminators — its
/// successor blocks.  Instructions are cloneable so that the reordering
/// transformation can replicate range conditions, side effects, and default
/// target code (paper Figure 10).
class Instruction {
public:
  Instruction(const Instruction &) = delete;
  Instruction &operator=(const Instruction &) = delete;
  virtual ~Instruction();

  InstKind getKind() const { return Kind; }
  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *B) { Parent = B; }

  bool isTerminator() const { return isTerminatorKind(Kind); }

  /// \returns the virtual register this instruction defines, if any.
  virtual std::optional<unsigned> getDef() const { return std::nullopt; }

  /// Appends the registers this instruction reads to \p Uses.
  virtual void getUses(std::vector<unsigned> &Uses) const {}

  /// Rewrites every register the instruction reads or writes through \p F.
  /// Used when cloning code into a context with renamed registers.
  virtual void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) {}

  /// True if the instruction has effects beyond defining its register:
  /// memory writes, I/O, calls, possible traps, or control transfer.
  /// Such instructions must never be deleted by dead-code elimination.
  bool hasSideEffects() const;

  /// True if this instruction writes the condition-code register.
  bool writesCC() const { return Kind == InstKind::Cmp; }

  /// True if this instruction reads the condition-code register.
  bool readsCC() const { return Kind == InstKind::CondBr; }

  /// Deep-copies the instruction.  Successor pointers are copied verbatim;
  /// callers that clone whole subgraphs remap them afterwards.
  virtual std::unique_ptr<Instruction> clone() const = 0;

  /// Successor access; non-terminators have none.
  virtual unsigned getNumSuccessors() const { return 0; }
  virtual BasicBlock *getSuccessor(unsigned Index) const;
  virtual void setSuccessor(unsigned Index, BasicBlock *B);

  /// Replaces every successor edge pointing at \p From with \p To.
  void replaceSuccessor(BasicBlock *From, BasicBlock *To);

  /// Renders the instruction as assembly-like text (see Printer.cpp).
  std::string toString() const;

protected:
  explicit Instruction(InstKind Kind) : Kind(Kind) {}

private:
  InstKind Kind;
  BasicBlock *Parent = nullptr;
};

/// LLVM-style RTTI helpers.
template <typename To> bool isa(const Instruction *I) {
  assert(I && "isa<> on a null instruction");
  return To::classof(I);
}

template <typename To> To *cast(Instruction *I) {
  assert(isa<To>(I) && "cast<> to an incompatible instruction kind");
  return static_cast<To *>(I);
}

template <typename To> const To *cast(const Instruction *I) {
  assert(isa<To>(I) && "cast<> to an incompatible instruction kind");
  return static_cast<const To *>(I);
}

template <typename To> To *dyn_cast(Instruction *I) {
  return isa<To>(I) ? static_cast<To *>(I) : nullptr;
}

template <typename To> const To *dyn_cast(const Instruction *I) {
  return isa<To>(I) ? static_cast<const To *>(I) : nullptr;
}

template <typename To> To *dyn_cast_or_null(Instruction *I) {
  return I ? dyn_cast<To>(I) : nullptr;
}

template <typename To> const To *dyn_cast_or_null(const Instruction *I) {
  return I ? dyn_cast<To>(I) : nullptr;
}

//===----------------------------------------------------------------------===//
// Ordinary instructions
//===----------------------------------------------------------------------===//

/// rd = src
class MoveInst final : public Instruction {
public:
  MoveInst(unsigned Dest, Operand Src)
      : Instruction(InstKind::Move), Dest(Dest), Src(Src) {}

  unsigned getDest() const { return Dest; }
  Operand getSrc() const { return Src; }
  void setSrc(Operand Op) { Src = Op; }

  std::optional<unsigned> getDef() const override { return Dest; }
  void getUses(std::vector<unsigned> &Uses) const override;
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::Move;
  }

private:
  unsigned Dest;
  Operand Src;
};

/// rd = lhs op rhs
class BinaryInst final : public Instruction {
public:
  BinaryInst(BinaryOp Op, unsigned Dest, Operand Lhs, Operand Rhs)
      : Instruction(InstKind::Binary), Op(Op), Dest(Dest), Lhs(Lhs), Rhs(Rhs) {
  }

  BinaryOp getOp() const { return Op; }
  unsigned getDest() const { return Dest; }
  Operand getLhs() const { return Lhs; }
  Operand getRhs() const { return Rhs; }
  void setLhs(Operand Op) { Lhs = Op; }
  void setRhs(Operand Op) { Rhs = Op; }

  /// True for operators that trap on a zero right operand.
  bool canTrap() const { return Op == BinaryOp::Div || Op == BinaryOp::Rem; }

  std::optional<unsigned> getDef() const override { return Dest; }
  void getUses(std::vector<unsigned> &Uses) const override;
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::Binary;
  }

private:
  BinaryOp Op;
  unsigned Dest;
  Operand Lhs, Rhs;
};

/// rd = op src
class UnaryInst final : public Instruction {
public:
  UnaryInst(UnaryOp Op, unsigned Dest, Operand Src)
      : Instruction(InstKind::Unary), Op(Op), Dest(Dest), Src(Src) {}

  UnaryOp getOp() const { return Op; }
  unsigned getDest() const { return Dest; }
  Operand getSrc() const { return Src; }
  void setSrc(Operand Op) { Src = Op; }

  std::optional<unsigned> getDef() const override { return Dest; }
  void getUses(std::vector<unsigned> &Uses) const override;
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::Unary;
  }

private:
  UnaryOp Op;
  unsigned Dest;
  Operand Src;
};

/// rd = memory[base + offset]
class LoadInst final : public Instruction {
public:
  LoadInst(unsigned Dest, Operand Base, int64_t Offset)
      : Instruction(InstKind::Load), Dest(Dest), Base(Base), Offset(Offset) {}

  unsigned getDest() const { return Dest; }
  Operand getBase() const { return Base; }
  int64_t getOffset() const { return Offset; }

  std::optional<unsigned> getDef() const override { return Dest; }
  void getUses(std::vector<unsigned> &Uses) const override;
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::Load;
  }

private:
  unsigned Dest;
  Operand Base;
  int64_t Offset;
};

/// memory[base + offset] = value
class StoreInst final : public Instruction {
public:
  StoreInst(Operand Value, Operand Base, int64_t Offset)
      : Instruction(InstKind::Store), Value(Value), Base(Base),
        Offset(Offset) {}

  Operand getValue() const { return Value; }
  Operand getBase() const { return Base; }
  int64_t getOffset() const { return Offset; }

  void getUses(std::vector<unsigned> &Uses) const override;
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::Store;
  }

private:
  Operand Value;
  Operand Base;
  int64_t Offset;
};

/// condition codes = compare(lhs, rhs)
class CmpInst final : public Instruction {
public:
  CmpInst(Operand Lhs, Operand Rhs)
      : Instruction(InstKind::Cmp), Lhs(Lhs), Rhs(Rhs) {}

  Operand getLhs() const { return Lhs; }
  Operand getRhs() const { return Rhs; }
  void setLhs(Operand Op) { Lhs = Op; }
  void setRhs(Operand Op) { Rhs = Op; }

  /// True if \p Other compares exactly the same operands.
  bool isIdenticalTo(const CmpInst &Other) const {
    return Lhs == Other.Lhs && Rhs == Other.Rhs;
  }

  void getUses(std::vector<unsigned> &Uses) const override;
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::Cmp;
  }

private:
  Operand Lhs, Rhs;
};

/// rd = callee(args...)
class CallInst final : public Instruction {
public:
  CallInst(std::optional<unsigned> Dest, Function *Callee,
           std::vector<Operand> Args)
      : Instruction(InstKind::Call), Dest(Dest), Callee(Callee),
        Args(std::move(Args)) {}

  Function *getCallee() const { return Callee; }
  const std::vector<Operand> &getArgs() const { return Args; }

  std::optional<unsigned> getDef() const override { return Dest; }
  void getUses(std::vector<unsigned> &Uses) const override;
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::Call;
  }

private:
  std::optional<unsigned> Dest;
  Function *Callee;
  std::vector<Operand> Args;
};

/// rd = next input byte, or -1 at end of input
class ReadCharInst final : public Instruction {
public:
  explicit ReadCharInst(unsigned Dest)
      : Instruction(InstKind::ReadChar), Dest(Dest) {}

  unsigned getDest() const { return Dest; }

  std::optional<unsigned> getDef() const override { return Dest; }
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::ReadChar;
  }

private:
  unsigned Dest;
};

/// Appends a byte to the output stream.
class PutCharInst final : public Instruction {
public:
  explicit PutCharInst(Operand Src)
      : Instruction(InstKind::PutChar), Src(Src) {}

  Operand getSrc() const { return Src; }

  void getUses(std::vector<unsigned> &Uses) const override;
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::PutChar;
  }

private:
  Operand Src;
};

/// Appends a decimal rendering followed by a newline to the output stream.
class PrintIntInst final : public Instruction {
public:
  explicit PrintIntInst(Operand Src)
      : Instruction(InstKind::PrintInt), Src(Src) {}

  Operand getSrc() const { return Src; }

  void getUses(std::vector<unsigned> &Uses) const override;
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::PrintInt;
  }

private:
  Operand Src;
};

/// Profiling hook inserted at the head of a detected sequence (paper §5).
/// Reports the current value of the sequence's branch variable so the
/// profile runtime can attribute the execution to one of the sequence's
/// explicit or default ranges.  Never present in final (pass-2) code.
class ProfileInst final : public Instruction {
public:
  ProfileInst(unsigned SequenceId, unsigned ValueReg)
      : Instruction(InstKind::Profile), SequenceId(SequenceId),
        ValueReg(ValueReg) {}

  unsigned getSequenceId() const { return SequenceId; }
  unsigned getValueReg() const { return ValueReg; }

  void getUses(std::vector<unsigned> &Uses) const override;
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::Profile;
  }

private:
  unsigned SequenceId;
  unsigned ValueReg;
};

/// Profiling hook for a common-successor branch sequence (paper §10).
/// Evaluates every recorded condition against the current register state
/// and reports the outcome combination as a bitmask (bit i set = condition
/// i would exit to the common successor).  The paper uses an array of 2^n
/// counters for exactly this purpose, for n <= 7.
class ComboProfileInst final : public Instruction {
public:
  struct Condition {
    Operand Lhs;
    Operand Rhs;
    CondCode Pred; ///< true means "exits to the common successor"
  };

  ComboProfileInst(unsigned SequenceId, std::vector<Condition> Conditions)
      : Instruction(InstKind::ComboProfile), SequenceId(SequenceId),
        Conditions(std::move(Conditions)) {
    assert(this->Conditions.size() <= 7 &&
           "combination profiling is bounded to 2^7 counters");
  }

  unsigned getSequenceId() const { return SequenceId; }
  const std::vector<Condition> &getConditions() const { return Conditions; }

  void getUses(std::vector<unsigned> &Uses) const override;
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::ComboProfile;
  }

private:
  unsigned SequenceId;
  std::vector<Condition> Conditions;
};

//===----------------------------------------------------------------------===//
// Terminators
//===----------------------------------------------------------------------===//

/// Conditional branch: if the condition codes satisfy the predicate,
/// control transfers to the taken successor; otherwise to the fall-through
/// successor.  Both successors are explicit; the repositioning pass lays
/// blocks out so that the fall-through successor follows in memory.
class CondBrInst final : public Instruction {
public:
  CondBrInst(CondCode Pred, BasicBlock *Taken, BasicBlock *FallThrough)
      : Instruction(InstKind::CondBr), Pred(Pred), Succs{Taken, FallThrough} {}

  CondCode getPred() const { return Pred; }
  void setPred(CondCode CC) { Pred = CC; }
  BasicBlock *getTaken() const { return Succs[0]; }
  BasicBlock *getFallThrough() const { return Succs[1]; }
  void setTaken(BasicBlock *B) { Succs[0] = B; }
  void setFallThrough(BasicBlock *B) { Succs[1] = B; }

  /// Inverts the predicate and swaps the successors, preserving semantics.
  void invert();

  unsigned getNumSuccessors() const override { return 2; }
  BasicBlock *getSuccessor(unsigned Index) const override;
  void setSuccessor(unsigned Index, BasicBlock *B) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::CondBr;
  }

private:
  CondCode Pred;
  BasicBlock *Succs[2];
};

/// Unconditional branch.
///
/// After the repositioning pass lays blocks out, a jump whose target is the
/// next block in layout is flagged as a pure fall-through: it occupies no
/// code space and executes for free, exactly like block adjacency in real
/// machine code.  Any CFG mutation clears the flag (conservatively) by
/// rerunning repositioning.
class JumpInst final : public Instruction {
public:
  explicit JumpInst(BasicBlock *Target)
      : Instruction(InstKind::Jump), Target(Target) {}

  BasicBlock *getTarget() const { return Target; }
  void setTarget(BasicBlock *B) {
    Target = B;
    FallThrough = false;
  }

  /// True if layout made this jump a free fall-through.
  bool isFallThrough() const { return FallThrough; }
  void setIsFallThrough(bool Value) { FallThrough = Value; }

  unsigned getNumSuccessors() const override { return 1; }
  BasicBlock *getSuccessor(unsigned Index) const override;
  void setSuccessor(unsigned Index, BasicBlock *B) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::Jump;
  }

private:
  BasicBlock *Target;
  bool FallThrough = false;
};

/// High-level multiway branch produced by the front end for a C switch.
/// SwitchLowering rewrites it into an indirect jump, a binary search, or a
/// linear search according to the selected heuristic set (paper Table 2).
class SwitchInst final : public Instruction {
public:
  struct Case {
    int64_t Value;
    BasicBlock *Target;
  };

  SwitchInst(Operand Value, std::vector<Case> Cases, BasicBlock *Default)
      : Instruction(InstKind::Switch), Value(Value), Cases(std::move(Cases)),
        Default(Default) {}

  Operand getValue() const { return Value; }
  const std::vector<Case> &getCases() const { return Cases; }
  BasicBlock *getDefault() const { return Default; }

  void getUses(std::vector<unsigned> &Uses) const override;
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  unsigned getNumSuccessors() const override {
    return static_cast<unsigned>(Cases.size()) + 1;
  }
  BasicBlock *getSuccessor(unsigned Index) const override;
  void setSuccessor(unsigned Index, BasicBlock *B) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::Switch;
  }

private:
  Operand Value;
  std::vector<Case> Cases;
  BasicBlock *Default;
};

/// Indirect jump through a table of blocks: goto table[index].
/// The index must already be range-checked; the interpreter traps on an
/// out-of-bounds index.
class IndirectJumpInst final : public Instruction {
public:
  IndirectJumpInst(Operand Index, std::vector<BasicBlock *> Table)
      : Instruction(InstKind::IndirectJump), Index(Index),
        Table(std::move(Table)) {}

  Operand getIndex() const { return Index; }
  const std::vector<BasicBlock *> &getTable() const { return Table; }

  void getUses(std::vector<unsigned> &Uses) const override;
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  unsigned getNumSuccessors() const override {
    return static_cast<unsigned>(Table.size());
  }
  BasicBlock *getSuccessor(unsigned Index) const override;
  void setSuccessor(unsigned Index, BasicBlock *B) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::IndirectJump;
  }

private:
  Operand Index;
  std::vector<BasicBlock *> Table;
};

/// Function return with an optional value.
class RetInst final : public Instruction {
public:
  explicit RetInst(Operand Value = Operand())
      : Instruction(InstKind::Ret), Value(Value) {}

  Operand getValue() const { return Value; }
  bool hasValue() const { return !Value.isNone(); }

  void getUses(std::vector<unsigned> &Uses) const override;
  void remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) override;
  std::unique_ptr<Instruction> clone() const override;

  static bool classof(const Instruction *I) {
    return I->getKind() == InstKind::Ret;
  }

private:
  Operand Value;
};

} // namespace bropt

#endif // BROPT_IR_INSTRUCTION_H
