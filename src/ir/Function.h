//===- ir/Function.h - Functions --------------------------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function owns its basic blocks in layout order.  Layout order matters:
/// a CondBr whose fall-through successor is the next block in layout costs
/// nothing extra, while any other placement requires the repositioning pass
/// to insert an unconditional jump.  The paper's transformation explicitly
/// duplicates code to avoid introducing such jumps (Figure 10).
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_IR_FUNCTION_H
#define BROPT_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <memory>
#include <string>
#include <vector>

namespace bropt {

class Module;

/// A function: parameters arrive in registers 0..NumParams-1.
class Function {
public:
  Function(Module *Parent, std::string Name, unsigned NumParams)
      : Parent(Parent), Name(std::move(Name)), NumParams(NumParams),
        NumRegs(NumParams) {}

  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  Module *getParent() const { return Parent; }
  const std::string &getName() const { return Name; }
  unsigned getNumParams() const { return NumParams; }
  unsigned getNumRegs() const { return NumRegs; }

  /// Allocates a fresh virtual register.
  unsigned newReg() { return NumRegs++; }

  /// Ensures the register space covers register \p Reg (used when splicing
  /// cloned code between functions in tests).
  void growRegsTo(unsigned Reg) {
    if (Reg >= NumRegs)
      NumRegs = Reg + 1;
  }

  //===--------------------------------------------------------------------===//
  // Block list (layout order)
  //===--------------------------------------------------------------------===//

  bool empty() const { return Blocks.empty(); }
  size_t size() const { return Blocks.size(); }

  BasicBlock &getEntryBlock() {
    assert(!Blocks.empty() && "function has no blocks");
    return *Blocks.front();
  }
  const BasicBlock &getEntryBlock() const {
    assert(!Blocks.empty() && "function has no blocks");
    return *Blocks.front();
  }

  auto begin() { return Blocks.begin(); }
  auto end() { return Blocks.end(); }
  auto begin() const { return Blocks.begin(); }
  auto end() const { return Blocks.end(); }

  BasicBlock *getBlock(size_t Index) {
    assert(Index < Blocks.size() && "block index out of range");
    return Blocks[Index].get();
  }

  /// Appends a new block at the end of the layout.
  BasicBlock *createBlock(std::string BlockName = "");

  /// Appends a block with an explicit id, for tools that must reproduce an
  /// existing function exactly (the IR text parser).  The id must not be in
  /// use; future automatic ids continue past it.
  BasicBlock *createBlockWithId(unsigned Id, std::string BlockName = "");

  /// Creates a new block placed immediately after \p After in the layout.
  BasicBlock *createBlockAfter(BasicBlock *After, std::string BlockName = "");

  /// \returns the layout position of \p B.
  size_t blockIndex(const BasicBlock *B) const;

  /// \returns the block following \p B in layout, or null for the last one.
  BasicBlock *getNextBlock(const BasicBlock *B);

  /// Moves \p B so it immediately follows \p After in the layout.
  void moveBlockAfter(BasicBlock *B, BasicBlock *After);

  /// Reorders the block list to \p Order, which must be a permutation of
  /// the current blocks with the entry block first.
  void setLayout(const std::vector<BasicBlock *> &Order);

  /// Removes \p B from the function.  The caller guarantees no other block
  /// branches to \p B.
  void eraseBlock(BasicBlock *B);

  /// Recomputes every block's predecessor list from the terminators.
  /// Passes call this after mutating the CFG.
  void recomputePredecessors();

  /// \returns the number of instructions across all blocks.
  size_t instructionCount() const;

  /// Static code size: instructions that would occupy space in machine
  /// code.  Excludes layout fall-through jumps and profiling hooks.
  size_t codeSize() const;

  /// Renders the function as text.
  std::string toString() const;

private:
  Module *Parent;
  std::string Name;
  unsigned NumParams;
  unsigned NumRegs;
  unsigned NextBlockId = 0;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace bropt

#endif // BROPT_IR_FUNCTION_H
