//===- ir/Module.cpp - Modules and global variables ----------------------===//

#include "ir/Module.h"

#include "support/Debug.h"

using namespace bropt;

Function *Module::createFunction(std::string Name, unsigned NumParams) {
  assert(!getFunction(Name) && "duplicate function name");
  Functions.push_back(
      std::make_unique<Function>(this, std::move(Name), NumParams));
  return Functions.back().get();
}

Function *Module::getFunction(const std::string &Name) {
  for (auto &F : Functions)
    if (F->getName() == Name)
      return F.get();
  return nullptr;
}

const Function *Module::getFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->getName() == Name)
      return F.get();
  return nullptr;
}

GlobalVariable *Module::createGlobal(std::string Name, uint32_t NumWords,
                                     std::vector<int64_t> Init) {
  assert(!getGlobal(Name) && "duplicate global name");
  assert(Init.size() <= NumWords && "initializer larger than the global");
  auto Global = std::make_unique<GlobalVariable>();
  Global->Name = std::move(Name);
  Global->NumWords = NumWords;
  Global->BaseAddress = NextAddress;
  Global->Init = std::move(Init);
  NextAddress += NumWords;
  Globals.push_back(std::move(Global));
  return Globals.back().get();
}

const GlobalVariable *Module::getGlobal(const std::string &Name) const {
  for (const auto &Global : Globals)
    if (Global->Name == Name)
      return Global.get();
  return nullptr;
}

size_t Module::instructionCount() const {
  size_t Count = 0;
  for (const auto &F : Functions)
    Count += F->instructionCount();
  return Count;
}

size_t Module::codeSize() const {
  size_t Count = 0;
  for (const auto &F : Functions)
    Count += F->codeSize();
  return Count;
}
