//===- ir/Instruction.cpp - Instruction class hierarchy ------------------===//

#include "ir/Instruction.h"

#include "support/Debug.h"

using namespace bropt;

//===----------------------------------------------------------------------===//
// Opcode helpers
//===----------------------------------------------------------------------===//

CondCode bropt::invertCondCode(CondCode CC) {
  switch (CC) {
  case CondCode::EQ:
    return CondCode::NE;
  case CondCode::NE:
    return CondCode::EQ;
  case CondCode::LT:
    return CondCode::GE;
  case CondCode::LE:
    return CondCode::GT;
  case CondCode::GT:
    return CondCode::LE;
  case CondCode::GE:
    return CondCode::LT;
  }
  BROPT_UNREACHABLE("unknown condition code");
}

CondCode bropt::swapCondCode(CondCode CC) {
  switch (CC) {
  case CondCode::EQ:
    return CondCode::EQ;
  case CondCode::NE:
    return CondCode::NE;
  case CondCode::LT:
    return CondCode::GT;
  case CondCode::LE:
    return CondCode::GE;
  case CondCode::GT:
    return CondCode::LT;
  case CondCode::GE:
    return CondCode::LE;
  }
  BROPT_UNREACHABLE("unknown condition code");
}

bool bropt::evalCondCode(CondCode CC, int64_t Lhs, int64_t Rhs) {
  switch (CC) {
  case CondCode::EQ:
    return Lhs == Rhs;
  case CondCode::NE:
    return Lhs != Rhs;
  case CondCode::LT:
    return Lhs < Rhs;
  case CondCode::LE:
    return Lhs <= Rhs;
  case CondCode::GT:
    return Lhs > Rhs;
  case CondCode::GE:
    return Lhs >= Rhs;
  }
  BROPT_UNREACHABLE("unknown condition code");
}

const char *bropt::condCodeName(CondCode CC) {
  switch (CC) {
  case CondCode::EQ:
    return "eq";
  case CondCode::NE:
    return "ne";
  case CondCode::LT:
    return "lt";
  case CondCode::LE:
    return "le";
  case CondCode::GT:
    return "gt";
  case CondCode::GE:
    return "ge";
  }
  BROPT_UNREACHABLE("unknown condition code");
}

const char *bropt::binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "add";
  case BinaryOp::Sub:
    return "sub";
  case BinaryOp::Mul:
    return "mul";
  case BinaryOp::Div:
    return "div";
  case BinaryOp::Rem:
    return "rem";
  case BinaryOp::And:
    return "and";
  case BinaryOp::Or:
    return "or";
  case BinaryOp::Xor:
    return "xor";
  case BinaryOp::Shl:
    return "shl";
  case BinaryOp::Shr:
    return "shr";
  }
  BROPT_UNREACHABLE("unknown binary operator");
}

const char *bropt::unaryOpName(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return "neg";
  case UnaryOp::Not:
    return "not";
  }
  BROPT_UNREACHABLE("unknown unary operator");
}

//===----------------------------------------------------------------------===//
// Instruction base
//===----------------------------------------------------------------------===//

Instruction::~Instruction() = default;

bool Instruction::hasSideEffects() const {
  switch (getKind()) {
  case InstKind::Store:
  case InstKind::Call:
  case InstKind::ReadChar:
  case InstKind::PutChar:
  case InstKind::PrintInt:
  case InstKind::Profile:
  case InstKind::ComboProfile:
    return true;
  case InstKind::Binary:
    return cast<BinaryInst>(this)->canTrap();
  case InstKind::Move:
  case InstKind::Unary:
  case InstKind::Load:
  case InstKind::Cmp:
    return false;
  case InstKind::CondBr:
  case InstKind::Jump:
  case InstKind::Switch:
  case InstKind::IndirectJump:
  case InstKind::Ret:
    return true;
  }
  BROPT_UNREACHABLE("unknown instruction kind");
}

BasicBlock *Instruction::getSuccessor(unsigned Index) const {
  BROPT_UNREACHABLE("instruction has no successors");
}

void Instruction::setSuccessor(unsigned Index, BasicBlock *B) {
  BROPT_UNREACHABLE("instruction has no successors");
}

void Instruction::replaceSuccessor(BasicBlock *From, BasicBlock *To) {
  for (unsigned I = 0, E = getNumSuccessors(); I != E; ++I)
    if (getSuccessor(I) == From)
      setSuccessor(I, To);
}

namespace {

/// Applies a register map to an operand in place.
void remapOperand(Operand &Op, unsigned (*Map)(unsigned, void *), void *Ctx) {
  if (Op.isReg())
    Op = Operand::reg(Map(Op.getReg(), Ctx));
}

void addUse(std::vector<unsigned> &Uses, Operand Op) {
  if (Op.isReg())
    Uses.push_back(Op.getReg());
}

} // namespace

//===----------------------------------------------------------------------===//
// MoveInst
//===----------------------------------------------------------------------===//

void MoveInst::getUses(std::vector<unsigned> &Uses) const {
  addUse(Uses, Src);
}

void MoveInst::remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) {
  Dest = Map(Dest, Ctx);
  remapOperand(Src, Map, Ctx);
}

std::unique_ptr<Instruction> MoveInst::clone() const {
  return std::make_unique<MoveInst>(Dest, Src);
}

//===----------------------------------------------------------------------===//
// BinaryInst
//===----------------------------------------------------------------------===//

void BinaryInst::getUses(std::vector<unsigned> &Uses) const {
  addUse(Uses, Lhs);
  addUse(Uses, Rhs);
}

void BinaryInst::remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) {
  Dest = Map(Dest, Ctx);
  remapOperand(Lhs, Map, Ctx);
  remapOperand(Rhs, Map, Ctx);
}

std::unique_ptr<Instruction> BinaryInst::clone() const {
  return std::make_unique<BinaryInst>(Op, Dest, Lhs, Rhs);
}

//===----------------------------------------------------------------------===//
// UnaryInst
//===----------------------------------------------------------------------===//

void UnaryInst::getUses(std::vector<unsigned> &Uses) const {
  addUse(Uses, Src);
}

void UnaryInst::remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) {
  Dest = Map(Dest, Ctx);
  remapOperand(Src, Map, Ctx);
}

std::unique_ptr<Instruction> UnaryInst::clone() const {
  return std::make_unique<UnaryInst>(Op, Dest, Src);
}

//===----------------------------------------------------------------------===//
// LoadInst / StoreInst
//===----------------------------------------------------------------------===//

void LoadInst::getUses(std::vector<unsigned> &Uses) const {
  addUse(Uses, Base);
}

void LoadInst::remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) {
  Dest = Map(Dest, Ctx);
  remapOperand(Base, Map, Ctx);
}

std::unique_ptr<Instruction> LoadInst::clone() const {
  return std::make_unique<LoadInst>(Dest, Base, Offset);
}

void StoreInst::getUses(std::vector<unsigned> &Uses) const {
  addUse(Uses, Value);
  addUse(Uses, Base);
}

void StoreInst::remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) {
  remapOperand(Value, Map, Ctx);
  remapOperand(Base, Map, Ctx);
}

std::unique_ptr<Instruction> StoreInst::clone() const {
  return std::make_unique<StoreInst>(Value, Base, Offset);
}

//===----------------------------------------------------------------------===//
// CmpInst
//===----------------------------------------------------------------------===//

void CmpInst::getUses(std::vector<unsigned> &Uses) const {
  addUse(Uses, Lhs);
  addUse(Uses, Rhs);
}

void CmpInst::remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) {
  remapOperand(Lhs, Map, Ctx);
  remapOperand(Rhs, Map, Ctx);
}

std::unique_ptr<Instruction> CmpInst::clone() const {
  return std::make_unique<CmpInst>(Lhs, Rhs);
}

//===----------------------------------------------------------------------===//
// CallInst
//===----------------------------------------------------------------------===//

void CallInst::getUses(std::vector<unsigned> &Uses) const {
  for (const Operand &Arg : Args)
    addUse(Uses, Arg);
}

void CallInst::remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) {
  if (Dest)
    Dest = Map(*Dest, Ctx);
  for (Operand &Arg : Args)
    remapOperand(Arg, Map, Ctx);
}

std::unique_ptr<Instruction> CallInst::clone() const {
  return std::make_unique<CallInst>(Dest, Callee, Args);
}

//===----------------------------------------------------------------------===//
// I/O and profiling instructions
//===----------------------------------------------------------------------===//

void ReadCharInst::remapRegisters(unsigned (*Map)(unsigned, void *),
                                  void *Ctx) {
  Dest = Map(Dest, Ctx);
}

std::unique_ptr<Instruction> ReadCharInst::clone() const {
  return std::make_unique<ReadCharInst>(Dest);
}

void PutCharInst::getUses(std::vector<unsigned> &Uses) const {
  addUse(Uses, Src);
}

void PutCharInst::remapRegisters(unsigned (*Map)(unsigned, void *),
                                 void *Ctx) {
  remapOperand(Src, Map, Ctx);
}

std::unique_ptr<Instruction> PutCharInst::clone() const {
  return std::make_unique<PutCharInst>(Src);
}

void PrintIntInst::getUses(std::vector<unsigned> &Uses) const {
  addUse(Uses, Src);
}

void PrintIntInst::remapRegisters(unsigned (*Map)(unsigned, void *),
                                  void *Ctx) {
  remapOperand(Src, Map, Ctx);
}

std::unique_ptr<Instruction> PrintIntInst::clone() const {
  return std::make_unique<PrintIntInst>(Src);
}

void ComboProfileInst::getUses(std::vector<unsigned> &Uses) const {
  for (const Condition &Cond : Conditions) {
    addUse(Uses, Cond.Lhs);
    addUse(Uses, Cond.Rhs);
  }
}

void ComboProfileInst::remapRegisters(unsigned (*Map)(unsigned, void *),
                                      void *Ctx) {
  for (Condition &Cond : Conditions) {
    remapOperand(Cond.Lhs, Map, Ctx);
    remapOperand(Cond.Rhs, Map, Ctx);
  }
}

std::unique_ptr<Instruction> ComboProfileInst::clone() const {
  return std::make_unique<ComboProfileInst>(SequenceId, Conditions);
}

void ProfileInst::getUses(std::vector<unsigned> &Uses) const {
  Uses.push_back(ValueReg);
}

void ProfileInst::remapRegisters(unsigned (*Map)(unsigned, void *),
                                 void *Ctx) {
  ValueReg = Map(ValueReg, Ctx);
}

std::unique_ptr<Instruction> ProfileInst::clone() const {
  return std::make_unique<ProfileInst>(SequenceId, ValueReg);
}

//===----------------------------------------------------------------------===//
// Terminators
//===----------------------------------------------------------------------===//

void CondBrInst::invert() {
  Pred = invertCondCode(Pred);
  std::swap(Succs[0], Succs[1]);
}

BasicBlock *CondBrInst::getSuccessor(unsigned Index) const {
  assert(Index < 2 && "CondBr successor index out of range");
  return Succs[Index];
}

void CondBrInst::setSuccessor(unsigned Index, BasicBlock *B) {
  assert(Index < 2 && "CondBr successor index out of range");
  Succs[Index] = B;
}

std::unique_ptr<Instruction> CondBrInst::clone() const {
  return std::make_unique<CondBrInst>(Pred, Succs[0], Succs[1]);
}

BasicBlock *JumpInst::getSuccessor(unsigned Index) const {
  assert(Index == 0 && "Jump successor index out of range");
  return Target;
}

void JumpInst::setSuccessor(unsigned Index, BasicBlock *B) {
  assert(Index == 0 && "Jump successor index out of range");
  Target = B;
}

std::unique_ptr<Instruction> JumpInst::clone() const {
  auto Copy = std::make_unique<JumpInst>(Target);
  Copy->setIsFallThrough(FallThrough);
  return Copy;
}

void SwitchInst::getUses(std::vector<unsigned> &Uses) const {
  addUse(Uses, Value);
}

void SwitchInst::remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) {
  remapOperand(Value, Map, Ctx);
}

BasicBlock *SwitchInst::getSuccessor(unsigned Index) const {
  if (Index < Cases.size())
    return Cases[Index].Target;
  assert(Index == Cases.size() && "Switch successor index out of range");
  return Default;
}

void SwitchInst::setSuccessor(unsigned Index, BasicBlock *B) {
  if (Index < Cases.size()) {
    Cases[Index].Target = B;
    return;
  }
  assert(Index == Cases.size() && "Switch successor index out of range");
  Default = B;
}

std::unique_ptr<Instruction> SwitchInst::clone() const {
  return std::make_unique<SwitchInst>(Value, Cases, Default);
}

void IndirectJumpInst::getUses(std::vector<unsigned> &Uses) const {
  addUse(Uses, Index);
}

void IndirectJumpInst::remapRegisters(unsigned (*Map)(unsigned, void *),
                                      void *Ctx) {
  remapOperand(Index, Map, Ctx);
}

BasicBlock *IndirectJumpInst::getSuccessor(unsigned SuccIndex) const {
  assert(SuccIndex < Table.size() && "table index out of range");
  return Table[SuccIndex];
}

void IndirectJumpInst::setSuccessor(unsigned SuccIndex, BasicBlock *B) {
  assert(SuccIndex < Table.size() && "table index out of range");
  Table[SuccIndex] = B;
}

std::unique_ptr<Instruction> IndirectJumpInst::clone() const {
  return std::make_unique<IndirectJumpInst>(Index, Table);
}

void RetInst::getUses(std::vector<unsigned> &Uses) const {
  addUse(Uses, Value);
}

void RetInst::remapRegisters(unsigned (*Map)(unsigned, void *), void *Ctx) {
  remapOperand(Value, Map, Ctx);
}

std::unique_ptr<Instruction> RetInst::clone() const {
  return std::make_unique<RetInst>(Value);
}
