//===- ir/IRParser.cpp - Parse printed IR back into a Module --------------===//

#include "ir/IRParser.h"

#include "support/Strings.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <vector>

using namespace bropt;

namespace {

/// Splits \p Text into lines, keeping empty lines so diagnostics can report
/// 1-based line numbers matching the printer's output.
std::vector<std::string_view> splitLines(std::string_view Text) {
  std::vector<std::string_view> Lines;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t End = Text.find('\n', Start);
    if (End == std::string_view::npos) {
      if (Start < Text.size())
        Lines.push_back(Text.substr(Start));
      break;
    }
    Lines.push_back(Text.substr(Start, End - Start));
    Start = End + 1;
  }
  return Lines;
}

/// Cursor over one line with primitive lexing helpers.  All parse methods
/// return false (leaving a diagnostic in Error) on mismatch.
class LineCursor {
public:
  LineCursor(std::string_view Text, size_t LineNo, std::string &Error)
      : Text(Text), LineNo(LineNo), Error(Error) {}

  void skipSpaces() {
    while (Pos < Text.size() && Text[Pos] == ' ')
      ++Pos;
  }

  bool atEnd() {
    skipSpaces();
    return Pos >= Text.size();
  }

  /// Consumes \p Literal exactly (after skipping spaces).
  bool expect(std::string_view Literal) {
    skipSpaces();
    if (Text.substr(Pos, Literal.size()) != Literal)
      return fail("expected '" + std::string(Literal) + "'");
    Pos += Literal.size();
    return true;
  }

  /// True if \p Literal comes next; consumes it if so.
  bool consumeIf(std::string_view Literal) {
    skipSpaces();
    if (Text.substr(Pos, Literal.size()) != Literal)
      return false;
    Pos += Literal.size();
    return true;
  }

  char peek() {
    skipSpaces();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  /// Parses a signed decimal integer.
  bool parseInt(int64_t &Value) {
    skipSpaces();
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start || (Pos == Start + 1 && !std::isdigit(static_cast<unsigned char>(Text[Start]))))
      return fail("expected an integer");
    Value = std::strtoll(std::string(Text.substr(Start, Pos - Start)).c_str(),
                         nullptr, 10);
    return true;
  }

  bool parseUnsigned(uint64_t &Value) {
    int64_t Signed = 0;
    if (!parseInt(Signed) || Signed < 0)
      return fail("expected an unsigned integer");
    Value = static_cast<uint64_t>(Signed);
    return true;
  }

  /// Parses `r<N>`.
  bool parseReg(unsigned &Reg) {
    skipSpaces();
    if (Pos >= Text.size() || Text[Pos] != 'r' || Pos + 1 >= Text.size() ||
        !std::isdigit(static_cast<unsigned char>(Text[Pos + 1])))
      return fail("expected a register");
    ++Pos;
    uint64_t Value = 0;
    if (!parseUnsigned(Value))
      return false;
    Reg = static_cast<unsigned>(Value);
    return true;
  }

  /// Parses a register or immediate operand (`<none>` included).
  bool parseOperand(Operand &Op) {
    skipSpaces();
    if (consumeIf("<none>")) {
      Op = Operand();
      return true;
    }
    if (Pos < Text.size() && Text[Pos] == 'r' && Pos + 1 < Text.size() &&
        std::isdigit(static_cast<unsigned char>(Text[Pos + 1]))) {
      unsigned Reg = 0;
      if (!parseReg(Reg))
        return false;
      Op = Operand::reg(Reg);
      return true;
    }
    int64_t Imm = 0;
    if (!parseInt(Imm))
      return fail("expected an operand");
    Op = Operand::imm(Imm);
    return true;
  }

  /// Parses an identifier-like word: [A-Za-z0-9_.]+ (labels and names).
  bool parseWord(std::string &Word) {
    skipSpaces();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_' || Text[Pos] == '.'))
      ++Pos;
    if (Pos == Start)
      return fail("expected an identifier");
    Word = std::string(Text.substr(Start, Pos - Start));
    return true;
  }

  bool fail(std::string Why) {
    if (Error.empty())
      Error = formatString("line %zu: %s (near \"%s\")", LineNo, Why.c_str(),
                           std::string(Text.substr(Pos, 24)).c_str());
    return false;
  }

private:
  std::string_view Text;
  size_t Pos = 0;
  size_t LineNo;
  std::string &Error;
};

/// Parses a printed block label `bb<id>[.<name>]` into its parts.
bool splitLabel(std::string_view Label, unsigned &Id, std::string &Name) {
  if (Label.size() < 3 || Label.substr(0, 2) != "bb" ||
      !std::isdigit(static_cast<unsigned char>(Label[2])))
    return false;
  size_t Pos = 2;
  uint64_t Value = 0;
  while (Pos < Label.size() &&
         std::isdigit(static_cast<unsigned char>(Label[Pos]))) {
    Value = Value * 10 + static_cast<uint64_t>(Label[Pos] - '0');
    ++Pos;
  }
  Id = static_cast<unsigned>(Value);
  Name.clear();
  if (Pos < Label.size()) {
    if (Label[Pos] != '.')
      return false;
    Name = std::string(Label.substr(Pos + 1));
  }
  return true;
}

std::optional<CondCode> condCodeFromName(std::string_view Name) {
  if (Name == "eq")
    return CondCode::EQ;
  if (Name == "ne")
    return CondCode::NE;
  if (Name == "lt")
    return CondCode::LT;
  if (Name == "le")
    return CondCode::LE;
  if (Name == "gt")
    return CondCode::GT;
  if (Name == "ge")
    return CondCode::GE;
  return std::nullopt;
}

std::optional<BinaryOp> binaryOpFromName(std::string_view Name) {
  static const std::pair<std::string_view, BinaryOp> Table[] = {
      {"add", BinaryOp::Add}, {"sub", BinaryOp::Sub}, {"mul", BinaryOp::Mul},
      {"div", BinaryOp::Div}, {"rem", BinaryOp::Rem}, {"and", BinaryOp::And},
      {"or", BinaryOp::Or},   {"xor", BinaryOp::Xor}, {"shl", BinaryOp::Shl},
      {"shr", BinaryOp::Shr},
  };
  for (const auto &[OpName, Op] : Table)
    if (Name == OpName)
      return Op;
  return std::nullopt;
}

/// Rebuilds one function's body from its printed lines.
class FunctionParser {
public:
  FunctionParser(Module &M, Function &F, std::string &Error)
      : M(M), F(F), Error(Error) {}

  /// \p Lines covers the body only (between the header and closing '}').
  bool run(const std::vector<std::pair<size_t, std::string_view>> &Lines) {
    // First pass: create every block so branches can resolve forward refs.
    for (const auto &[LineNo, Line] : Lines) {
      if (Line.empty() || Line[0] == ' ')
        continue;
      if (Line.back() != ':') {
        Error = formatString("line %zu: expected 'label:'", LineNo);
        return false;
      }
      std::string_view Label = Line.substr(0, Line.size() - 1);
      unsigned Id = 0;
      std::string Name;
      if (!splitLabel(Label, Id, Name)) {
        Error = formatString("line %zu: malformed block label '%s'", LineNo,
                             std::string(Label).c_str());
        return false;
      }
      BasicBlock *Block = F.createBlockWithId(Id, std::move(Name));
      if (!BlocksByLabel.emplace(std::string(Label), Block).second) {
        Error = formatString("line %zu: duplicate block label '%s'", LineNo,
                             std::string(Label).c_str());
        return false;
      }
    }

    BasicBlock *Current = nullptr;
    for (const auto &[LineNo, Line] : Lines) {
      if (Line.empty())
        continue;
      if (Line[0] != ' ') {
        Current = BlocksByLabel.at(
            std::string(Line.substr(0, Line.size() - 1)));
        continue;
      }
      if (!Current) {
        Error = formatString("line %zu: instruction before any label", LineNo);
        return false;
      }
      if (Current->hasTerminator()) {
        Error = formatString("line %zu: instruction after the terminator",
                             LineNo);
        return false;
      }
      if (!parseInstruction(LineNo, Line, *Current))
        return false;
    }
    F.recomputePredecessors();
    return true;
  }

private:
  BasicBlock *lookupBlock(LineCursor &Cursor) {
    std::string Label;
    if (!Cursor.parseWord(Label))
      return nullptr;
    auto It = BlocksByLabel.find(Label);
    if (It == BlocksByLabel.end()) {
      Cursor.fail("unknown block label '" + Label + "'");
      return nullptr;
    }
    return It->second;
  }

  bool parseInstruction(size_t LineNo, std::string_view Line,
                        BasicBlock &Block) {
    LineCursor Cursor(Line, LineNo, Error);
    std::string Mnemonic;
    if (!Cursor.parseWord(Mnemonic))
      return false;

    // The mnemonic may carry the condition code: "br.le".
    std::string Suffix;
    if (size_t Dot = Mnemonic.find('.'); Dot != std::string::npos) {
      Suffix = Mnemonic.substr(Dot + 1);
      Mnemonic.resize(Dot);
    }

    std::unique_ptr<Instruction> Inst;
    if (Mnemonic == "mov") {
      unsigned Dest = 0;
      Operand Src;
      if (!Cursor.parseReg(Dest) || !Cursor.expect(",") ||
          !Cursor.parseOperand(Src))
        return false;
      Inst = std::make_unique<MoveInst>(Dest, Src);
    } else if (auto BinOp = binaryOpFromName(Mnemonic)) {
      unsigned Dest = 0;
      Operand Lhs, Rhs;
      if (!Cursor.parseReg(Dest) || !Cursor.expect(",") ||
          !Cursor.parseOperand(Lhs) || !Cursor.expect(",") ||
          !Cursor.parseOperand(Rhs))
        return false;
      Inst = std::make_unique<BinaryInst>(*BinOp, Dest, Lhs, Rhs);
    } else if (Mnemonic == "neg" || Mnemonic == "not") {
      unsigned Dest = 0;
      Operand Src;
      if (!Cursor.parseReg(Dest) || !Cursor.expect(",") ||
          !Cursor.parseOperand(Src))
        return false;
      Inst = std::make_unique<UnaryInst>(
          Mnemonic == "neg" ? UnaryOp::Neg : UnaryOp::Not, Dest, Src);
    } else if (Mnemonic == "ld") {
      unsigned Dest = 0;
      Operand Base;
      int64_t Offset = 0;
      if (!Cursor.parseReg(Dest) || !Cursor.expect(",") ||
          !Cursor.expect("[") || !Cursor.parseOperand(Base) ||
          !Cursor.expect("+") || !Cursor.parseInt(Offset) ||
          !Cursor.expect("]"))
        return false;
      Inst = std::make_unique<LoadInst>(Dest, Base, Offset);
    } else if (Mnemonic == "st") {
      Operand Value, Base;
      int64_t Offset = 0;
      if (!Cursor.parseOperand(Value) || !Cursor.expect(",") ||
          !Cursor.expect("[") || !Cursor.parseOperand(Base) ||
          !Cursor.expect("+") || !Cursor.parseInt(Offset) ||
          !Cursor.expect("]"))
        return false;
      Inst = std::make_unique<StoreInst>(Value, Base, Offset);
    } else if (Mnemonic == "cmp") {
      Operand Lhs, Rhs;
      if (!Cursor.parseOperand(Lhs) || !Cursor.expect(",") ||
          !Cursor.parseOperand(Rhs))
        return false;
      Inst = std::make_unique<CmpInst>(Lhs, Rhs);
    } else if (Mnemonic == "call") {
      if (!parseCall(Cursor, Inst))
        return false;
    } else if (Mnemonic == "readc") {
      unsigned Dest = 0;
      if (!Cursor.parseReg(Dest))
        return false;
      Inst = std::make_unique<ReadCharInst>(Dest);
    } else if (Mnemonic == "putc") {
      Operand Src;
      if (!Cursor.parseOperand(Src))
        return false;
      Inst = std::make_unique<PutCharInst>(Src);
    } else if (Mnemonic == "printi") {
      Operand Src;
      if (!Cursor.parseOperand(Src))
        return false;
      Inst = std::make_unique<PrintIntInst>(Src);
    } else if (Mnemonic == "profile") {
      uint64_t Id = 0;
      unsigned Reg = 0;
      if (!Cursor.expect("seq") || !Cursor.parseUnsigned(Id) ||
          !Cursor.expect(",") || !Cursor.parseReg(Reg))
        return false;
      Inst = std::make_unique<ProfileInst>(static_cast<unsigned>(Id), Reg);
    } else if (Mnemonic == "comboprofile") {
      if (!parseComboProfile(Cursor, Inst))
        return false;
    } else if (Mnemonic == "br") {
      auto CC = condCodeFromName(Suffix);
      if (!CC)
        return Cursor.fail("unknown condition code '" + Suffix + "'");
      BasicBlock *Taken = lookupBlock(Cursor);
      if (!Taken || !Cursor.expect(",") || !Cursor.expect("fall"))
        return false;
      BasicBlock *FallThrough = lookupBlock(Cursor);
      if (!FallThrough)
        return false;
      Inst = std::make_unique<CondBrInst>(*CC, Taken, FallThrough);
    } else if (Mnemonic == "jmp" || Mnemonic == "fall") {
      BasicBlock *Target = lookupBlock(Cursor);
      if (!Target)
        return false;
      auto Jump = std::make_unique<JumpInst>(Target);
      Jump->setIsFallThrough(Mnemonic == "fall");
      Inst = std::move(Jump);
    } else if (Mnemonic == "switch") {
      if (!parseSwitch(Cursor, Inst))
        return false;
    } else if (Mnemonic == "ijmp") {
      Operand Index;
      if (!Cursor.parseOperand(Index) || !Cursor.expect(",") ||
          !Cursor.expect("["))
        return false;
      std::vector<BasicBlock *> Table;
      if (!Cursor.consumeIf("]")) {
        do {
          BasicBlock *Target = lookupBlock(Cursor);
          if (!Target)
            return false;
          Table.push_back(Target);
        } while (Cursor.consumeIf(","));
        if (!Cursor.expect("]"))
          return false;
      }
      Inst = std::make_unique<IndirectJumpInst>(Index, std::move(Table));
    } else if (Mnemonic == "ret") {
      Operand Value;
      if (!Cursor.atEnd() && !Cursor.parseOperand(Value))
        return false;
      Inst = std::make_unique<RetInst>(Value);
    } else {
      return Cursor.fail("unknown mnemonic '" + Mnemonic + "'");
    }

    if (!Cursor.atEnd())
      return Cursor.fail("trailing text after the instruction");
    Block.append(std::move(Inst));
    return true;
  }

  bool parseCall(LineCursor &Cursor, std::unique_ptr<Instruction> &Inst) {
    // `call r2, f(...)` defines r2; `call f(...)` has no destination.  The
    // next delimiter disambiguates a callee named like a register.
    std::string First;
    if (!Cursor.parseWord(First))
      return false;
    std::optional<unsigned> Dest;
    std::string Callee;
    if (Cursor.consumeIf(",")) {
      if (First.size() < 2 || First[0] != 'r')
        return Cursor.fail("expected a destination register");
      Dest = static_cast<unsigned>(
          std::strtoul(First.c_str() + 1, nullptr, 10));
      if (!Cursor.parseWord(Callee))
        return false;
    } else {
      Callee = std::move(First);
    }
    if (!Cursor.expect("("))
      return false;
    std::vector<Operand> Args;
    if (!Cursor.consumeIf(")")) {
      do {
        Operand Arg;
        if (!Cursor.parseOperand(Arg))
          return false;
        Args.push_back(Arg);
      } while (Cursor.consumeIf(","));
      if (!Cursor.expect(")"))
        return false;
    }
    Function *Target = M.getFunction(Callee);
    if (!Target)
      return Cursor.fail("call to unknown function '" + Callee + "'");
    Inst = std::make_unique<CallInst>(Dest, Target, std::move(Args));
    return true;
  }

  bool parseComboProfile(LineCursor &Cursor,
                         std::unique_ptr<Instruction> &Inst) {
    uint64_t Id = 0;
    if (!Cursor.expect("seq") || !Cursor.parseUnsigned(Id) ||
        !Cursor.expect(",") || !Cursor.expect("["))
      return false;
    std::vector<ComboProfileInst::Condition> Conditions;
    if (!Cursor.consumeIf("]")) {
      do {
        ComboProfileInst::Condition Cond;
        std::string CCName;
        if (!Cursor.parseOperand(Cond.Lhs) || !Cursor.parseWord(CCName))
          return false;
        auto CC = condCodeFromName(CCName);
        if (!CC)
          return Cursor.fail("unknown condition code '" + CCName + "'");
        Cond.Pred = *CC;
        if (!Cursor.parseOperand(Cond.Rhs))
          return false;
        Conditions.push_back(Cond);
      } while (Cursor.consumeIf(","));
      if (!Cursor.expect("]"))
        return false;
    }
    Inst = std::make_unique<ComboProfileInst>(static_cast<unsigned>(Id),
                                              std::move(Conditions));
    return true;
  }

  bool parseSwitch(LineCursor &Cursor, std::unique_ptr<Instruction> &Inst) {
    Operand Value;
    if (!Cursor.parseOperand(Value) || !Cursor.expect("["))
      return false;
    std::vector<SwitchInst::Case> Cases;
    if (!Cursor.consumeIf("]")) {
      do {
        SwitchInst::Case Case;
        if (!Cursor.parseInt(Case.Value) || !Cursor.expect("->"))
          return false;
        Case.Target = lookupBlock(Cursor);
        if (!Case.Target)
          return false;
        Cases.push_back(Case);
      } while (Cursor.consumeIf(","));
      if (!Cursor.expect("]"))
        return false;
    }
    if (!Cursor.expect(",") || !Cursor.expect("default"))
      return false;
    BasicBlock *Default = lookupBlock(Cursor);
    if (!Default)
      return false;
    Inst = std::make_unique<SwitchInst>(Value, std::move(Cases), Default);
    return true;
  }

  Module &M;
  Function &F;
  std::string &Error;
  std::map<std::string, BasicBlock *> BlocksByLabel;
};

/// Parses `func NAME(N params, M regs) {` headers.
bool parseFunctionHeader(std::string_view Line, size_t LineNo,
                         std::string &Name, uint64_t &Params, uint64_t &Regs,
                         std::string &Error) {
  LineCursor Cursor(Line, LineNo, Error);
  return Cursor.expect("func") && Cursor.parseWord(Name) &&
         Cursor.expect("(") && Cursor.parseUnsigned(Params) &&
         Cursor.expect("params") && Cursor.expect(",") &&
         Cursor.parseUnsigned(Regs) && Cursor.expect("regs") &&
         Cursor.expect(")") && Cursor.expect("{") && Cursor.atEnd();
}

} // namespace

std::unique_ptr<Module> bropt::parseModuleText(std::string_view Text,
                                               std::string *Error) {
  std::string LocalError;
  std::string &Err = Error ? *Error : LocalError;
  auto M = std::make_unique<Module>();
  std::vector<std::string_view> Lines = splitLines(Text);

  // First pass: globals (in address order) and function headers, so calls
  // can resolve across functions in any order.
  for (size_t Index = 0; Index < Lines.size(); ++Index) {
    std::string_view Line = Lines[Index];
    size_t LineNo = Index + 1;
    if (Line.rfind("global ", 0) == 0) {
      LineCursor Cursor(Line, LineNo, Err);
      std::string Name;
      uint64_t Words = 0, Address = 0;
      if (!Cursor.expect("global") || !Cursor.parseWord(Name) ||
          !Cursor.expect(":") || !Cursor.parseUnsigned(Words) ||
          !Cursor.expect("words") || !Cursor.expect("@") ||
          !Cursor.parseUnsigned(Address))
        return nullptr;
      std::vector<int64_t> Init;
      if (Cursor.consumeIf("=")) {
        if (!Cursor.expect("["))
          return nullptr;
        do {
          int64_t Value = 0;
          if (!Cursor.parseInt(Value))
            return nullptr;
          Init.push_back(Value);
        } while (Cursor.consumeIf(","));
        if (!Cursor.expect("]"))
          return nullptr;
      }
      GlobalVariable *G = M->createGlobal(
          std::move(Name), static_cast<uint32_t>(Words), std::move(Init));
      if (G->BaseAddress != Address) {
        Err = formatString(
            "line %zu: global address %llu does not match layout %u", LineNo,
            static_cast<unsigned long long>(Address), G->BaseAddress);
        return nullptr;
      }
    } else if (Line.rfind("func ", 0) == 0) {
      std::string Name;
      uint64_t Params = 0, Regs = 0;
      if (!parseFunctionHeader(Line, LineNo, Name, Params, Regs, Err))
        return nullptr;
      if (M->getFunction(Name)) {
        Err = formatString("line %zu: duplicate function '%s'", LineNo,
                           Name.c_str());
        return nullptr;
      }
      Function *F =
          M->createFunction(Name, static_cast<unsigned>(Params));
      if (Regs > 0)
        F->growRegsTo(static_cast<unsigned>(Regs) - 1);
    }
  }

  // Second pass: function bodies.
  for (size_t Index = 0; Index < Lines.size(); ++Index) {
    std::string_view Line = Lines[Index];
    if (Line.rfind("func ", 0) != 0)
      continue;
    std::string Name;
    uint64_t Params = 0, Regs = 0;
    if (!parseFunctionHeader(Line, Index + 1, Name, Params, Regs, Err))
      return nullptr;
    std::vector<std::pair<size_t, std::string_view>> Body;
    size_t End = Index + 1;
    for (; End < Lines.size() && Lines[End] != "}"; ++End)
      Body.push_back({End + 1, Lines[End]});
    if (End >= Lines.size()) {
      Err = formatString("line %zu: missing '}' for function '%s'", Index + 1,
                         Name.c_str());
      return nullptr;
    }
    if (!FunctionParser(*M, *M->getFunction(Name), Err).run(Body))
      return nullptr;
    Index = End;
  }
  return M;
}
