//===- ir/Function.cpp - Functions ---------------------------------------===//

#include "ir/Function.h"

#include "support/Debug.h"

using namespace bropt;

BasicBlock *Function::createBlock(std::string BlockName) {
  Blocks.push_back(
      std::make_unique<BasicBlock>(this, NextBlockId++, std::move(BlockName)));
  return Blocks.back().get();
}

BasicBlock *Function::createBlockWithId(unsigned Id, std::string BlockName) {
  for ([[maybe_unused]] const auto &Block : Blocks)
    assert(Block->getId() != Id && "block id already in use");
  Blocks.push_back(
      std::make_unique<BasicBlock>(this, Id, std::move(BlockName)));
  if (Id >= NextBlockId)
    NextBlockId = Id + 1;
  return Blocks.back().get();
}

BasicBlock *Function::createBlockAfter(BasicBlock *After,
                                       std::string BlockName) {
  size_t Index = blockIndex(After);
  auto Block =
      std::make_unique<BasicBlock>(this, NextBlockId++, std::move(BlockName));
  BasicBlock *Result = Block.get();
  Blocks.insert(Blocks.begin() + static_cast<ptrdiff_t>(Index) + 1,
                std::move(Block));
  return Result;
}

size_t Function::blockIndex(const BasicBlock *B) const {
  for (size_t Index = 0, E = Blocks.size(); Index != E; ++Index)
    if (Blocks[Index].get() == B)
      return Index;
  BROPT_UNREACHABLE("block not in this function");
}

BasicBlock *Function::getNextBlock(const BasicBlock *B) {
  size_t Index = blockIndex(B);
  if (Index + 1 >= Blocks.size())
    return nullptr;
  return Blocks[Index + 1].get();
}

void Function::moveBlockAfter(BasicBlock *B, BasicBlock *After) {
  assert(B != After && "cannot move a block after itself");
  size_t From = blockIndex(B);
  std::unique_ptr<BasicBlock> Holder = std::move(Blocks[From]);
  Blocks.erase(Blocks.begin() + static_cast<ptrdiff_t>(From));
  size_t To = blockIndex(After);
  Blocks.insert(Blocks.begin() + static_cast<ptrdiff_t>(To) + 1,
                std::move(Holder));
}

void Function::setLayout(const std::vector<BasicBlock *> &Order) {
  assert(Order.size() == Blocks.size() && "layout must cover every block");
  assert(!Order.empty() && Order.front() == Blocks.front().get() &&
         "the entry block must stay first");
  std::vector<std::unique_ptr<BasicBlock>> NewBlocks;
  NewBlocks.reserve(Blocks.size());
  for (BasicBlock *Block : Order) {
    size_t Index = blockIndex(Block);
    assert(Blocks[Index] && "duplicate block in the new layout");
    NewBlocks.push_back(std::move(Blocks[Index]));
  }
  Blocks = std::move(NewBlocks);
}

void Function::eraseBlock(BasicBlock *B) {
  size_t Index = blockIndex(B);
  Blocks.erase(Blocks.begin() + static_cast<ptrdiff_t>(Index));
}

void Function::recomputePredecessors() {
  for (auto &Block : Blocks)
    Block->clearPredecessors();
  for (auto &Block : Blocks)
    for (BasicBlock *Succ : Block->successors())
      Succ->addPredecessor(Block.get());
}

size_t Function::instructionCount() const {
  size_t Count = 0;
  for (const auto &Block : Blocks)
    Count += Block->size();
  return Count;
}

size_t Function::codeSize() const {
  size_t Count = 0;
  for (const auto &Block : Blocks)
    for (const auto &Inst : *Block) {
      if (Inst->getKind() == InstKind::Profile)
        continue;
      if (const auto *Jump = dyn_cast<JumpInst>(Inst.get()))
        if (Jump->isFallThrough())
          continue;
      ++Count;
    }
  return Count;
}
