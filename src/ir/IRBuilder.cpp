//===- ir/IRBuilder.cpp - Convenience IR construction ---------------------===//

#include "ir/IRBuilder.h"

#include "support/Debug.h"

using namespace bropt;

template <typename T, typename... ArgsT> T *IRBuilder::append(ArgsT &&...Args) {
  assert(Block && "no insertion point set");
  auto Inst = std::make_unique<T>(std::forward<ArgsT>(Args)...);
  T *Raw = Inst.get();
  Block->append(std::move(Inst));
  return Raw;
}

MoveInst *IRBuilder::emitMove(unsigned Dest, Operand Src) {
  return append<MoveInst>(Dest, Src);
}

BinaryInst *IRBuilder::emitBinary(BinaryOp Op, unsigned Dest, Operand Lhs,
                                  Operand Rhs) {
  return append<BinaryInst>(Op, Dest, Lhs, Rhs);
}

UnaryInst *IRBuilder::emitUnary(UnaryOp Op, unsigned Dest, Operand Src) {
  return append<UnaryInst>(Op, Dest, Src);
}

LoadInst *IRBuilder::emitLoad(unsigned Dest, Operand Base, int64_t Offset) {
  return append<LoadInst>(Dest, Base, Offset);
}

StoreInst *IRBuilder::emitStore(Operand Value, Operand Base, int64_t Offset) {
  return append<StoreInst>(Value, Base, Offset);
}

CmpInst *IRBuilder::emitCmp(Operand Lhs, Operand Rhs) {
  return append<CmpInst>(Lhs, Rhs);
}

CallInst *IRBuilder::emitCall(std::optional<unsigned> Dest, Function *Callee,
                              std::vector<Operand> Args) {
  return append<CallInst>(Dest, Callee, std::move(Args));
}

ReadCharInst *IRBuilder::emitReadChar(unsigned Dest) {
  return append<ReadCharInst>(Dest);
}

PutCharInst *IRBuilder::emitPutChar(Operand Src) {
  return append<PutCharInst>(Src);
}

PrintIntInst *IRBuilder::emitPrintInt(Operand Src) {
  return append<PrintIntInst>(Src);
}

ProfileInst *IRBuilder::emitProfile(unsigned SequenceId, unsigned ValueReg) {
  return append<ProfileInst>(SequenceId, ValueReg);
}

CondBrInst *IRBuilder::emitCondBr(CondCode Pred, BasicBlock *Taken,
                                  BasicBlock *FallThrough) {
  return append<CondBrInst>(Pred, Taken, FallThrough);
}

JumpInst *IRBuilder::emitJump(BasicBlock *Target) {
  return append<JumpInst>(Target);
}

SwitchInst *IRBuilder::emitSwitch(Operand Value,
                                  std::vector<SwitchInst::Case> Cases,
                                  BasicBlock *Default) {
  return append<SwitchInst>(Value, std::move(Cases), Default);
}

IndirectJumpInst *
IRBuilder::emitIndirectJump(Operand Index, std::vector<BasicBlock *> Table) {
  return append<IndirectJumpInst>(Index, std::move(Table));
}

RetInst *IRBuilder::emitRet(Operand Value) { return append<RetInst>(Value); }
