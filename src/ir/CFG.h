//===- ir/CFG.h - Control-flow-graph utilities ------------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reachability, traversal orders, and the block-cloning machinery used by
/// the reordering transformation to replicate range conditions and default
/// target code (paper Figure 10).
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_IR_CFG_H
#define BROPT_IR_CFG_H

#include "ir/Function.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace bropt {

/// \returns the set of blocks reachable from the entry block.
std::unordered_set<const BasicBlock *> reachableBlocks(const Function &F);

/// \returns the blocks reachable from entry in reverse post order.
std::vector<BasicBlock *> reversePostOrder(Function &F);

/// Clones \p BlocksToClone (in their given order) into \p F, appending the
/// clones at the end of the layout.  Terminator edges that point into the
/// cloned set are redirected to the corresponding clones; edges leaving the
/// set keep pointing at the original blocks.  Registers are not renamed:
/// the clones compute into the same virtual registers, which is correct in
/// this non-SSA IR because a clone executes *instead of* its original, never
/// in addition to it.
///
/// \returns the original-to-clone mapping.
std::unordered_map<BasicBlock *, BasicBlock *>
cloneBlocks(Function &F, const std::vector<BasicBlock *> &BlocksToClone);

/// Redirects every edge in \p F that points at \p From so it points at
/// \p To instead.  Does not touch predecessor caches; callers recompute.
void replaceAllBranchesTo(Function &F, BasicBlock *From, BasicBlock *To);

} // namespace bropt

#endif // BROPT_IR_CFG_H
