//===- ir/BasicBlock.cpp - Basic blocks ----------------------------------===//

#include "ir/BasicBlock.h"

#include "support/Debug.h"
#include "support/Strings.h"

using namespace bropt;

std::string BasicBlock::getLabel() const {
  if (Name.empty())
    return formatString("bb%u", Id);
  return formatString("bb%u.%s", Id, Name.c_str());
}

Instruction *BasicBlock::getTerminator() {
  if (Insts.empty() || !Insts.back()->isTerminator())
    return nullptr;
  return Insts.back().get();
}

const Instruction *BasicBlock::getTerminator() const {
  if (Insts.empty() || !Insts.back()->isTerminator())
    return nullptr;
  return Insts.back().get();
}

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  assert(!hasTerminator() && "appending past a terminator");
  I->setParent(this);
  Insts.push_back(std::move(I));
  return Insts.back().get();
}

Instruction *BasicBlock::insertAt(size_t Index, std::unique_ptr<Instruction> I) {
  assert(Index <= Insts.size() && "insertion index out of range");
  I->setParent(this);
  auto It = Insts.insert(Insts.begin() + static_cast<ptrdiff_t>(Index),
                         std::move(I));
  return It->get();
}

std::unique_ptr<Instruction> BasicBlock::removeAt(size_t Index) {
  assert(Index < Insts.size() && "removal index out of range");
  std::unique_ptr<Instruction> I =
      std::move(Insts[Index]);
  Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Index));
  I->setParent(nullptr);
  return I;
}

void BasicBlock::truncateFrom(size_t Index) {
  assert(Index <= Insts.size() && "truncation index out of range");
  Insts.resize(Index);
}

size_t BasicBlock::indexOf(const Instruction *I) const {
  for (size_t Index = 0, E = Insts.size(); Index != E; ++Index)
    if (Insts[Index].get() == I)
      return Index;
  BROPT_UNREACHABLE("instruction not in this block");
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Succs;
  const Instruction *Term = getTerminator();
  if (!Term)
    return Succs;
  for (unsigned I = 0, E = Term->getNumSuccessors(); I != E; ++I)
    Succs.push_back(Term->getSuccessor(I));
  return Succs;
}
