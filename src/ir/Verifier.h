//===- ir/Verifier.h - IR structural validity checks ------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification run between passes in test builds:
///  * every reachable block ends in exactly one terminator;
///  * successor edges stay within the function;
///  * register numbers are within the function's register space;
///  * every executed CondBr observes condition codes set by a Cmp (either in
///    its own block or guaranteed on every path into the block — the latter
///    arises after redundant-comparison elimination, paper Figure 9).
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_IR_VERIFIER_H
#define BROPT_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>

namespace bropt {

/// Verifies \p F.  \returns true if valid; otherwise false with a diagnostic
/// appended to \p Errors (if non-null).
bool verifyFunction(const Function &F, std::string *Errors = nullptr);

/// Verifies every function in \p M.
bool verifyModule(const Module &M, std::string *Errors = nullptr);

} // namespace bropt

#endif // BROPT_IR_VERIFIER_H
