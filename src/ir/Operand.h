//===- ir/Operand.h - Register or immediate operands ------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight value-type operand: either a virtual register or a 64-bit
/// immediate.  The IR is not in SSA form (neither is vpo's RTL), so operands
/// name registers rather than defining instructions.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_IR_OPERAND_H
#define BROPT_IR_OPERAND_H

#include <cassert>
#include <cstdint>

namespace bropt {

/// A register or immediate operand of an instruction.
class Operand {
public:
  enum class Kind : uint8_t { None, Reg, Imm };

  Operand() = default;

  /// Creates a virtual-register operand.
  static Operand reg(unsigned Reg) {
    Operand Op;
    Op.OperandKind = Kind::Reg;
    Op.Value = Reg;
    return Op;
  }

  /// Creates an immediate operand.
  static Operand imm(int64_t Imm) {
    Operand Op;
    Op.OperandKind = Kind::Imm;
    Op.Value = Imm;
    return Op;
  }

  Kind getKind() const { return OperandKind; }
  bool isNone() const { return OperandKind == Kind::None; }
  bool isReg() const { return OperandKind == Kind::Reg; }
  bool isImm() const { return OperandKind == Kind::Imm; }

  unsigned getReg() const {
    assert(isReg() && "not a register operand");
    return static_cast<unsigned>(Value);
  }

  int64_t getImm() const {
    assert(isImm() && "not an immediate operand");
    return Value;
  }

  /// True if this operand is the given register.
  bool isRegister(unsigned Reg) const { return isReg() && getReg() == Reg; }

  bool operator==(const Operand &Other) const = default;

private:
  Kind OperandKind = Kind::None;
  int64_t Value = 0;
};

} // namespace bropt

#endif // BROPT_IR_OPERAND_H
