//===- ir/BasicBlock.h - Basic blocks ---------------------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block owns an ordered list of instructions, the last of which is
/// a terminator once the block is complete.  Blocks live in a function's
/// layout order, which determines fall-through placement.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_IR_BASICBLOCK_H
#define BROPT_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace bropt {

class Function;

/// A node of the control-flow graph.
class BasicBlock {
public:
  BasicBlock(Function *Parent, unsigned Id, std::string Name)
      : Parent(Parent), Id(Id), Name(std::move(Name)) {}

  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;

  Function *getParent() const { return Parent; }
  unsigned getId() const { return Id; }
  const std::string &getName() const { return Name; }

  /// A printable label, e.g. "bb3" or "bb3.loop".
  std::string getLabel() const;

  //===--------------------------------------------------------------------===//
  // Instruction list
  //===--------------------------------------------------------------------===//

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }
  Instruction &front() { return *Insts.front(); }
  Instruction &back() { return *Insts.back(); }
  const Instruction &front() const { return *Insts.front(); }
  const Instruction &back() const { return *Insts.back(); }

  Instruction *getInstruction(size_t Index) {
    assert(Index < Insts.size() && "instruction index out of range");
    return Insts[Index].get();
  }
  const Instruction *getInstruction(size_t Index) const {
    assert(Index < Insts.size() && "instruction index out of range");
    return Insts[Index].get();
  }

  /// Iteration over raw instruction pointers.
  auto begin() { return Insts.begin(); }
  auto end() { return Insts.end(); }
  auto begin() const { return Insts.begin(); }
  auto end() const { return Insts.end(); }

  /// \returns the terminator, or null if the block is incomplete.
  Instruction *getTerminator();
  const Instruction *getTerminator() const;

  /// \returns true if this block ends with a terminator.
  bool hasTerminator() const { return getTerminator() != nullptr; }

  /// Appends \p I; asserts that no terminator precedes it.
  Instruction *append(std::unique_ptr<Instruction> I);

  /// Inserts \p I before position \p Index.
  Instruction *insertAt(size_t Index, std::unique_ptr<Instruction> I);

  /// Removes and returns the instruction at \p Index.
  std::unique_ptr<Instruction> removeAt(size_t Index);

  /// Removes instructions [Index, end).
  void truncateFrom(size_t Index);

  /// \returns the position of \p I within the block.
  size_t indexOf(const Instruction *I) const;

  //===--------------------------------------------------------------------===//
  // CFG
  //===--------------------------------------------------------------------===//

  /// Successor blocks in terminator order (empty for incomplete blocks).
  std::vector<BasicBlock *> successors() const;

  /// Predecessors as of the last Function::recomputePredecessors() call.
  const std::vector<BasicBlock *> &predecessors() const { return Preds; }

  /// Used by Function::recomputePredecessors().
  void clearPredecessors() { Preds.clear(); }
  void addPredecessor(BasicBlock *B) { Preds.push_back(B); }

  /// Renders the block as text.
  std::string toString() const;

private:
  Function *Parent;
  unsigned Id;
  std::string Name;
  std::vector<std::unique_ptr<Instruction>> Insts;
  std::vector<BasicBlock *> Preds;
};

} // namespace bropt

#endif // BROPT_IR_BASICBLOCK_H
