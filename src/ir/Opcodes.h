//===- ir/Opcodes.h - Instruction kinds and condition codes -----*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumerations shared by the IR: instruction kinds, binary/unary operators,
/// and the condition codes read by conditional branches.
///
/// The IR mirrors the RTL level that vpo (the paper's compiler) works on:
/// comparisons are separate instructions that set an implicit condition-code
/// register, and conditional branches test that register.  This split is
/// essential to the paper: range-condition costs count comparison and branch
/// instructions separately, and the redundant-comparison elimination of
/// paper Figure 9 removes a comparison while keeping its branch.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_IR_OPCODES_H
#define BROPT_IR_OPCODES_H

#include <cstdint>

namespace bropt {

/// Discriminator for the Instruction class hierarchy.
enum class InstKind : uint8_t {
  // Ordinary instructions.
  Move,     ///< rd = src
  Binary,   ///< rd = lhs op rhs
  Unary,    ///< rd = op src
  Load,     ///< rd = memory[base + offset]
  Store,    ///< memory[base + offset] = value
  Cmp,      ///< condition codes = compare(lhs, rhs)
  Call,     ///< rd = callee(args...)
  ReadChar, ///< rd = next input byte, or -1 at end of input
  PutChar,  ///< append byte to the output stream
  PrintInt, ///< append a decimal rendering to the output stream
  Profile,  ///< profiling hook: report (sequence id, register value)
  ComboProfile, ///< profiling hook: report a branch-outcome combination
  // Terminators.
  CondBr,       ///< conditional branch on the condition codes
  Jump,         ///< unconditional branch
  Switch,       ///< multiway branch (lowered by SwitchLowering)
  IndirectJump, ///< jump through a table indexed by a register
  Ret,          ///< return from the function
};

/// \returns true if \p Kind terminates a basic block.
inline bool isTerminatorKind(InstKind Kind) {
  return Kind >= InstKind::CondBr;
}

/// Binary arithmetic/logic operators.
enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div, ///< signed division; traps on a zero divisor
  Rem, ///< signed remainder; traps on a zero divisor
  And,
  Or,
  Xor,
  Shl,
  Shr, ///< arithmetic shift right
};

/// Unary operators.
enum class UnaryOp : uint8_t {
  Neg,
  Not, ///< logical not: rd = (src == 0)
};

/// Conditions a CondBr can test against the condition codes set by the most
/// recent Cmp.  All comparisons are signed, as in the paper.
enum class CondCode : uint8_t { EQ, NE, LT, LE, GT, GE };

/// \returns the condition that is true exactly when \p CC is false.
CondCode invertCondCode(CondCode CC);

/// \returns the condition equivalent to \p CC with the compare operands
/// swapped (e.g. LT becomes GT).
CondCode swapCondCode(CondCode CC);

/// Evaluates \p CC over the signed comparison of \p Lhs and \p Rhs.
bool evalCondCode(CondCode CC, int64_t Lhs, int64_t Rhs);

/// \returns a printable mnemonic ("eq", "lt", ...).
const char *condCodeName(CondCode CC);

/// \returns a printable mnemonic ("add", "shl", ...).
const char *binaryOpName(BinaryOp Op);

/// \returns a printable mnemonic ("neg", "not").
const char *unaryOpName(UnaryOp Op);

} // namespace bropt

#endif // BROPT_IR_OPCODES_H
