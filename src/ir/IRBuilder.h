//===- ir/IRBuilder.h - Convenience IR construction -------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small builder that appends instructions to a current basic block.
/// Used by the front end's lowering, the switch-lowering pass, and the
/// reordering transformation when it emits replicated range conditions.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_IR_IRBUILDER_H
#define BROPT_IR_IRBUILDER_H

#include "ir/Function.h"

namespace bropt {

/// Appends instructions at the end of a designated block.
class IRBuilder {
public:
  IRBuilder() = default;
  explicit IRBuilder(BasicBlock *Block) : Block(Block) {}

  void setInsertionPoint(BasicBlock *B) { Block = B; }
  BasicBlock *getInsertionPoint() const { return Block; }

  /// True if the current block already ends in a terminator (further
  /// appends would assert).
  bool atTerminator() const { return Block && Block->hasTerminator(); }

  MoveInst *emitMove(unsigned Dest, Operand Src);
  BinaryInst *emitBinary(BinaryOp Op, unsigned Dest, Operand Lhs, Operand Rhs);
  UnaryInst *emitUnary(UnaryOp Op, unsigned Dest, Operand Src);
  LoadInst *emitLoad(unsigned Dest, Operand Base, int64_t Offset = 0);
  StoreInst *emitStore(Operand Value, Operand Base, int64_t Offset = 0);
  CmpInst *emitCmp(Operand Lhs, Operand Rhs);
  CallInst *emitCall(std::optional<unsigned> Dest, Function *Callee,
                     std::vector<Operand> Args);
  ReadCharInst *emitReadChar(unsigned Dest);
  PutCharInst *emitPutChar(Operand Src);
  PrintIntInst *emitPrintInt(Operand Src);
  ProfileInst *emitProfile(unsigned SequenceId, unsigned ValueReg);
  CondBrInst *emitCondBr(CondCode Pred, BasicBlock *Taken,
                         BasicBlock *FallThrough);
  JumpInst *emitJump(BasicBlock *Target);
  SwitchInst *emitSwitch(Operand Value, std::vector<SwitchInst::Case> Cases,
                         BasicBlock *Default);
  IndirectJumpInst *emitIndirectJump(Operand Index,
                                     std::vector<BasicBlock *> Table);
  RetInst *emitRet(Operand Value = Operand());

private:
  template <typename T, typename... ArgsT> T *append(ArgsT &&...Args);

  BasicBlock *Block = nullptr;
};

} // namespace bropt

#endif // BROPT_IR_IRBUILDER_H
