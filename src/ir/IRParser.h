//===- ir/IRParser.h - Parse printed IR back into a Module ------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual rendering produced by ir/Printer back into a Module.
/// The grammar is exactly the printer's output — one instruction per line,
/// `label:` block headers, `func name(N params, M regs) {` — so
/// parse(print(M)) rebuilds a module that prints identically and runs
/// identically.  The golden round-trip tests rely on this to prove the
/// printer loses no information; tools use it to reload dumped IR.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_IR_IRPARSER_H
#define BROPT_IR_IRPARSER_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <string_view>

namespace bropt {

/// Parses \p Text, the output of printModule().  \returns the rebuilt
/// module, or null with a diagnostic (including the line number) appended
/// to \p Error.
std::unique_ptr<Module> parseModuleText(std::string_view Text,
                                        std::string *Error = nullptr);

} // namespace bropt

#endif // BROPT_IR_IRPARSER_H
