//===- ir/CFG.cpp - Control-flow-graph utilities -------------------------===//

#include "ir/CFG.h"

#include "support/Debug.h"

#include <algorithm>

using namespace bropt;

std::unordered_set<const BasicBlock *>
bropt::reachableBlocks(const Function &F) {
  std::unordered_set<const BasicBlock *> Reached;
  if (F.empty())
    return Reached;
  std::vector<const BasicBlock *> Worklist{&F.getEntryBlock()};
  Reached.insert(&F.getEntryBlock());
  while (!Worklist.empty()) {
    const BasicBlock *Block = Worklist.back();
    Worklist.pop_back();
    for (BasicBlock *Succ : Block->successors())
      if (Reached.insert(Succ).second)
        Worklist.push_back(Succ);
  }
  return Reached;
}

namespace {

void postOrderVisit(BasicBlock *Block,
                    std::unordered_set<BasicBlock *> &Visited,
                    std::vector<BasicBlock *> &Order) {
  // Iterative DFS to avoid deep recursion on long block chains.
  struct Frame {
    BasicBlock *Block;
    std::vector<BasicBlock *> Succs;
    size_t NextSucc = 0;
  };
  std::vector<Frame> Stack;
  Stack.push_back({Block, Block->successors()});
  Visited.insert(Block);
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.NextSucc == Top.Succs.size()) {
      Order.push_back(Top.Block);
      Stack.pop_back();
      continue;
    }
    BasicBlock *Succ = Top.Succs[Top.NextSucc++];
    if (Visited.insert(Succ).second)
      Stack.push_back({Succ, Succ->successors()});
  }
}

} // namespace

std::vector<BasicBlock *> bropt::reversePostOrder(Function &F) {
  std::vector<BasicBlock *> Order;
  if (F.empty())
    return Order;
  std::unordered_set<BasicBlock *> Visited;
  postOrderVisit(&F.getEntryBlock(), Visited, Order);
  std::reverse(Order.begin(), Order.end());
  return Order;
}

std::unordered_map<BasicBlock *, BasicBlock *>
bropt::cloneBlocks(Function &F,
                   const std::vector<BasicBlock *> &BlocksToClone) {
  std::unordered_map<BasicBlock *, BasicBlock *> CloneMap;
  for (BasicBlock *Block : BlocksToClone) {
    assert(Block->getParent() == &F && "cloning a block from another function");
    BasicBlock *Clone = F.createBlock(Block->getName());
    CloneMap.emplace(Block, Clone);
    for (const auto &Inst : *Block)
      Clone->append(Inst->clone());
  }
  // Redirect intra-set edges to the clones.
  for (BasicBlock *Block : BlocksToClone) {
    Instruction *Term = CloneMap[Block]->getTerminator();
    if (!Term)
      continue;
    for (unsigned I = 0, E = Term->getNumSuccessors(); I != E; ++I) {
      auto It = CloneMap.find(Term->getSuccessor(I));
      if (It != CloneMap.end())
        Term->setSuccessor(I, It->second);
    }
  }
  return CloneMap;
}

void bropt::replaceAllBranchesTo(Function &F, BasicBlock *From,
                                 BasicBlock *To) {
  for (auto &Block : F) {
    Instruction *Term = Block->getTerminator();
    if (Term)
      Term->replaceSuccessor(From, To);
  }
}
