//===- ir/Verifier.cpp - IR structural validity checks --------------------===//

#include "ir/Verifier.h"

#include "ir/CFG.h"
#include "support/Strings.h"

#include <unordered_map>

using namespace bropt;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const Function &F, std::string *Errors)
      : F(F), Errors(Errors) {}

  bool run() {
    if (F.empty()) {
      fail("function has no blocks");
      return Ok;
    }
    for (const auto &Block : F)
      checkBlock(*Block);
    checkConditionCodes();
    return Ok;
  }

private:
  void fail(const std::string &Message) {
    Ok = false;
    if (Errors)
      *Errors += formatString("%s: %s\n", F.getName().c_str(),
                              Message.c_str());
  }

  void checkBlock(const BasicBlock &Block) {
    if (!Block.hasTerminator()) {
      fail(Block.getLabel() + " has no terminator");
      return;
    }
    for (size_t Index = 0; Index + 1 < Block.size(); ++Index)
      if (Block.getInstruction(Index)->isTerminator())
        fail(Block.getLabel() + " has a terminator before its last position");
    for (const auto &Inst : Block) {
      if (Inst->getParent() != &Block)
        fail(Block.getLabel() + " contains an instruction with a stale parent");
      checkRegisters(Block, *Inst);
      for (unsigned I = 0, E = Inst->getNumSuccessors(); I != E; ++I) {
        const BasicBlock *Succ = Inst->getSuccessor(I);
        if (!Succ)
          fail(Block.getLabel() + " has a null successor");
        else if (Succ->getParent() != &F)
          fail(Block.getLabel() + " branches outside the function");
      }
    }
  }

  void checkRegisters(const BasicBlock &Block, const Instruction &Inst) {
    if (auto Def = Inst.getDef())
      if (*Def >= F.getNumRegs())
        fail(formatString("%s defines out-of-range register r%u",
                          Block.getLabel().c_str(), *Def));
    std::vector<unsigned> Uses;
    Inst.getUses(Uses);
    for (unsigned Reg : Uses)
      if (Reg >= F.getNumRegs())
        fail(formatString("%s uses out-of-range register r%u",
                          Block.getLabel().c_str(), Reg));
  }

  /// Forward dataflow: a CondBr is valid if a Cmp precedes it in its block,
  /// or condition codes are definitely set on entry from every reachable
  /// predecessor.  Unreachable predecessors are excluded: a pass like
  /// branch chaining can orphan a jump-only block before the next
  /// unreachable-block sweep deletes it, and a dead edge cannot deliver
  /// condition codes (or anything else) at run time.
  void checkConditionCodes() {
    auto Reachable = reachableBlocks(F);
    // CCAtExit[B] = true if CC is definitely set when B's terminator runs.
    std::unordered_map<const BasicBlock *, bool> CCAtExit;
    for (const auto &Block : F)
      CCAtExit[Block.get()] = true; // optimistic for the fixpoint
    const_cast<Function &>(F).recomputePredecessors();

    // Entry state of a reachable block: it has at least one reachable
    // predecessor and all of them provide CC.
    auto ccOnEntry = [&](const BasicBlock &Block) {
      if (&Block == &F.getEntryBlock())
        return false;
      bool AnyPred = false;
      bool Entry = true;
      for (const BasicBlock *Pred : Block.predecessors()) {
        if (!Reachable.count(Pred))
          continue;
        AnyPred = true;
        Entry = Entry && CCAtExit[Pred];
      }
      return AnyPred && Entry;
    };

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &Block : F) {
        if (!Reachable.count(Block.get()))
          continue;
        bool Exit = ccOnEntry(*Block);
        for (const auto &Inst : *Block)
          if (Inst->writesCC())
            Exit = true;
        if (Exit != CCAtExit[Block.get()]) {
          CCAtExit[Block.get()] = Exit;
          Changed = true;
        }
      }
    }

    for (const auto &Block : F) {
      if (!Reachable.count(Block.get()))
        continue;
      const Instruction *Term = Block->getTerminator();
      if (!Term || !Term->readsCC())
        continue;
      bool SetLocally = false;
      for (const auto &Inst : *Block)
        if (Inst->writesCC())
          SetLocally = true;
      if (SetLocally)
        continue;
      if (!ccOnEntry(*Block))
        fail(Block->getLabel() +
             " ends in a conditional branch with no dominating cmp");
    }
  }

  const Function &F;
  std::string *Errors;
  bool Ok = true;
};

} // namespace

bool bropt::verifyFunction(const Function &F, std::string *Errors) {
  return VerifierImpl(F, Errors).run();
}

bool bropt::verifyModule(const Module &M, std::string *Errors) {
  bool Ok = true;
  for (const auto &F : M)
    Ok &= verifyFunction(*F, Errors);
  return Ok;
}
