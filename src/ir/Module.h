//===- ir/Module.h - Modules and global variables ---------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A module owns a set of functions and global variables.  Globals live in
/// one flat word-addressed memory; each global is assigned a base address at
/// creation time, so address computation is pure arithmetic in the IR.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_IR_MODULE_H
#define BROPT_IR_MODULE_H

#include "ir/Function.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bropt {

/// A statically allocated array of 64-bit words.
struct GlobalVariable {
  std::string Name;
  uint32_t NumWords;
  uint32_t BaseAddress;
  std::vector<int64_t> Init; ///< may be shorter than NumWords; rest is zero
};

/// Top-level container for a compiled program.
class Module {
public:
  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  /// Creates a function.  Names must be unique within the module.
  Function *createFunction(std::string Name, unsigned NumParams);

  /// \returns the function named \p Name, or null.
  Function *getFunction(const std::string &Name);
  const Function *getFunction(const std::string &Name) const;

  auto begin() { return Functions.begin(); }
  auto end() { return Functions.end(); }
  auto begin() const { return Functions.begin(); }
  auto end() const { return Functions.end(); }
  size_t size() const { return Functions.size(); }

  /// Allocates a global of \p NumWords words and returns it.
  GlobalVariable *createGlobal(std::string Name, uint32_t NumWords,
                               std::vector<int64_t> Init = {});

  /// \returns the global named \p Name, or null.
  const GlobalVariable *getGlobal(const std::string &Name) const;

  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  /// Total number of words of global memory the module needs.
  uint32_t memorySize() const { return NextAddress; }

  /// Total static instruction count across all functions.
  size_t instructionCount() const;

  /// Static code size across all functions (see Function::codeSize).
  size_t codeSize() const;

  /// Renders the module as text.
  std::string toString() const;

private:
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  uint32_t NextAddress = 0;
};

} // namespace bropt

#endif // BROPT_IR_MODULE_H
