//===- ir/Printer.h - Textual IR rendering ----------------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembly-like textual rendering of modules, functions, blocks, and
/// instructions, used by tests, examples, and debugging output.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_IR_PRINTER_H
#define BROPT_IR_PRINTER_H

#include "ir/Module.h"

#include <string>

namespace bropt {

/// Renders \p I as one line of text, e.g. "cmp r3, 32" or
/// "br.le bb4, fall bb5".
std::string printInstruction(const Instruction &I);

/// Renders \p B with its label and one instruction per line.
std::string printBlock(const BasicBlock &B);

/// Renders \p F with a header and all blocks in layout order.
std::string printFunction(const Function &F);

/// Renders \p M: globals followed by functions.
std::string printModule(const Module &M);

} // namespace bropt

#endif // BROPT_IR_PRINTER_H
