//===- ir/Printer.cpp - Textual IR rendering ------------------------------===//

#include "ir/Printer.h"

#include "support/Debug.h"
#include "support/Strings.h"

using namespace bropt;

namespace {

std::string printOperand(const Operand &Op) {
  switch (Op.getKind()) {
  case Operand::Kind::None:
    return "<none>";
  case Operand::Kind::Reg:
    return formatString("r%u", Op.getReg());
  case Operand::Kind::Imm:
    return formatString("%lld", static_cast<long long>(Op.getImm()));
  }
  BROPT_UNREACHABLE("unknown operand kind");
}

std::string blockRef(const BasicBlock *B) {
  if (!B)
    return "<null>";
  return B->getLabel();
}

} // namespace

std::string bropt::printInstruction(const Instruction &I) {
  switch (I.getKind()) {
  case InstKind::Move: {
    const auto &Move = *cast<MoveInst>(&I);
    return formatString("mov r%u, %s", Move.getDest(),
                        printOperand(Move.getSrc()).c_str());
  }
  case InstKind::Binary: {
    const auto &Bin = *cast<BinaryInst>(&I);
    return formatString("%s r%u, %s, %s", binaryOpName(Bin.getOp()),
                        Bin.getDest(), printOperand(Bin.getLhs()).c_str(),
                        printOperand(Bin.getRhs()).c_str());
  }
  case InstKind::Unary: {
    const auto &Un = *cast<UnaryInst>(&I);
    return formatString("%s r%u, %s", unaryOpName(Un.getOp()), Un.getDest(),
                        printOperand(Un.getSrc()).c_str());
  }
  case InstKind::Load: {
    const auto &Load = *cast<LoadInst>(&I);
    return formatString("ld r%u, [%s + %lld]", Load.getDest(),
                        printOperand(Load.getBase()).c_str(),
                        static_cast<long long>(Load.getOffset()));
  }
  case InstKind::Store: {
    const auto &Store = *cast<StoreInst>(&I);
    return formatString("st %s, [%s + %lld]",
                        printOperand(Store.getValue()).c_str(),
                        printOperand(Store.getBase()).c_str(),
                        static_cast<long long>(Store.getOffset()));
  }
  case InstKind::Cmp: {
    const auto &Cmp = *cast<CmpInst>(&I);
    return formatString("cmp %s, %s", printOperand(Cmp.getLhs()).c_str(),
                        printOperand(Cmp.getRhs()).c_str());
  }
  case InstKind::Call: {
    const auto &Call = *cast<CallInst>(&I);
    std::string Text;
    if (Call.getDef())
      Text = formatString("call r%u, %s(", *Call.getDef(),
                          Call.getCallee()->getName().c_str());
    else
      Text = formatString("call %s(", Call.getCallee()->getName().c_str());
    for (size_t Index = 0; Index < Call.getArgs().size(); ++Index) {
      if (Index)
        Text += ", ";
      Text += printOperand(Call.getArgs()[Index]);
    }
    Text += ")";
    return Text;
  }
  case InstKind::ReadChar:
    return formatString("readc r%u", cast<ReadCharInst>(&I)->getDest());
  case InstKind::PutChar:
    return formatString("putc %s",
                        printOperand(cast<PutCharInst>(&I)->getSrc()).c_str());
  case InstKind::PrintInt:
    return formatString(
        "printi %s", printOperand(cast<PrintIntInst>(&I)->getSrc()).c_str());
  case InstKind::Profile: {
    const auto &Prof = *cast<ProfileInst>(&I);
    return formatString("profile seq%u, r%u", Prof.getSequenceId(),
                        Prof.getValueReg());
  }
  case InstKind::ComboProfile: {
    const auto &Prof = *cast<ComboProfileInst>(&I);
    std::string Text = formatString("comboprofile seq%u, [",
                                    Prof.getSequenceId());
    for (size_t Index = 0; Index < Prof.getConditions().size(); ++Index) {
      const auto &Cond = Prof.getConditions()[Index];
      if (Index)
        Text += ", ";
      Text += formatString("%s %s %s", printOperand(Cond.Lhs).c_str(),
                           condCodeName(Cond.Pred),
                           printOperand(Cond.Rhs).c_str());
    }
    return Text + "]";
  }
  case InstKind::CondBr: {
    const auto &Br = *cast<CondBrInst>(&I);
    return formatString("br.%s %s, fall %s", condCodeName(Br.getPred()),
                        blockRef(Br.getTaken()).c_str(),
                        blockRef(Br.getFallThrough()).c_str());
  }
  case InstKind::Jump: {
    const auto *Jump = cast<JumpInst>(&I);
    return formatString("%s %s", Jump->isFallThrough() ? "fall" : "jmp",
                        blockRef(Jump->getTarget()).c_str());
  }
  case InstKind::Switch: {
    const auto &Sw = *cast<SwitchInst>(&I);
    std::string Text =
        formatString("switch %s [", printOperand(Sw.getValue()).c_str());
    for (size_t Index = 0; Index < Sw.getCases().size(); ++Index) {
      if (Index)
        Text += ", ";
      Text += formatString(
          "%lld -> %s", static_cast<long long>(Sw.getCases()[Index].Value),
          blockRef(Sw.getCases()[Index].Target).c_str());
    }
    Text += formatString("], default %s", blockRef(Sw.getDefault()).c_str());
    return Text;
  }
  case InstKind::IndirectJump: {
    const auto &Ind = *cast<IndirectJumpInst>(&I);
    std::string Text =
        formatString("ijmp %s, [", printOperand(Ind.getIndex()).c_str());
    for (size_t Index = 0; Index < Ind.getTable().size(); ++Index) {
      if (Index)
        Text += ", ";
      Text += blockRef(Ind.getTable()[Index]);
    }
    Text += "]";
    return Text;
  }
  case InstKind::Ret: {
    const auto &Ret = *cast<RetInst>(&I);
    if (!Ret.hasValue())
      return "ret";
    return formatString("ret %s", printOperand(Ret.getValue()).c_str());
  }
  }
  BROPT_UNREACHABLE("unknown instruction kind");
}

std::string Instruction::toString() const { return printInstruction(*this); }

std::string bropt::printBlock(const BasicBlock &B) {
  std::string Text = B.getLabel() + ":\n";
  for (const auto &Inst : B)
    Text += "  " + printInstruction(*Inst) + "\n";
  return Text;
}

std::string BasicBlock::toString() const { return printBlock(*this); }

std::string bropt::printFunction(const Function &F) {
  std::string Text = formatString("func %s(%u params, %u regs) {\n",
                                  F.getName().c_str(), F.getNumParams(),
                                  F.getNumRegs());
  for (const auto &Block : F)
    Text += printBlock(*Block);
  Text += "}\n";
  return Text;
}

std::string Function::toString() const { return printFunction(*this); }

std::string bropt::printModule(const Module &M) {
  std::string Text;
  for (const auto &Global : M.globals()) {
    Text += formatString("global %s: %u words @ %u", Global->Name.c_str(),
                         Global->NumWords, Global->BaseAddress);
    if (!Global->Init.empty()) {
      Text += " = [";
      for (size_t Index = 0; Index < Global->Init.size(); ++Index) {
        if (Index)
          Text += ", ";
        Text += formatString(
            "%lld", static_cast<long long>(Global->Init[Index]));
      }
      Text += "]";
    }
    Text += "\n";
  }
  for (const auto &F : M)
    Text += printFunction(*F);
  return Text;
}

std::string Module::toString() const { return printModule(*this); }
