//===- predict/Predictor.h - The branch-predictor interface -----*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one interface every predictor in the zoo (docs/PREDICT.md) stands
/// behind.  The execution engines feed each executed conditional branch to
/// observe(), which handles the bookkeeping every scheme shares — running
/// statistics plus optional per-branch misprediction records — and defers
/// the actual predict-and-train step to the scheme via one virtual call.
///
/// Per-branch records are the raw material of the Misprediction profile
/// plane (profile/MispredictProfile.h): (mispredicts, taken, executions)
/// per static branch id, from which the driver calibrates the analytic
/// misprediction rate the cost layer prices orderings with
/// (cost/BranchCostModel.h).  Recording is off by default — the hot
/// measurement loops should not pay for a vector index unless a profile
/// pass asked for it.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_PREDICT_PREDICTOR_H
#define BROPT_PREDICT_PREDICTOR_H

#include <cstdint>
#include <vector>

namespace bropt {

/// Running misprediction statistics.
struct PredictorStats {
  uint64_t Branches = 0;
  uint64_t Mispredictions = 0;

  double mispredictionRate() const {
    return Branches ? static_cast<double>(Mispredictions) /
                          static_cast<double>(Branches)
                    : 0.0;
  }
};

/// Per-static-branch outcome record, indexed by the engine's stable branch
/// id (sim/Interpreter.h: branchIdOf).
struct BranchRecord {
  uint64_t Mispredicts = 0;
  uint64_t Taken = 0;
  uint64_t Executions = 0;
};

/// Abstract branch predictor.  Concrete schemes implement predictAndTrain
/// (and resetState); everything else — stats, records, reset — is shared.
class Predictor {
public:
  virtual ~Predictor();

  /// Short scheme name, stable across runs ("paper", "tage", ...); the
  /// zoo registry (predict/Zoo.h) and the Misprediction plane signatures
  /// key on it.
  virtual const char *name() const = 0;

  /// Records the outcome of one executed conditional branch.
  /// \p BranchId identifies the static branch (stands in for its address).
  /// \returns true if the prediction was correct.
  ///
  /// Defined inline: the interpreter calls this once per executed branch,
  /// which makes an extra out-of-line hop measurable on branchy programs;
  /// only the scheme-specific step pays a virtual call.
  bool observe(uint32_t BranchId, bool Taken) {
    bool Correct = predictAndTrain(BranchId, Taken) == Taken;
    ++Stats.Branches;
    Stats.Mispredictions += !Correct;
    if (Recording) {
      if (BranchId >= Records.size())
        Records.resize(BranchId + 1);
      BranchRecord &R = Records[BranchId];
      ++R.Executions;
      R.Taken += Taken;
      R.Mispredicts += !Correct;
    }
    return Correct;
  }

  const PredictorStats &getStats() const { return Stats; }

  /// Turns on per-branch record keeping (profile passes only).
  void enableBranchRecords() { Recording = true; }

  /// The per-branch records collected so far; indexed by branch id, and
  /// only as long as the highest id observed.  Empty unless
  /// enableBranchRecords() was called.
  const std::vector<BranchRecord> &branchRecords() const { return Records; }

  /// Clears all learned state, history, statistics, and records.  After a
  /// reset the predictor is indistinguishable from a newly constructed
  /// one — the leak-isolation contract the Evaluator and broptd tests pin.
  void reset() {
    Stats = PredictorStats();
    Records.clear();
    resetState();
  }

protected:
  /// Predicts branch \p BranchId, trains on the actual \p Taken outcome,
  /// and \returns the direction that was predicted.
  virtual bool predictAndTrain(uint32_t BranchId, bool Taken) = 0;

  /// Restores the scheme's tables and histories to the cold state.
  virtual void resetState() = 0;

private:
  PredictorStats Stats;
  std::vector<BranchRecord> Records;
  bool Recording = false;
};

} // namespace bropt

#endif // BROPT_PREDICT_PREDICTOR_H
