//===- predict/BranchPredictor.cpp - (m,n) branch predictors -------------===//

#include "predict/BranchPredictor.h"

#include <cassert>

using namespace bropt;

BranchPredictor::BranchPredictor(PredictorConfig Config, const char *Name)
    : Config(Config), SchemeName(Name) {
  assert(Config.NumEntries > 0 &&
         (Config.NumEntries & (Config.NumEntries - 1)) == 0 &&
         "table size must be a power of two");
  assert(Config.CounterBits >= 1 && Config.CounterBits <= 8 &&
         "counter width out of range");
  assert(Config.HistoryBits <= 16 && "history width out of range");
  CounterMax = static_cast<uint8_t>((1u << Config.CounterBits) - 1);
  NotTakenThreshold = static_cast<uint8_t>(1u << (Config.CounterBits - 1));
  // Static dispatch in a constructor: resolves to this class's override,
  // which is the one we want.
  resetState();
}

void BranchPredictor::resetState() {
  // Initialize to the weakest not-taken state, the conventional cold start.
  Counters.assign(Config.NumEntries,
                  static_cast<uint8_t>(NotTakenThreshold - 1));
  History = 0;
}
