//===- predict/BranchPredictor.cpp - (m,n) branch predictors -------------===//

#include "predict/BranchPredictor.h"

#include <cassert>

using namespace bropt;

BranchPredictor::BranchPredictor(PredictorConfig Config) : Config(Config) {
  assert(Config.NumEntries > 0 &&
         (Config.NumEntries & (Config.NumEntries - 1)) == 0 &&
         "table size must be a power of two");
  assert(Config.CounterBits >= 1 && Config.CounterBits <= 8 &&
         "counter width out of range");
  assert(Config.HistoryBits <= 16 && "history width out of range");
  CounterMax = static_cast<uint8_t>((1u << Config.CounterBits) - 1);
  NotTakenThreshold = static_cast<uint8_t>(1u << (Config.CounterBits - 1));
  reset();
}

void BranchPredictor::reset() {
  // Initialize to the weakest not-taken state, the conventional cold start.
  Counters.assign(Config.NumEntries,
                  static_cast<uint8_t>(NotTakenThreshold - 1));
  History = 0;
  Stats = PredictorStats();
}

unsigned BranchPredictor::indexFor(uint32_t BranchId) const {
  // Branch ids stand in for instruction addresses.  Real branches are
  // scattered through the text segment, so small tables see conflicts;
  // a multiplicative (Fibonacci) hash reproduces that aliasing behaviour
  // instead of letting dense ids map conflict-free into any table.
  uint32_t Spread = BranchId * 2654435761u;
  uint32_t HistoryMask = (Config.HistoryBits >= 32)
                             ? ~0u
                             : ((1u << Config.HistoryBits) - 1);
  uint32_t Index = (Spread >> 16) ^ (History & HistoryMask);
  return Index & (Config.NumEntries - 1);
}

bool BranchPredictor::observe(uint32_t BranchId, bool Taken) {
  unsigned Index = indexFor(BranchId);
  uint8_t &Counter = Counters[Index];
  bool Predicted = Counter >= NotTakenThreshold;
  bool Correct = Predicted == Taken;

  ++Stats.Branches;
  if (!Correct)
    ++Stats.Mispredictions;

  if (Taken) {
    if (Counter < CounterMax)
      ++Counter;
  } else if (Counter > 0) {
    --Counter;
  }
  if (Config.HistoryBits > 0)
    History = (History << 1) | (Taken ? 1u : 0u);
  return Correct;
}
