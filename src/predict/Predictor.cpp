//===- predict/Predictor.cpp - The branch-predictor interface -------------===//

#include "predict/Predictor.h"

using namespace bropt;

// Out-of-line key function: anchors the vtable.
Predictor::~Predictor() = default;
