//===- predict/Zoo.cpp - The branch-predictor zoo -------------------------===//

#include "predict/Zoo.h"

#include "predict/BranchPredictor.h"

#include <cassert>

using namespace bropt;

// --- TwoBitPredictor -----------------------------------------------------

bool TwoBitPredictor::predictAndTrain(uint32_t BranchId, bool Taken) {
  if (BranchId >= Counters.size())
    Counters.resize(BranchId + 1, 1); // weakly not-taken cold state
  uint8_t &Counter = Counters[BranchId];
  bool Predicted = Counter >= 2;
  if (Taken) {
    if (Counter < 3)
      ++Counter;
  } else if (Counter > 0) {
    --Counter;
  }
  return Predicted;
}

// --- LocalTwoLevelPredictor ----------------------------------------------

LocalTwoLevelPredictor::LocalTwoLevelPredictor(unsigned HistoryBits,
                                               unsigned TableEntries)
    : HistoryBits(HistoryBits), TableEntries(TableEntries) {
  assert(TableEntries > 0 && (TableEntries & (TableEntries - 1)) == 0 &&
         "table size must be a power of two");
  assert(HistoryBits <= 16 && "history width out of range");
  resetState();
}

void LocalTwoLevelPredictor::resetState() {
  Histories.clear();
  Counters.assign(TableEntries, 1); // weakly not-taken
}

bool LocalTwoLevelPredictor::predictAndTrain(uint32_t BranchId, bool Taken) {
  if (BranchId >= Histories.size())
    Histories.resize(BranchId + 1, 0);
  uint16_t &History = Histories[BranchId];
  uint32_t HistoryMask = (1u << HistoryBits) - 1;
  uint32_t Spread = BranchId * 2654435761u;
  uint32_t Index =
      ((Spread >> 16) ^ (History & HistoryMask)) & (TableEntries - 1);
  uint8_t &Counter = Counters[Index];
  bool Predicted = Counter >= 2;
  if (Taken) {
    if (Counter < 3)
      ++Counter;
  } else if (Counter > 0) {
    --Counter;
  }
  History = static_cast<uint16_t>(((History << 1) | (Taken ? 1u : 0u)) &
                                  HistoryMask);
  return Predicted;
}

// --- TagePredictor -------------------------------------------------------

TagePredictor::TagePredictor(Config C, const char *Name)
    : C(std::move(C)), SchemeName(Name) {
  assert(!this->C.HistoryLengths.empty() && "TAGE needs >= 1 component");
  resetState();
}

void TagePredictor::resetState() {
  Components.assign(C.HistoryLengths.size(),
                    std::vector<Entry>(size_t{1} << C.LogEntries));
  Base.assign(size_t{1} << C.LogBaseEntries, 1); // weakly not-taken
  History = 0;
}

uint64_t TagePredictor::foldedHistory(unsigned Bits, unsigned FoldTo) const {
  uint64_t Mask = Bits >= 64 ? ~0ull : ((1ull << Bits) - 1);
  uint64_t H = History & Mask;
  uint64_t Folded = 0;
  for (unsigned Shift = 0; Shift < Bits; Shift += FoldTo)
    Folded ^= (H >> Shift);
  return Folded & ((1ull << FoldTo) - 1);
}

uint32_t TagePredictor::indexFor(uint32_t BranchId,
                                 unsigned Component) const {
  uint64_t Spread = static_cast<uint64_t>(BranchId) * 2654435761u;
  uint64_t H = foldedHistory(C.HistoryLengths[Component], C.LogEntries);
  return static_cast<uint32_t>(((Spread >> 16) ^ H ^ (Component * 0x9e37u)) &
                               ((1u << C.LogEntries) - 1));
}

uint16_t TagePredictor::tagFor(uint32_t BranchId, unsigned Component) const {
  uint64_t Spread = static_cast<uint64_t>(BranchId) * 0x85ebca6bull;
  uint64_t H = foldedHistory(C.HistoryLengths[Component], C.TagBits);
  return static_cast<uint16_t>(((Spread >> 13) ^ (H << 1) ^ Component) &
                               ((1u << C.TagBits) - 1));
}

bool TagePredictor::predictAndTrain(uint32_t BranchId, bool Taken) {
  const unsigned NumComponents =
      static_cast<unsigned>(C.HistoryLengths.size());

  // Find the provider (longest matching component) and its alternate.
  int Provider = -1, Alt = -1;
  for (int Component = static_cast<int>(NumComponents) - 1; Component >= 0;
       --Component) {
    unsigned U = static_cast<unsigned>(Component);
    if (Components[U][indexFor(BranchId, U)].Tag == tagFor(BranchId, U)) {
      if (Provider < 0)
        Provider = Component;
      else {
        Alt = Component;
        break;
      }
    }
  }

  uint32_t BaseIndex = (BranchId * 2654435761u >> 16) &
                       ((1u << C.LogBaseEntries) - 1);
  bool BasePred = Base[BaseIndex] >= 2;
  auto componentPred = [&](int Component) {
    unsigned U = static_cast<unsigned>(Component);
    return Components[U][indexFor(BranchId, U)].Ctr >= 0;
  };
  bool AltPred = Alt >= 0 ? componentPred(Alt) : BasePred;
  bool Predicted = Provider >= 0 ? componentPred(Provider) : BasePred;

  // --- train ---
  if (Provider >= 0) {
    unsigned U = static_cast<unsigned>(Provider);
    Entry &E = Components[U][indexFor(BranchId, U)];
    if (Taken ? E.Ctr < 3 : E.Ctr > -4)
      E.Ctr += Taken ? 1 : -1;
    // Usefulness: the provider disagreed with the alternate and was right.
    if (Predicted != AltPred) {
      if (Predicted == Taken) {
        if (E.Useful < 3)
          ++E.Useful;
      } else if (E.Useful > 0) {
        --E.Useful;
      }
    }
  } else {
    uint8_t &Counter = Base[BaseIndex];
    if (Taken) {
      if (Counter < 3)
        ++Counter;
    } else if (Counter > 0) {
      --Counter;
    }
  }

  // On a mispredict, allocate in one longer-history component: the first
  // with a dead (useful == 0) slot; decay the ones we skipped so stubborn
  // entries eventually free up.  Deterministic by construction.
  if (Predicted != Taken && Provider < static_cast<int>(NumComponents) - 1) {
    bool Allocated = false;
    for (unsigned Component = static_cast<unsigned>(Provider + 1);
         Component < NumComponents && !Allocated; ++Component) {
      Entry &E = Components[Component][indexFor(BranchId, Component)];
      if (E.Useful == 0) {
        E.Tag = tagFor(BranchId, Component);
        E.Ctr = Taken ? 0 : -1; // weak in the observed direction
        Allocated = true;
      } else {
        --E.Useful;
      }
    }
  }

  History = (History << 1) | (Taken ? 1u : 0u);
  return Predicted;
}

// --- Registry ------------------------------------------------------------

const std::vector<std::string> &bropt::predictorZooNames() {
  static const std::vector<std::string> Names = {
      "paper", "gshare", "twobit", "local", "tage", "tage-poor"};
  return Names;
}

std::unique_ptr<Predictor> bropt::makePredictor(std::string_view Name) {
  if (Name == "paper")
    return std::make_unique<BranchPredictor>(PredictorConfig::ultraSparc(),
                                             "paper");
  if (Name == "gshare")
    return std::make_unique<BranchPredictor>(PredictorConfig{8, 2, 2048},
                                             "gshare");
  if (Name == "twobit")
    return std::make_unique<TwoBitPredictor>();
  if (Name == "local")
    return std::make_unique<LocalTwoLevelPredictor>();
  if (Name == "tage")
    return std::make_unique<TagePredictor>(TagePredictor::Config::good(),
                                           "tage");
  if (Name == "tage-poor")
    return std::make_unique<TagePredictor>(TagePredictor::Config::poor(),
                                           "tage-poor");
  return nullptr;
}
