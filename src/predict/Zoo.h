//===- predict/Zoo.h - The branch-predictor zoo -----------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predictor zoo (docs/PREDICT.md): every prediction scheme the
/// Tables 5-6 harness sweeps and the cost layer can be calibrated against,
/// behind the one Predictor interface.  The registry names are stable —
/// they key `broptc --predictor`, the Misprediction plane signatures, and
/// the `predictors` section of BENCH_engine.json:
///
///   paper      (0,2) per-address, 2048 entries — the paper's Table 5 HW
///   gshare     (8,2) global-history gshare, 2048 entries
///   twobit     unaliased per-branch 2-bit saturating counters
///   local      per-branch 10-bit local history over a shared 2-bit table
///   tage       a well-provisioned TAGE: bimodal base + 4 tagged
///              geometric-history components
///   tage-poor  a starved TAGE (2 tiny components, short histories) — the
///              deliberately bad end of the sweep
///
/// All schemes are deterministic: same branch trace in, same predictions
/// out, on every platform.  That keeps differential tests and cached
/// evaluations reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_PREDICT_ZOO_H
#define BROPT_PREDICT_ZOO_H

#include "predict/Predictor.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace bropt {

/// Unaliased per-branch 2-bit saturating counters: the classic Smith
/// predictor with an unbounded table, so it shows pure per-branch bias
/// with no interference.  Its steady-state miss rate on a branch taken
/// with probability t is the minority share min(t, 1-t) — exactly the
/// analytic model cost/BranchCostModel.h prices with at quality 1.0.
class TwoBitPredictor : public Predictor {
public:
  const char *name() const override { return "twobit"; }

protected:
  bool predictAndTrain(uint32_t BranchId, bool Taken) override;
  void resetState() override { Counters.clear(); }

private:
  std::vector<uint8_t> Counters; ///< grown on demand, weakly-not-taken cold
};

/// Per-branch local-history two-level predictor (Yeh/Patt PAg shape): each
/// static branch keeps its own history register; a shared table of 2-bit
/// counters is indexed by the branch hash XORed with its local history, so
/// per-branch periodic patterns become learnable without global-history
/// pollution.
class LocalTwoLevelPredictor : public Predictor {
public:
  explicit LocalTwoLevelPredictor(unsigned HistoryBits = 10,
                                  unsigned TableEntries = 4096);

  const char *name() const override { return "local"; }

protected:
  bool predictAndTrain(uint32_t BranchId, bool Taken) override;
  void resetState() override;

private:
  unsigned HistoryBits;
  unsigned TableEntries; ///< power of two
  std::vector<uint16_t> Histories; ///< per branch id, grown on demand
  std::vector<uint8_t> Counters;
};

/// A compact TAGE (TAgged GEometric history lengths) predictor: a bimodal
/// base table plus tagged components indexed by geometrically increasing
/// global history lengths.  The longest matching component provides the
/// prediction; on a mispredict an entry is allocated in a longer
/// component.  Fully deterministic — allocation arbitration uses the
/// useful counters, never randomness.
class TagePredictor : public Predictor {
public:
  struct Config {
    /// Per-component log2 table size; component i uses HistoryLengths[i]
    /// bits of global history.  Sizes are shared across components.
    unsigned LogEntries = 10;
    std::vector<unsigned> HistoryLengths = {4, 8, 16, 32};
    unsigned TagBits = 8;
    unsigned LogBaseEntries = 12; ///< bimodal base table

    /// The well-provisioned end of the zoo.
    static Config good() { return {}; }
    /// The starved end: two tiny, short-history components.
    static Config poor() {
      Config C;
      C.LogEntries = 5;
      C.HistoryLengths = {2, 4};
      C.TagBits = 4;
      C.LogBaseEntries = 6;
      return C;
    }
  };

  explicit TagePredictor(Config C, const char *Name = "tage");

  const char *name() const override { return SchemeName; }

protected:
  bool predictAndTrain(uint32_t BranchId, bool Taken) override;
  void resetState() override;

private:
  struct Entry {
    int8_t Ctr = 0;     ///< 3-bit signed prediction counter, >= 0 = taken
    uint16_t Tag = 0;
    uint8_t Useful = 0; ///< 2-bit usefulness
  };

  uint32_t indexFor(uint32_t BranchId, unsigned Component) const;
  uint16_t tagFor(uint32_t BranchId, unsigned Component) const;
  uint64_t foldedHistory(unsigned Bits, unsigned FoldTo) const;

  Config C;
  const char *SchemeName;
  std::vector<std::vector<Entry>> Components;
  std::vector<uint8_t> Base; ///< 2-bit bimodal counters
  uint64_t History = 0;
};

/// \returns the zoo member registered under \p Name, or null for an
/// unknown name.  Every call builds a fresh, cold predictor — callers own
/// isolation (one instance per measurement, never shared across requests).
std::unique_ptr<Predictor> makePredictor(std::string_view Name);

/// The stable registry names, in sweep order.
const std::vector<std::string> &predictorZooNames();

} // namespace bropt

#endif // BROPT_PREDICT_ZOO_H
