//===- predict/BranchPredictor.h - (m,n) branch predictors ------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Yeh/Patt-style (m,n) two-level branch predictor simulator.  The paper
/// evaluates reordering under the SPARC Ultra I's (0,2) predictor with 2048
/// entries (Table 5) and sweeps (0,1) and (0,2) predictors over table sizes
/// 32..2048 (Table 6).
///
/// An (m,n) predictor keeps m bits of global branch history; the table of
/// n-bit saturating counters is indexed by the branch address XORed with the
/// history (gshare indexing; with m = 0 this degenerates to the paper's
/// per-address scheme).
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_PREDICT_BRANCHPREDICTOR_H
#define BROPT_PREDICT_BRANCHPREDICTOR_H

#include <cstdint>
#include <vector>

namespace bropt {

/// Static configuration of an (m,n) predictor.
struct PredictorConfig {
  unsigned HistoryBits = 0;  ///< m: bits of global history
  unsigned CounterBits = 2;  ///< n: width of each saturating counter
  unsigned NumEntries = 2048; ///< table size; must be a power of two

  /// The paper's Table 5 configuration: (0,2) with 2048 entries.
  static PredictorConfig ultraSparc() { return {0, 2, 2048}; }
};

/// Running misprediction statistics.
struct PredictorStats {
  uint64_t Branches = 0;
  uint64_t Mispredictions = 0;

  double mispredictionRate() const {
    return Branches ? static_cast<double>(Mispredictions) /
                          static_cast<double>(Branches)
                    : 0.0;
  }
};

/// Simulates one (m,n) predictor.
class BranchPredictor {
public:
  explicit BranchPredictor(PredictorConfig Config);

  const PredictorConfig &getConfig() const { return Config; }
  const PredictorStats &getStats() const { return Stats; }

  /// Records the outcome of one executed conditional branch.
  /// \p BranchId identifies the static branch (stands in for its address).
  /// \returns true if the prediction was correct.
  ///
  /// Defined inline: the interpreter calls this once per executed branch,
  /// which makes an out-of-line call measurable on branchy programs.
  bool observe(uint32_t BranchId, bool Taken) {
    unsigned Index = indexFor(BranchId);
    uint8_t &Counter = Counters[Index];
    bool Predicted = Counter >= NotTakenThreshold;
    bool Correct = Predicted == Taken;

    ++Stats.Branches;
    Stats.Mispredictions += !Correct;
    int Delta = Taken ? (Counter < CounterMax) : -(Counter > 0);
    Counter = static_cast<uint8_t>(Counter + Delta);
    History = (History << 1) | (Taken ? 1u : 0u);
    return Correct;
  }

  /// Clears the table, history, and statistics.
  void reset();

private:
  unsigned indexFor(uint32_t BranchId) const {
    // Branch ids stand in for instruction addresses.  Real branches are
    // scattered through the text segment, so small tables see conflicts;
    // a multiplicative (Fibonacci) hash reproduces that aliasing behaviour
    // instead of letting dense ids map conflict-free into any table.
    uint32_t Spread = BranchId * 2654435761u;
    uint32_t HistoryMask = (Config.HistoryBits >= 32)
                               ? ~0u
                               : ((1u << Config.HistoryBits) - 1);
    uint32_t Index = (Spread >> 16) ^ (History & HistoryMask);
    return Index & (Config.NumEntries - 1);
  }

  PredictorConfig Config;
  PredictorStats Stats;
  std::vector<uint8_t> Counters;
  uint32_t History = 0;
  uint8_t CounterMax;
  uint8_t NotTakenThreshold;
};

} // namespace bropt

#endif // BROPT_PREDICT_BRANCHPREDICTOR_H
