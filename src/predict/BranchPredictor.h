//===- predict/BranchPredictor.h - (m,n) branch predictors ------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Yeh/Patt-style (m,n) two-level branch predictor simulator.  The paper
/// evaluates reordering under the SPARC Ultra I's (0,2) predictor with 2048
/// entries (Table 5) and sweeps (0,1) and (0,2) predictors over table sizes
/// 32..2048 (Table 6).
///
/// An (m,n) predictor keeps m bits of global branch history; the table of
/// n-bit saturating counters is indexed by the branch address XORed with the
/// history (gshare indexing; with m = 0 this degenerates to the paper's
/// per-address scheme).
///
/// One member of the predictor zoo (predict/Zoo.h, docs/PREDICT.md); the
/// shared observe()/stats/records machinery lives in predict/Predictor.h.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_PREDICT_BRANCHPREDICTOR_H
#define BROPT_PREDICT_BRANCHPREDICTOR_H

#include "predict/Predictor.h"

#include <cstdint>
#include <vector>

namespace bropt {

/// Static configuration of an (m,n) predictor.
struct PredictorConfig {
  unsigned HistoryBits = 0;  ///< m: bits of global history
  unsigned CounterBits = 2;  ///< n: width of each saturating counter
  unsigned NumEntries = 2048; ///< table size; must be a power of two

  /// The paper's Table 5 configuration: (0,2) with 2048 entries.
  static PredictorConfig ultraSparc() { return {0, 2, 2048}; }
};

/// Simulates one (m,n) predictor.
class BranchPredictor : public Predictor {
public:
  /// \p Name is the zoo-registry name reported by name(); the default
  /// covers direct construction outside the registry.
  explicit BranchPredictor(PredictorConfig Config,
                           const char *Name = "gshare");

  const PredictorConfig &getConfig() const { return Config; }
  const char *name() const override { return SchemeName; }

protected:
  bool predictAndTrain(uint32_t BranchId, bool Taken) override {
    unsigned Index = indexFor(BranchId);
    uint8_t &Counter = Counters[Index];
    bool Predicted = Counter >= NotTakenThreshold;

    int Delta = Taken ? (Counter < CounterMax) : -(Counter > 0);
    Counter = static_cast<uint8_t>(Counter + Delta);
    History = (History << 1) | (Taken ? 1u : 0u);
    return Predicted;
  }

  void resetState() override;

private:
  unsigned indexFor(uint32_t BranchId) const {
    // Branch ids stand in for instruction addresses.  Real branches are
    // scattered through the text segment, so small tables see conflicts;
    // a multiplicative (Fibonacci) hash reproduces that aliasing behaviour
    // instead of letting dense ids map conflict-free into any table.
    uint32_t Spread = BranchId * 2654435761u;
    uint32_t HistoryMask = (Config.HistoryBits >= 32)
                               ? ~0u
                               : ((1u << Config.HistoryBits) - 1);
    uint32_t Index = (Spread >> 16) ^ (History & HistoryMask);
    return Index & (Config.NumEntries - 1);
  }

  PredictorConfig Config;
  const char *SchemeName;
  std::vector<uint8_t> Counters;
  uint32_t History = 0;
  uint8_t CounterMax;
  uint8_t NotTakenThreshold;
};

} // namespace bropt

#endif // BROPT_PREDICT_BRANCHPREDICTOR_H
