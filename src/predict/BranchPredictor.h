//===- predict/BranchPredictor.h - (m,n) branch predictors ------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Yeh/Patt-style (m,n) two-level branch predictor simulator.  The paper
/// evaluates reordering under the SPARC Ultra I's (0,2) predictor with 2048
/// entries (Table 5) and sweeps (0,1) and (0,2) predictors over table sizes
/// 32..2048 (Table 6).
///
/// An (m,n) predictor keeps m bits of global branch history; the table of
/// n-bit saturating counters is indexed by the branch address XORed with the
/// history (gshare indexing; with m = 0 this degenerates to the paper's
/// per-address scheme).
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_PREDICT_BRANCHPREDICTOR_H
#define BROPT_PREDICT_BRANCHPREDICTOR_H

#include <cstdint>
#include <vector>

namespace bropt {

/// Static configuration of an (m,n) predictor.
struct PredictorConfig {
  unsigned HistoryBits = 0;  ///< m: bits of global history
  unsigned CounterBits = 2;  ///< n: width of each saturating counter
  unsigned NumEntries = 2048; ///< table size; must be a power of two

  /// The paper's Table 5 configuration: (0,2) with 2048 entries.
  static PredictorConfig ultraSparc() { return {0, 2, 2048}; }
};

/// Running misprediction statistics.
struct PredictorStats {
  uint64_t Branches = 0;
  uint64_t Mispredictions = 0;

  double mispredictionRate() const {
    return Branches ? static_cast<double>(Mispredictions) /
                          static_cast<double>(Branches)
                    : 0.0;
  }
};

/// Simulates one (m,n) predictor.
class BranchPredictor {
public:
  explicit BranchPredictor(PredictorConfig Config);

  const PredictorConfig &getConfig() const { return Config; }
  const PredictorStats &getStats() const { return Stats; }

  /// Records the outcome of one executed conditional branch.
  /// \p BranchId identifies the static branch (stands in for its address).
  /// \returns true if the prediction was correct.
  bool observe(uint32_t BranchId, bool Taken);

  /// Clears the table, history, and statistics.
  void reset();

private:
  unsigned indexFor(uint32_t BranchId) const;

  PredictorConfig Config;
  PredictorStats Stats;
  std::vector<uint8_t> Counters;
  uint32_t History = 0;
  uint8_t CounterMax;
  uint8_t NotTakenThreshold;
};

} // namespace bropt

#endif // BROPT_PREDICT_BRANCHPREDICTOR_H
