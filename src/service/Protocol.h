//===- service/Protocol.h - broptd wire protocol ----------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed request/response protocol `broptd` serves over its
/// Unix-domain socket (docs/SERVICE.md).  One message per frame:
///
///   [u32 little-endian payload length][payload]
///
/// where the payload is a one-byte message kind followed by kind-specific
/// fields encoded with LEB128 varints and length-prefixed strings (the
/// same primitives ProfileDB's binary format uses).  Framing errors are
/// survivable by design: a decoder failure on one frame produces an Error
/// response (or drops the one connection) without touching server state,
/// and an oversize length prefix is rejected before any allocation.
///
/// Requests carry a client-chosen sequence number that the matching
/// response echoes, so clients may pipeline several requests on one
/// connection and match responses as they drain back.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_SERVICE_PROTOCOL_H
#define BROPT_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

namespace bropt {

/// What a request asks the daemon to do.
enum class RequestKind : uint8_t {
  Compile = 0,       ///< compile a CompileSpec, cache the artifact
  Execute = 1,       ///< compile (or hit the cache) and run on an input
  Evaluate = 2,      ///< run a named standard workload through the
                     ///< Evaluator (baseline vs reordered deltas)
  ProfileExport = 3, ///< aggregated cross-shard profile for a program key
  ProfileMerge = 4,  ///< merge a client profile into the shards
  Stats = 5,         ///< service counters snapshot
  Shutdown = 6,      ///< begin graceful shutdown
};

const char *requestKindName(RequestKind Kind);

/// Everything a server-side compile depends on.  The program key — and
/// with it the artifact-cache identity — is a hash of these fields, so
/// two clients sending the same spec share one compiled artifact.
struct CompileSpec {
  std::string Source;
  /// Training inputs for a fresh pass-1 profile run (may be empty).
  std::vector<std::string> TrainingInputs;
  /// Serialized ProfileDB (text or binary) to feed pass 2 directly.
  std::string ProfileData;
  uint8_t HeuristicSet = 0; ///< 0..3 = Sets I..IV
  bool CommonSuccessor = false;
  bool MethodSelection = false;
  /// Merge the daemon's aggregated cross-tenant profile for this program
  /// into the pass-2 profile: traffic other clients already served
  /// warm-starts this compile (docs/SERVICE.md).
  bool WarmStart = false;
  /// Zoo name of the predictor the compile targets and execute requests
  /// measure under (predict/Zoo.h, docs/PREDICT.md).  Empty: prediction
  /// stays unmodeled.  Part of the program key — aware and unaware builds
  /// of one source are different programs to the profile shards.
  std::string Predictor;
};

/// One request frame.
struct ServiceRequest {
  RequestKind Kind = RequestKind::Stats;
  /// Echoed verbatim in the response for pipelining clients.
  uint64_t Seq = 0;
  CompileSpec Spec;        ///< Compile and Execute
  std::string Input;       ///< Execute: program stdin
  uint8_t Mode = 2;        ///< Execute: Interpreter::Mode numeric value
  uint64_t InstructionLimit = 2'000'000'000; ///< Execute fuel
  std::string WorkloadName; ///< Evaluate: standard workload name
  std::string ProgramKey;  ///< ProfileExport/ProfileMerge target
  std::string ProfileData; ///< ProfileMerge payload (serialized ProfileDB)
};

/// How the daemon disposed of a request.
enum class ResponseStatus : uint8_t {
  Ok = 0,
  Error = 1,        ///< request-level failure (compile error, bad key...)
  Rejected = 2,     ///< backpressure: admission queue past the high-water
                    ///< mark; retry after RetryAfterMillis
  ShuttingDown = 3, ///< daemon is draining; no new work is admitted
};

const char *responseStatusName(ResponseStatus Status);

/// Aggregate daemon counters, served by RequestKind::Stats.  Serialized
/// as a count-prefixed u64 array in field order, so old clients can read
/// new servers (extra fields ignored) and vice versa (missing fields stay
/// zero).  Every field is monotonic over the daemon's lifetime except the
/// Depth/Active gauges.
struct ServiceStats {
  uint64_t RequestsAccepted = 0;   ///< admitted onto the worker pool
  uint64_t RequestsCompleted = 0;  ///< responses written (Ok or Error)
  uint64_t RequestsRejected = 0;   ///< backpressure rejections
  uint64_t ProtocolErrors = 0;     ///< malformed/oversize frames survived
  uint64_t DroppedConnections = 0; ///< peers gone before their response
  uint64_t QueueDepth = 0;         ///< gauge: admitted, not yet completed
  uint64_t QueueHighWaterSeen = 0; ///< max QueueDepth observed
  uint64_t QueueWaitMicrosTotal = 0; ///< admission -> execution start
  uint64_t QueueWaitMicrosMax = 0;
  uint64_t CompileHits = 0;   ///< artifact cache hits
  uint64_t CompileMisses = 0; ///< artifact cache misses (fresh compiles)
  uint64_t ArtifactEvictions = 0; ///< LRU evictions from the artifact cache
  uint64_t ProfileMerges = 0;     ///< shard merges (client + learned)
  uint64_t ProfileMergeConflicts = 0; ///< records skipped by the conflict
                                      ///< checker across all shard merges
  uint64_t ProfileAggregations = 0;   ///< cross-shard aggregation passes
  uint64_t ProfileRecords = 0;    ///< gauge: records currently sharded
  uint64_t WarmStarts = 0;        ///< compiles seeded from the shards
  uint64_t LearnedExports = 0;    ///< adaptive profiles exported to shards
  uint64_t ActiveConnections = 0; ///< gauge
  uint64_t TierTwoCancellations = 0; ///< native compiles cancelled at drain

  /// Cumulative per-predictor measurement traffic across execute requests
  /// (one zoo entry per scheme that served at least one run).  Every run
  /// gets its own fresh instance — these aggregates are the only state
  /// that survives a request.
  struct PredictorUsage {
    std::string Name;
    uint64_t Runs = 0;
    uint64_t Branches = 0;
    uint64_t Mispredictions = 0;
  };
  std::vector<PredictorUsage> Zoo;
};

/// One response frame.
struct ServiceResponse {
  ResponseStatus Status = ResponseStatus::Ok;
  uint64_t Seq = 0;          ///< copied from the request
  std::string Error;         ///< non-empty when Status == Error
  uint32_t RetryAfterMillis = 0; ///< hint when Status == Rejected

  // Compile and Execute:
  std::string ProgramKey;  ///< stable artifact identity for this spec
  bool CompileCacheHit = false;
  bool WarmStarted = false; ///< the compile consumed sharded profile data
  uint32_t SequencesReordered = 0;
  uint64_t CodeSize = 0;

  // Execute:
  bool Trapped = false;
  std::string TrapReason;
  int64_t ExitValue = 0;
  std::string Output;
  uint64_t TotalInsts = 0;
  uint64_t CondBranches = 0;
  /// Filled when the spec names a predictor and an interpreter engine ran:
  /// what this run's fresh instance measured.
  uint64_t PredictedBranches = 0;
  uint64_t Mispredictions = 0;

  // Evaluate:
  double BranchDeltaPercent = 0.0; ///< reordered vs baseline branches
  bool OutputsMatch = false;

  // All kinds:
  uint64_t QueueMicros = 0; ///< time spent waiting for a worker

  // ProfileExport / ProfileMerge:
  std::string ProfileData; ///< export: serialized aggregate (binary)
  uint64_t MergeAdded = 0, MergeMerged = 0, MergeSkipped = 0;

  // Stats:
  ServiceStats Stats;

  bool ok() const { return Status == ResponseStatus::Ok; }
};

/// Frames larger than this are rejected before allocation; generous
/// enough for any workload source + profile, small enough that a garbage
/// length prefix cannot balloon the server.
constexpr uint32_t MaxServiceFrameBytes = 64u << 20;

/// Serializes \p Request / \p Response into a payload (no length prefix).
std::string encodeRequest(const ServiceRequest &Request);
std::string encodeResponse(const ServiceResponse &Response);

/// Parses a payload.  \returns false on malformed input with the reason
/// in \p Error; the out-param is left in an unspecified state.
bool decodeRequest(const std::string &Payload, ServiceRequest &Request,
                   std::string *Error = nullptr);
bool decodeResponse(const std::string &Payload, ServiceResponse &Response,
                    std::string *Error = nullptr);

/// Blocking frame I/O over a connected stream socket.  writeFrame sends
/// the u32 length prefix plus \p Payload (suppressing SIGPIPE);
/// readFrame reads exactly one frame, enforcing \p MaxBytes *before*
/// allocating.  \returns false on EOF, error, or an oversize frame, with
/// a reason in \p Error ("eof" for a clean close before any byte).
bool writeFrame(int Fd, const std::string &Payload,
                std::string *Error = nullptr);
bool readFrame(int Fd, std::string &Payload,
               uint32_t MaxBytes = MaxServiceFrameBytes,
               std::string *Error = nullptr);

/// Stable FNV-1a content hash used for program keys ("sha-like" hex).
std::string serviceContentHash(const std::string &Data);

/// The program key of \p Spec: a hash of the source and every
/// compilation-affecting knob *except* profile inputs — profiles refine
/// the ordering of one program, they do not change which program it is.
/// Cross-tenant profile aggregation shards by this key.
std::string programKeyFor(const CompileSpec &Spec);

/// The artifact key of \p Spec: the program key extended with the profile
/// inputs (training data, explicit profile, warm-start), i.e. module hash
/// + ordering signature.  Two specs with equal artifact keys compile to
/// identical modules, so the artifact cache may share one.
std::string artifactKeyFor(const CompileSpec &Spec);

} // namespace bropt

#endif // BROPT_SERVICE_PROTOCOL_H
