//===- service/Client.h - broptd client library -----------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client-side access to a running broptd: connect to the Unix-domain
/// socket, frame requests, match responses by sequence number.  Also
/// hosts InProcessService, the one-liner tests, the fuzz oracle, and the
/// service bench use to stand up a real daemon on a private socket
/// inside the current process — traffic still crosses the socket, so
/// what they exercise is the full wire path, not a shortcut.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_SERVICE_CLIENT_H
#define BROPT_SERVICE_CLIENT_H

#include "service/Protocol.h"
#include "service/Service.h"

#include <memory>
#include <string>

namespace bropt {

/// One connection to a broptd socket.  Safe for one thread at a time;
/// concurrent clients each hold their own.
class ServiceClient {
public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;

  bool connect(const std::string &SocketPath, std::string *Error = nullptr);
  /// connect(), retried until \p Seconds elapse — covers the race with a
  /// daemon that is still binding its socket.
  bool connectWithRetry(const std::string &SocketPath, double Seconds,
                        std::string *Error = nullptr);
  void close();
  bool connected() const { return Fd >= 0; }
  /// The raw socket, for fault injection (dropping a connection
  /// mid-request) and poll-based clients.
  int fd() const { return Fd; }

  /// Fire-and-forget framing, for pipelining callers that match
  /// responses themselves.  Sends \p Request verbatim (Seq included).
  bool send(const ServiceRequest &Request, std::string *Error = nullptr);
  bool receive(ServiceResponse &Response, std::string *Error = nullptr);

  /// Assigns the next sequence number, sends, and blocks for the
  /// response, verifying the echoed Seq.  \returns false on transport or
  /// protocol failure; request-level errors come back in \p Response.
  bool roundTrip(ServiceRequest Request, ServiceResponse &Response,
                 std::string *Error = nullptr);

  /// roundTrip(), honouring backpressure: on Rejected, sleeps the
  /// server's RetryAfterMillis hint and retries, up to \p MaxAttempts.
  /// \returns false when the transport failed or every attempt was
  /// rejected (\p Response then holds the last rejection).
  bool roundTripRetrying(const ServiceRequest &Request,
                         ServiceResponse &Response,
                         std::string *Error = nullptr,
                         unsigned MaxAttempts = 64);

private:
  int Fd = -1;
  uint64_t NextSeq = 1;
};

/// A real BroptService on a private, auto-generated socket path, started
/// in the constructor and drained in the destructor.
class InProcessService {
public:
  /// Starts the daemon; empty Options.SocketPath gets a unique temp
  /// path.  Check ok() before use.
  explicit InProcessService(ServiceOptions Options = {});
  ~InProcessService();

  bool ok() const { return Err.empty(); }
  const std::string &error() const { return Err; }
  BroptService &service() { return *Srv; }
  const std::string &socketPath() const { return Path; }

  /// A fresh connected client (nullptr when the connect failed).
  std::unique_ptr<ServiceClient> connect(std::string *Error = nullptr);

private:
  std::string Path;
  std::string Err;
  std::unique_ptr<BroptService> Srv;
};

} // namespace bropt

#endif // BROPT_SERVICE_CLIENT_H
