//===- service/Service.cpp - The broptd daemon ----------------------------===//

#include "service/Service.h"

#include "codegen/NativeRunner.h"
#include "driver/Driver.h"
#include "driver/Evaluator.h"
#include "exec/ExecBackend.h"
#include "predict/Zoo.h"
#include "sim/Decoded.h"
#include "sim/Fuse.h"
#include "support/Strings.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace bropt;

namespace bropt {

/// Everything the daemon caches for one artifact key: the compiled
/// module, the profile that built it, lazily prepared per-engine
/// programs, and the live adaptive controllers.  BuildMutex guards the
/// lazy pieces (first requester builds, the rest reuse); RunMutex
/// serializes adaptive-family runs, because one controller's sampler is
/// not reentrant.
struct ServiceArtifact {
  std::string ProgramKey;

  std::mutex BuildMutex;
  bool BuildDone = false;
  std::string BuildError;
  std::shared_ptr<const CompileResult> Compiled;
  /// The pass-2 profile (explicit + training + shard aggregate); also
  /// feeds the fused engine's arm ordering.
  ProfileDB Profile;
  bool HasProfile = false;
  bool WarmStarted = false;
  uint32_t SequencesReordered = 0;
  uint64_t CodeSize = 0;

  std::shared_ptr<const DecodedModule> Fused;
  std::shared_ptr<const DecodedModule> Decoded;
  std::shared_ptr<const NativeProgram> Native;
  std::string NativeError;
  bool NativeTried = false;

  std::mutex RunMutex;
  std::shared_ptr<AdaptiveController> Adaptive;
  std::shared_ptr<AdaptiveController> AdaptiveNative;
  /// Deployed ordering signature at the last shard export; learned
  /// profiles merge once per deployed version, never cumulatively.
  std::string LastExportedSig;
};

} // namespace bropt

namespace {

CompileOptions compileOptionsFor(const CompileSpec &Spec) {
  CompileOptions O;
  O.HeuristicSet = static_cast<SwitchHeuristicSet>(
      std::min<unsigned>(Spec.HeuristicSet, 3));
  O.EnableCommonSuccessorReordering = Spec.CommonSuccessor;
  O.Reorder.EnableMethodSelection = Spec.MethodSelection;
  O.Predictor = Spec.Predictor;
  return O;
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

bool profileNonEmpty(const ProfileDB &DB) {
  return DB.numSequences() != 0 || !DB.hotness().empty();
}

} // namespace

BroptService::Connection::~Connection() {
  if (Fd >= 0)
    ::close(Fd);
}

BroptService::BroptService(ServiceOptions Options)
    : Opts(std::move(Options)), Shards(Opts.ProfileShardCount),
      Artifacts(Opts.ArtifactCacheCapacity) {}

BroptService::~BroptService() {
  shutdown();
}

bool BroptService::start(std::string *Error) {
  auto fail = [&](const std::string &Why) {
    if (Error)
      *Error = Why;
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };
  if (Opts.SocketPath.empty())
    return fail("socket path required");
  sockaddr_un Addr{};
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path))
    return fail(formatString("socket path too long (%zu bytes, limit %zu)",
                             Opts.SocketPath.size(),
                             sizeof(Addr.sun_path) - 1));
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return fail(formatString("socket: %s", std::strerror(errno)));
  ::unlink(Opts.SocketPath.c_str());
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0)
    return fail(formatString("bind %s: %s", Opts.SocketPath.c_str(),
                             std::strerror(errno)));
  if (::listen(ListenFd, 128) < 0)
    return fail(formatString("listen: %s", std::strerror(errno)));

  Pool = std::make_unique<ThreadPool>(Opts.Threads);
  EvaluatorOptions EO;
  EO.Threads = 2; // evaluate requests are rare; keep the side pool small
  Eval = std::make_unique<Evaluator>(EO);
  Started.store(true, std::memory_order_release);
  Acceptor = std::thread([this] { acceptLoop(); });
  log(formatString("broptd listening on %s (%u workers, high-water %zu)",
                   Opts.SocketPath.c_str(), Pool->numThreads(),
                   Opts.QueueHighWater));
  return true;
}

void BroptService::wait() {
  std::unique_lock<std::mutex> Lock(StopMutex);
  StopCV.wait(Lock, [&] {
    return StopRequested.load(std::memory_order_acquire);
  });
}

void BroptService::requestStop() {
  StopRequested.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> Lock(StopMutex);
  }
  StopCV.notify_all();
}

bool BroptService::shutdown() {
  {
    std::unique_lock<std::mutex> Lock(StopMutex);
    if (ShutdownStarted) {
      StopCV.wait(Lock, [&] { return ShutdownDone; });
      return ShutdownClean;
    }
    ShutdownStarted = true;
  }
  requestStop();
  Stopping.store(true, std::memory_order_release);
  auto Start = std::chrono::steady_clock::now();
  bool Clean = true;

  if (Acceptor.joinable())
    Acceptor.join();

  // Drain admitted work.  New requests have been answered ShuttingDown
  // since the flag flipped, so the pool queue only shrinks.
  if (Pool)
    Clean = Pool->waitFor(std::max(Opts.DrainDeadlineSeconds, 0.1)) && Clean;

  // Drain every cached controller's background work within what is left
  // of the deadline; an in-flight tier-2 native compile that cannot
  // finish in time is cancelled (its compiler process group is killed).
  std::vector<std::shared_ptr<ServiceArtifact>> Live;
  {
    std::lock_guard<std::mutex> Lock(ArtifactMutex);
    for (auto &Entry : Artifacts)
      Live.push_back(Entry.second);
  }
  for (const std::shared_ptr<ServiceArtifact> &A : Live) {
    for (const std::shared_ptr<AdaptiveController> &Ctl :
         {A->Adaptive, A->AdaptiveNative}) {
      if (!Ctl)
        continue;
      double Remaining =
          std::max(Opts.DrainDeadlineSeconds - secondsSince(Start), 0.05);
      bool Drained = Ctl->drainBackgroundWork(Remaining);
      Clean = Drained && Clean;
      // The pool is drained, so no run is in flight and stats() is safe.
      C.TierTwoCancellations.fetch_add(Ctl->stats().NativeCompilesCancelled,
                                       std::memory_order_relaxed);
    }
  }

  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (const std::shared_ptr<Connection> &Conn : Connections) {
      Conn->Open.store(false, std::memory_order_release);
      if (Conn->Fd >= 0)
        ::shutdown(Conn->Fd, SHUT_RDWR);
    }
  }
  reapConnections(/*All=*/true);

  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (Started.load(std::memory_order_acquire) && !Opts.SocketPath.empty())
    ::unlink(Opts.SocketPath.c_str());

  log(formatString("broptd drained %s in %.2fs",
                   Clean ? "cleanly" : "with cancellations",
                   secondsSince(Start)));
  {
    std::lock_guard<std::mutex> Lock(StopMutex);
    ShutdownDone = true;
    ShutdownClean = Clean;
  }
  StopCV.notify_all();
  return Clean;
}

ServiceStats BroptService::stats() const {
  ServiceStats S;
  S.RequestsAccepted = C.RequestsAccepted.load(std::memory_order_relaxed);
  S.RequestsCompleted = C.RequestsCompleted.load(std::memory_order_relaxed);
  S.RequestsRejected = C.RequestsRejected.load(std::memory_order_relaxed);
  S.ProtocolErrors = C.ProtocolErrors.load(std::memory_order_relaxed);
  S.DroppedConnections =
      C.DroppedConnections.load(std::memory_order_relaxed);
  S.QueueDepth = C.QueueDepth.load(std::memory_order_relaxed);
  S.QueueHighWaterSeen =
      C.QueueHighWaterSeen.load(std::memory_order_relaxed);
  S.QueueWaitMicrosTotal =
      C.QueueWaitMicrosTotal.load(std::memory_order_relaxed);
  S.QueueWaitMicrosMax =
      C.QueueWaitMicrosMax.load(std::memory_order_relaxed);
  S.CompileHits = C.CompileHits.load(std::memory_order_relaxed);
  S.CompileMisses = C.CompileMisses.load(std::memory_order_relaxed);
  S.ArtifactEvictions =
      C.ArtifactEvictions.load(std::memory_order_relaxed);
  S.WarmStarts = C.WarmStarts.load(std::memory_order_relaxed);
  S.LearnedExports = C.LearnedExports.load(std::memory_order_relaxed);
  S.ActiveConnections =
      C.ActiveConnections.load(std::memory_order_relaxed);
  S.TierTwoCancellations =
      C.TierTwoCancellations.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(ZooMutex);
    for (const auto &[Name, Usage] : ZooUsage)
      S.Zoo.push_back({Name, Usage[0], Usage[1], Usage[2]});
  }
  ProfileShardStats PS = Shards.stats();
  S.ProfileMerges = PS.Merges;
  S.ProfileMergeConflicts = PS.Conflicts;
  S.ProfileAggregations = PS.Aggregations;
  S.ProfileRecords = PS.Records;
  return S;
}

//===----------------------------------------------------------------------===//
// Connection plumbing
//===----------------------------------------------------------------------===//

void BroptService::acceptLoop() {
  while (!stopping()) {
    reapConnections(/*All=*/false);
    pollfd P{};
    P.fd = ListenFd;
    P.events = POLLIN;
    int N = ::poll(&P, 1, /*timeout ms=*/200);
    if (N <= 0)
      continue; // timeout or EINTR; recheck the stop flag
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    auto Conn = std::make_shared<Connection>();
    Conn->Fd = Fd;
    C.ActiveConnections.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      Connections.push_back(Conn);
    }
    Conn->Reader = std::thread([this, Conn] { readerLoop(Conn); });
  }
}

void BroptService::reapConnections(bool All) {
  std::vector<std::shared_ptr<Connection>> Dead;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    auto End = std::remove_if(
        Connections.begin(), Connections.end(),
        [&](const std::shared_ptr<Connection> &Conn) {
          if (!All && !Conn->Done.load(std::memory_order_acquire))
            return false;
          Dead.push_back(Conn);
          return true;
        });
    Connections.erase(End, Connections.end());
  }
  for (const std::shared_ptr<Connection> &Conn : Dead)
    if (Conn->Reader.joinable())
      Conn->Reader.join();
  // Fds close in ~Connection, i.e. only once the last in-flight response
  // writer has dropped its reference — never while a worker could still
  // write (and race a recycled fd number).
}

void BroptService::readerLoop(std::shared_ptr<Connection> Conn) {
  std::string Payload, Err;
  for (;;) {
    Payload.clear();
    Err.clear();
    if (!readFrame(Conn->Fd, Payload, Opts.MaxFrameBytes, &Err)) {
      if (Err == "eof")
        break; // clean close between frames
      if (Err.rfind("oversize frame", 0) == 0) {
        // The length prefix itself is garbage; the stream cannot be
        // resynced.  Answer, then close this one connection — the
        // server and every other client are untouched.
        C.ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
        ServiceResponse R;
        R.Status = ResponseStatus::Error;
        R.Error = Err;
        sendResponse(*Conn, R);
      } else if (!stopping()) {
        // Disconnected mid-frame (or a read error).
        C.DroppedConnections.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    ServiceRequest Req;
    if (!decodeRequest(Payload, Req, &Err)) {
      // Framing was intact, the payload was not: survivable.  Report and
      // keep serving this connection.
      C.ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      ServiceResponse R;
      R.Status = ResponseStatus::Error;
      R.Error = "malformed request: " + Err;
      if (!sendResponse(*Conn, R)) {
        C.DroppedConnections.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      continue;
    }
    dispatch(Conn, std::move(Req));
  }
  C.ActiveConnections.fetch_sub(1, std::memory_order_relaxed);
  Conn->Done.store(true, std::memory_order_release);
}

bool BroptService::sendResponse(Connection &Conn,
                                const ServiceResponse &Response) {
  std::string Payload = encodeResponse(Response);
  std::lock_guard<std::mutex> Lock(Conn.WriteMutex);
  if (!Conn.Open.load(std::memory_order_acquire))
    return false;
  if (!writeFrame(Conn.Fd, Payload)) {
    Conn.Open.store(false, std::memory_order_release);
    return false;
  }
  return true;
}

void BroptService::sendOrDrop(const std::shared_ptr<Connection> &Conn,
                              const ServiceResponse &Response) {
  if (!sendResponse(*Conn, Response))
    C.DroppedConnections.fetch_add(1, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Admission and dispatch
//===----------------------------------------------------------------------===//

void BroptService::dispatch(const std::shared_ptr<Connection> &Conn,
                            ServiceRequest Request) {
  ServiceResponse Quick;
  Quick.Seq = Request.Seq;
  // Stats and Shutdown are served inline on the reader thread: the
  // monitoring and control plane must keep working when the admission
  // queue is saturated — that is exactly when it is needed.
  if (Request.Kind == RequestKind::Stats) {
    Quick.Stats = stats();
    sendOrDrop(Conn, Quick);
    return;
  }
  if (Request.Kind == RequestKind::Shutdown) {
    sendOrDrop(Conn, Quick);
    requestStop();
    return;
  }
  if (stopping()) {
    Quick.Status = ResponseStatus::ShuttingDown;
    Quick.Error = "daemon is draining";
    sendOrDrop(Conn, Quick);
    return;
  }
  uint64_t Depth = C.QueueDepth.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Depth > Opts.QueueHighWater) {
    C.QueueDepth.fetch_sub(1, std::memory_order_relaxed);
    C.RequestsRejected.fetch_add(1, std::memory_order_relaxed);
    Quick.Status = ResponseStatus::Rejected;
    Quick.RetryAfterMillis = Opts.RetryAfterMillis;
    Quick.Error = "admission queue past the high-water mark";
    sendOrDrop(Conn, Quick);
    return;
  }
  uint64_t Seen = C.QueueHighWaterSeen.load(std::memory_order_relaxed);
  while (Depth > Seen &&
         !C.QueueHighWaterSeen.compare_exchange_weak(
             Seen, Depth, std::memory_order_relaxed))
    ;
  C.RequestsAccepted.fetch_add(1, std::memory_order_relaxed);
  auto Admitted = std::chrono::steady_clock::now();
  // std::function needs a copyable closure; the request moves behind a
  // shared_ptr.
  auto Req = std::make_shared<ServiceRequest>(std::move(Request));
  Pool->enqueue([this, Conn, Req, Admitted] {
    uint64_t WaitMicros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Admitted)
            .count());
    C.QueueWaitMicrosTotal.fetch_add(WaitMicros, std::memory_order_relaxed);
    uint64_t Max = C.QueueWaitMicrosMax.load(std::memory_order_relaxed);
    while (WaitMicros > Max &&
           !C.QueueWaitMicrosMax.compare_exchange_weak(
               Max, WaitMicros, std::memory_order_relaxed))
      ;
    ServiceResponse R = process(*Req);
    R.Seq = Req->Seq;
    R.QueueMicros = WaitMicros;
    // Count completion *before* the response goes out: a client that has
    // its response in hand must never read a Stats snapshot that does not
    // yet include the request it just completed.
    C.RequestsCompleted.fetch_add(1, std::memory_order_relaxed);
    sendOrDrop(Conn, R);
    C.QueueDepth.fetch_sub(1, std::memory_order_relaxed);
  });
}

ServiceResponse BroptService::process(const ServiceRequest &Request) {
  ServiceResponse R;
  try {
    switch (Request.Kind) {
    case RequestKind::Compile:
      handleCompile(Request, R);
      break;
    case RequestKind::Execute:
      handleExecute(Request, R);
      break;
    case RequestKind::Evaluate:
      handleEvaluate(Request, R);
      break;
    case RequestKind::ProfileExport:
      handleProfileExport(Request, R);
      break;
    case RequestKind::ProfileMerge:
      handleProfileMerge(Request, R);
      break;
    case RequestKind::Stats:
    case RequestKind::Shutdown:
      R.Status = ResponseStatus::Error;
      R.Error = "request kind served inline"; // unreachable via dispatch
      break;
    }
  } catch (const std::exception &E) {
    // A daemon never dies on one request.
    R = ServiceResponse();
    R.Status = ResponseStatus::Error;
    R.Error = formatString("internal error: %s", E.what());
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Artifacts
//===----------------------------------------------------------------------===//

std::shared_ptr<ServiceArtifact>
BroptService::artifactFor(const CompileSpec &Spec, bool &CacheHit) {
  std::string Key = artifactKeyFor(Spec);
  std::lock_guard<std::mutex> Lock(ArtifactMutex);
  if (std::shared_ptr<ServiceArtifact> *Found = Artifacts.get(Key)) {
    CacheHit = true;
    C.CompileHits.fetch_add(1, std::memory_order_relaxed);
    return *Found;
  }
  CacheHit = false;
  C.CompileMisses.fetch_add(1, std::memory_order_relaxed);
  auto A = std::make_shared<ServiceArtifact>();
  A->ProgramKey = programKeyFor(Spec);
  if (Artifacts.put(Key, A))
    C.ArtifactEvictions.fetch_add(1, std::memory_order_relaxed);
  return A;
}

void BroptService::buildArtifact(ServiceArtifact &A,
                                 const CompileSpec &Spec) {
  A.BuildDone = true; // even a failed build is final for this artifact
  CompileOptions O = compileOptionsFor(Spec);
  // Diagnose a bad zoo name up front: without training inputs nothing
  // downstream would validate it.
  if (!Spec.Predictor.empty() && !makePredictor(Spec.Predictor)) {
    A.BuildError = "unknown predictor '" + Spec.Predictor +
                   "' (see docs/PREDICT.md for the zoo)";
    return;
  }
  ProfileDB Profile;
  bool HaveProfile = false;
  if (!Spec.ProfileData.empty()) {
    std::string Err;
    if (!Profile.deserialize(Spec.ProfileData, &Err)) {
      A.BuildError = "bad profile data: " + Err;
      return;
    }
    HaveProfile = true;
  }
  if (!Spec.TrainingInputs.empty()) {
    std::vector<std::string_view> Views(Spec.TrainingInputs.begin(),
                                        Spec.TrainingInputs.end());
    Pass1Result P1 = runPass1(Spec.Source, Views, O);
    if (!P1.ok()) {
      A.BuildError = P1.Error;
      return;
    }
    // Fresh training traffic feeds the cross-tenant store.
    Shards.merge(A.ProgramKey, P1.Profile);
    Profile.merge(P1.Profile);
    HaveProfile = true;
  }
  if (Spec.WarmStart) {
    std::shared_ptr<const ProfileDB> Agg = Shards.aggregated(A.ProgramKey);
    if (Agg && profileNonEmpty(*Agg)) {
      Profile.merge(*Agg);
      A.WarmStarted = true;
      C.WarmStarts.fetch_add(1, std::memory_order_relaxed);
      HaveProfile = true;
    }
  }
  CompileResult Result = HaveProfile
                             ? compileWithProfile(Spec.Source, Profile, O)
                             : compileBaseline(Spec.Source, O);
  if (!Result.ok()) {
    A.BuildError = Result.Error;
    return;
  }
  A.SequencesReordered = Result.Stats.Reordered;
  A.CodeSize = Result.M->instructionCount();
  A.Compiled = std::make_shared<const CompileResult>(std::move(Result));
  A.Profile = std::move(Profile);
  A.HasProfile = HaveProfile;
}

//===----------------------------------------------------------------------===//
// Request handlers
//===----------------------------------------------------------------------===//

void BroptService::handleCompile(const ServiceRequest &Request,
                                 ServiceResponse &R) {
  bool Hit = false;
  std::shared_ptr<ServiceArtifact> A = artifactFor(Request.Spec, Hit);
  std::lock_guard<std::mutex> Lock(A->BuildMutex);
  if (!A->BuildDone)
    buildArtifact(*A, Request.Spec);
  R.ProgramKey = A->ProgramKey;
  R.CompileCacheHit = Hit;
  if (!A->BuildError.empty()) {
    R.Status = ResponseStatus::Error;
    R.Error = A->BuildError;
    return;
  }
  R.WarmStarted = A->WarmStarted;
  R.SequencesReordered = A->SequencesReordered;
  R.CodeSize = A->CodeSize;
}

void BroptService::handleExecute(const ServiceRequest &Request,
                                 ServiceResponse &R) {
  if (Request.Mode >
      static_cast<uint8_t>(Interpreter::Mode::AdaptiveNative)) {
    R.Status = ResponseStatus::Error;
    R.Error = formatString("invalid execution mode %u", Request.Mode);
    return;
  }
  auto Mode = static_cast<Interpreter::Mode>(Request.Mode);

  bool Hit = false;
  std::shared_ptr<ServiceArtifact> A = artifactFor(Request.Spec, Hit);
  ExecRequest ER;
  ER.Input = Request.Input;
  ER.InstructionLimit = Request.InstructionLimit;
  // Per-request predictor: each run measures on its own fresh instance,
  // so one client's branch history never leaks into another's numbers.
  // An unknown name is diagnosed by the build below.
  std::unique_ptr<Predictor> Measured;
  if (!Request.Spec.Predictor.empty()) {
    Measured = makePredictor(Request.Spec.Predictor);
    ER.AttachedPredictor = Measured.get();
  }
  std::shared_ptr<AdaptiveController> Ctl;
  {
    std::lock_guard<std::mutex> Lock(A->BuildMutex);
    if (!A->BuildDone)
      buildArtifact(*A, Request.Spec);
    R.ProgramKey = A->ProgramKey;
    R.CompileCacheHit = Hit;
    if (!A->BuildError.empty()) {
      R.Status = ResponseStatus::Error;
      R.Error = A->BuildError;
      return;
    }
    R.WarmStarted = A->WarmStarted;
    R.SequencesReordered = A->SequencesReordered;
    R.CodeSize = A->CodeSize;

    // Lazily prepare the engine this run needs, shared across clients.
    const Module &M = *A->Compiled->M;
    switch (Mode) {
    case Interpreter::Mode::Tree:
      break;
    case Interpreter::Mode::Decoded:
      if (!A->Decoded)
        A->Decoded =
            std::make_shared<const DecodedModule>(DecodedModule::decode(M));
      ER.Prepared = A->Decoded.get();
      break;
    case Interpreter::Mode::Fused: {
      if (!A->Fused) {
        FuseOptions FO = Opts.Runtime.Fuse;
        FO.Profile = A->HasProfile ? &A->Profile : nullptr;
        FO.Hotness = nullptr;
        A->Fused =
            std::make_shared<const DecodedModule>(decodeFused(M, FO));
      }
      ER.Prepared = A->Fused.get();
      break;
    }
    case Interpreter::Mode::Native: {
      if (!A->NativeTried) {
        A->NativeTried = true;
        NativeRunner &Runner =
            Opts.Runtime.Runner ? *Opts.Runtime.Runner
                                : NativeRunner::shared();
        A->Native = Runner.prepare(M, &A->NativeError);
      }
      if (!A->Native) {
        R.Status = ResponseStatus::Error;
        R.Error = "native backend unavailable: " + A->NativeError;
        return;
      }
      ER.Native = A->Native.get();
      break;
    }
    case Interpreter::Mode::Adaptive:
    case Interpreter::Mode::AdaptiveNative: {
      bool Native = Mode == Interpreter::Mode::AdaptiveNative;
      std::shared_ptr<AdaptiveController> &Slot =
          Native ? A->AdaptiveNative : A->Adaptive;
      if (!Slot) {
        RuntimeOptions RO = Opts.Runtime;
        RO.NativeTier = Native;
        Slot = std::make_shared<AdaptiveController>(M, RO);
        // Cross-tenant warm start: seed the controller with what the
        // shards already learned about this program, so the first run
        // can begin in the optimized tier.
        std::shared_ptr<const ProfileDB> Agg =
            Shards.aggregated(A->ProgramKey);
        if (Agg && profileNonEmpty(*Agg)) {
          Slot->importProfile(*Agg);
          C.WarmStarts.fetch_add(1, std::memory_order_relaxed);
        }
      }
      Ctl = Slot;
      ER.Adaptive = Ctl.get();
      break;
    }
    }
  }

  RunResult RR;
  if (Ctl) {
    // One controller's sampler is not reentrant; adaptive-family runs of
    // one artifact serialize here (the other engines run lock-free on
    // immutable programs).
    std::lock_guard<std::mutex> Lock(A->RunMutex);
    RR = executeModule(*A->Compiled->M, Mode, ER);
    exportLearnedProfile(*A, *Ctl);
  } else {
    RR = executeModule(*A->Compiled->M, Mode, ER);
  }
  R.Trapped = RR.Trapped;
  R.TrapReason = RR.TrapReason;
  R.ExitValue = RR.ExitValue;
  R.Output = RR.Output;
  R.TotalInsts = RR.Counts.TotalInsts;
  R.CondBranches = RR.Counts.CondBranches;
  if (Measured) {
    const PredictorStats &PS = Measured->getStats();
    R.PredictedBranches = PS.Branches;
    R.Mispredictions = PS.Mispredictions;
    std::lock_guard<std::mutex> Lock(ZooMutex);
    auto &Usage = ZooUsage[Measured->name()];
    Usage[0] += 1;
    Usage[1] += PS.Branches;
    Usage[2] += PS.Mispredictions;
  }
}

void BroptService::exportLearnedProfile(ServiceArtifact &A,
                                        AdaptiveController &Ctl) {
  if (!Ctl.tiered())
    return;
  std::string Sig = Ctl.deployedOrderingSignature();
  // exportProfile() is cumulative (the snapshot that built the deployed
  // version); merging it once per deployed signature keeps shard counts
  // honest — re-merging every run would double-count the same traffic.
  if (Sig.empty() || Sig == A.LastExportedSig)
    return;
  ProfileDB Learned;
  Ctl.exportProfile(Learned);
  Shards.merge(A.ProgramKey, Learned);
  A.LastExportedSig = std::move(Sig);
  C.LearnedExports.fetch_add(1, std::memory_order_relaxed);
}

void BroptService::handleEvaluate(const ServiceRequest &Request,
                                  ServiceResponse &R) {
  const Workload *W = findWorkload(Request.WorkloadName);
  if (!W) {
    R.Status = ResponseStatus::Error;
    R.Error = "unknown workload: " + Request.WorkloadName;
    return;
  }
  WorkloadRecord Rec =
      Eval->evaluateWorkload(*W, compileOptionsFor(Request.Spec));
  if (!Rec.Eval.ok()) {
    R.Status = ResponseStatus::Error;
    R.Error = Rec.Eval.Error;
    return;
  }
  R.OutputsMatch = Rec.Eval.OutputsMatch;
  R.SequencesReordered = Rec.Eval.Stats.Reordered;
  R.BranchDeltaPercent = WorkloadEvaluation::deltaPercent(
      Rec.Eval.Baseline.Counts.CondBranches,
      Rec.Eval.Reordered.Counts.CondBranches);
  R.TotalInsts = Rec.Eval.Reordered.Counts.TotalInsts;
  R.CondBranches = Rec.Eval.Reordered.Counts.CondBranches;
  R.CodeSize = Rec.Eval.Reordered.CodeSize;
}

void BroptService::handleProfileExport(const ServiceRequest &Request,
                                       ServiceResponse &R) {
  if (Request.ProgramKey.empty()) {
    R.Status = ResponseStatus::Error;
    R.Error = "program key required";
    return;
  }
  std::shared_ptr<const ProfileDB> Agg =
      Shards.aggregated(Request.ProgramKey);
  R.ProfileData = Agg->serializeBinary();
  R.ProgramKey = Request.ProgramKey;
}

void BroptService::handleProfileMerge(const ServiceRequest &Request,
                                      ServiceResponse &R) {
  if (Request.ProgramKey.empty()) {
    R.Status = ResponseStatus::Error;
    R.Error = "program key required";
    return;
  }
  ProfileDB DB;
  std::string Err;
  if (!DB.deserialize(Request.ProfileData, &Err)) {
    R.Status = ResponseStatus::Error;
    R.Error = "bad profile data: " + Err;
    return;
  }
  ProfileMergeStats S = Shards.merge(Request.ProgramKey, DB);
  R.ProgramKey = Request.ProgramKey;
  R.MergeAdded = S.Added;
  R.MergeMerged = S.Merged;
  R.MergeSkipped = S.Skipped;
}
