//===- service/Service.h - The broptd daemon --------------------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running compile-profile-execute service over the engine stack
/// (docs/SERVICE.md).  BroptService listens on a Unix-domain socket,
/// speaks the length-prefixed protocol of service/Protocol.h, and serves
/// many concurrent clients:
///
///  * requests are admitted onto a ThreadPool behind a bounded queue;
///    past the high-water mark new work is rejected with a retry-after
///    hint instead of queueing without bound (backpressure),
///  * compiled artifacts — module, fused/decoded programs, native body,
///    adaptive controller — are shared across clients through an LRU
///    cache keyed by artifact key (module hash + ordering signature), so
///    one client's hot compile serves the next client's request,
///  * profiles learned from live traffic (pass-1 training runs, client
///    merges, adaptive-runtime exports) aggregate in ProfileShards and
///    warm-start later compiles of the same program, across clients,
///  * shutdown is graceful: stop admitting, drain the pool under a
///    deadline, then drainBackgroundWork() every cached controller —
///    cancelling in-flight tier-2 native compiles — before closing.
///
/// One reader thread per connection decodes frames and admits work; pool
/// workers execute and write the response under a per-connection write
/// lock, so clients may pipeline requests and responses interleave
/// safely.  A malformed frame earns an Error response; only a desynced
/// stream (oversize length prefix) or a peer disconnect closes the one
/// connection.  Server state is never torn down by client input.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_SERVICE_SERVICE_H
#define BROPT_SERVICE_SERVICE_H

#include "runtime/AdaptiveController.h"
#include "service/Protocol.h"
#include "service/ProfileShards.h"
#include "support/LruCache.h"
#include "support/ThreadPool.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace bropt {

class Evaluator;
struct ServiceArtifact;

/// Daemon knobs; every one surfaces as a broptd flag (docs/SERVICE.md).
struct ServiceOptions {
  /// Filesystem path the Unix-domain socket binds to.  Required.
  std::string SocketPath;
  /// Worker threads executing requests; 0 means one per hardware thread.
  unsigned Threads = 0;
  /// Admitted-but-incomplete requests allowed before backpressure: past
  /// this mark requests are Rejected with RetryAfterMillis.
  size_t QueueHighWater = 256;
  /// Shards in the cross-tenant profile store.
  unsigned ProfileShardCount = 16;
  /// Artifacts (compiled module + prepared engines + controller) kept in
  /// the LRU cache.
  size_t ArtifactCacheCapacity = 64;
  /// Wall-clock budget for graceful shutdown: pool drain plus controller
  /// background-work drain share it; on expiry in-flight tier-2 native
  /// compiles are cancelled.
  double DrainDeadlineSeconds = 30.0;
  /// Retry hint sent with backpressure rejections.
  uint32_t RetryAfterMillis = 50;
  /// Per-frame size cap, enforced before allocation.
  uint32_t MaxFrameBytes = MaxServiceFrameBytes;
  /// Adaptive-runtime knobs for Execute requests in the adaptive modes
  /// (and the FuseOptions base for fused-engine preparation).
  RuntimeOptions Runtime;
  /// Optional log sink (startup, shutdown, per-connection events).
  std::function<void(const std::string &)> Log;
};

/// The daemon.  start() binds and spawns the acceptor; wait() blocks
/// until a client Shutdown request (or requestStop()); shutdown() drains
/// and tears down.  All public methods are thread-safe.
class BroptService {
public:
  explicit BroptService(ServiceOptions Options);
  ~BroptService();

  BroptService(const BroptService &) = delete;
  BroptService &operator=(const BroptService &) = delete;

  const ServiceOptions &options() const { return Opts; }

  /// Binds the socket and starts accepting.  \returns false with
  /// \p Error set when the socket cannot be created.
  bool start(std::string *Error = nullptr);

  /// Blocks until a Shutdown request arrives or requestStop() is called.
  void wait();

  /// Flags the daemon to stop and wakes wait().  Safe from any thread
  /// (including connection readers and signal-watcher threads); does not
  /// block — the actual drain happens in shutdown().
  void requestStop();

  /// Graceful shutdown: stop accepting, drain admitted work under the
  /// drain deadline, drain every cached controller's background work
  /// (cancelling in-flight tier-2 native compiles), close connections,
  /// unlink the socket.  Idempotent; concurrent callers wait for the
  /// first.  \returns true when everything drained cleanly before the
  /// deadline, false when the deadline forced cancellations.
  bool shutdown();

  /// Counters snapshot (also served by RequestKind::Stats).
  ServiceStats stats() const;

  /// True once requestStop()/shutdown() began; new requests get
  /// ResponseStatus::ShuttingDown.
  bool stopping() const { return Stopping.load(std::memory_order_acquire); }

private:
  struct Connection {
    ~Connection(); ///< closes Fd (last reference only; see reapConnections)
    int Fd = -1;
    std::mutex WriteMutex;
    std::atomic<bool> Open{true};
    std::atomic<bool> Done{false};
    std::thread Reader;
  };

  void acceptLoop();
  void readerLoop(std::shared_ptr<Connection> Conn);
  /// Joins and erases finished connections (called from the acceptor).
  void reapConnections(bool All);
  /// Inline vs pooled routing plus admission control; owns backpressure.
  void dispatch(const std::shared_ptr<Connection> &Conn,
                ServiceRequest Request);
  /// Executes one admitted request (pool worker context).
  ServiceResponse process(const ServiceRequest &Request);
  bool sendResponse(Connection &Conn, const ServiceResponse &Response);
  void sendOrDrop(const std::shared_ptr<Connection> &Conn,
                  const ServiceResponse &Response);

  std::shared_ptr<ServiceArtifact> artifactFor(const CompileSpec &Spec,
                                               bool &CacheHit);
  /// Compiles under the artifact's build lock (first caller builds,
  /// later callers reuse); assembles the pass-2 profile from explicit
  /// data, training runs, and — with WarmStart — the shard aggregate.
  void buildArtifact(ServiceArtifact &A, const CompileSpec &Spec);
  void handleCompile(const ServiceRequest &Request, ServiceResponse &R);
  void handleExecute(const ServiceRequest &Request, ServiceResponse &R);
  void handleEvaluate(const ServiceRequest &Request, ServiceResponse &R);
  void handleProfileExport(const ServiceRequest &Request,
                           ServiceResponse &R);
  void handleProfileMerge(const ServiceRequest &Request, ServiceResponse &R);
  /// After an adaptive run: exports the controller's learned profile into
  /// the shards when the deployed ordering signature moved.
  void exportLearnedProfile(ServiceArtifact &A, AdaptiveController &Ctl);

  void log(const std::string &Message) const {
    if (Opts.Log)
      Opts.Log(Message);
  }

  ServiceOptions Opts;
  int ListenFd = -1;
  std::thread Acceptor;
  std::unique_ptr<ThreadPool> Pool;
  std::unique_ptr<Evaluator> Eval;
  ProfileShards Shards;

  mutable std::mutex ConnMutex;
  std::vector<std::shared_ptr<Connection>> Connections;

  mutable std::mutex ArtifactMutex;
  LruCache<std::string, std::shared_ptr<ServiceArtifact>> Artifacts;

  std::atomic<bool> Started{false};
  std::atomic<bool> Stopping{false};
  std::atomic<bool> StopRequested{false};
  std::mutex StopMutex;
  std::condition_variable StopCV;
  bool ShutdownStarted = false; ///< guarded by StopMutex
  bool ShutdownDone = false;    ///< guarded by StopMutex
  bool ShutdownClean = true;    ///< guarded by StopMutex

  /// Monotonic counters (relaxed; stats() snapshots).
  struct Counters {
    std::atomic<uint64_t> RequestsAccepted{0};
    std::atomic<uint64_t> RequestsCompleted{0};
    std::atomic<uint64_t> RequestsRejected{0};
    std::atomic<uint64_t> ProtocolErrors{0};
    std::atomic<uint64_t> DroppedConnections{0};
    std::atomic<uint64_t> QueueDepth{0};
    std::atomic<uint64_t> QueueHighWaterSeen{0};
    std::atomic<uint64_t> QueueWaitMicrosTotal{0};
    std::atomic<uint64_t> QueueWaitMicrosMax{0};
    std::atomic<uint64_t> CompileHits{0};
    std::atomic<uint64_t> CompileMisses{0};
    std::atomic<uint64_t> ArtifactEvictions{0};
    std::atomic<uint64_t> WarmStarts{0};
    std::atomic<uint64_t> LearnedExports{0};
    std::atomic<uint64_t> ActiveConnections{0};
    std::atomic<uint64_t> TierTwoCancellations{0};
  };
  mutable Counters C;

  /// Cumulative measurement traffic per zoo predictor (Runs, Branches,
  /// Mispredictions keyed by scheme name).  Each execute request runs a
  /// fresh predictor instance; only these aggregates outlive the request.
  mutable std::mutex ZooMutex;
  std::map<std::string, std::array<uint64_t, 3>> ZooUsage;
};

} // namespace bropt

#endif // BROPT_SERVICE_SERVICE_H
