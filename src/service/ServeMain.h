//===- service/ServeMain.h - Shared daemon entry point ----------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve loop `tools/broptd.cpp` and `broptc --serve` share: install
/// SIGINT/SIGTERM handlers, start a BroptService, block until a signal
/// or a client Shutdown request, then drain gracefully and report the
/// final stats.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_SERVICE_SERVEMAIN_H
#define BROPT_SERVICE_SERVEMAIN_H

#include "service/Service.h"

#include <string>

namespace bropt {

/// Parses the daemon flag set shared by `broptd` and `broptc --serve`
/// (the `--serve` token itself is skipped): --socket PATH, --threads N,
/// --queue-high-water N, --shards N, --cache-capacity N,
/// --drain-seconds S, --retry-after-ms N, --hot-threshold N,
/// --native-tier, --native-threshold N, --sample-interval N, --verbose.
/// \returns false with \p Error set on an unknown flag, a missing value,
/// or a missing --socket.
bool parseServeArgs(int Argc, char **Argv, ServiceOptions &Options,
                    bool &Verbose, std::string *Error);

/// One usage line per serve flag, for the callers' --help output.
const char *serveUsage();

/// Runs a daemon to completion.  \p Verbose logs lifecycle events to
/// stderr (in addition to any Options.Log sink).  \returns the process
/// exit code: 0 after a clean drain, 1 on startup failure or a drain
/// that had to cancel work.
int runServeLoop(ServiceOptions Options, bool Verbose);

} // namespace bropt

#endif // BROPT_SERVICE_SERVEMAIN_H
