//===- service/Client.cpp - broptd client library -------------------------===//

#include "service/Client.h"

#include "support/Strings.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace bropt;

ServiceClient::~ServiceClient() {
  close();
}

void ServiceClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool ServiceClient::connect(const std::string &SocketPath,
                            std::string *Error) {
  close();
  sockaddr_un Addr{};
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path too long";
    return false;
  }
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = formatString("socket: %s", std::strerror(errno));
    return false;
  }
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    if (Error)
      *Error = formatString("connect %s: %s", SocketPath.c_str(),
                            std::strerror(errno));
    close();
    return false;
  }
  return true;
}

bool ServiceClient::connectWithRetry(const std::string &SocketPath,
                                     double Seconds, std::string *Error) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(Seconds);
  for (;;) {
    if (connect(SocketPath, Error))
      return true;
    if (std::chrono::steady_clock::now() >= Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

bool ServiceClient::send(const ServiceRequest &Request, std::string *Error) {
  if (Fd < 0) {
    if (Error)
      *Error = "not connected";
    return false;
  }
  return writeFrame(Fd, encodeRequest(Request), Error);
}

bool ServiceClient::receive(ServiceResponse &Response, std::string *Error) {
  if (Fd < 0) {
    if (Error)
      *Error = "not connected";
    return false;
  }
  std::string Payload;
  if (!readFrame(Fd, Payload, MaxServiceFrameBytes, Error))
    return false;
  return decodeResponse(Payload, Response, Error);
}

bool ServiceClient::roundTrip(ServiceRequest Request,
                              ServiceResponse &Response,
                              std::string *Error) {
  Request.Seq = NextSeq++;
  if (!send(Request, Error))
    return false;
  if (!receive(Response, Error))
    return false;
  if (Response.Seq != Request.Seq) {
    if (Error)
      *Error = formatString("sequence mismatch: sent %llu, got %llu",
                            static_cast<unsigned long long>(Request.Seq),
                            static_cast<unsigned long long>(Response.Seq));
    return false;
  }
  return true;
}

bool ServiceClient::roundTripRetrying(const ServiceRequest &Request,
                                      ServiceResponse &Response,
                                      std::string *Error,
                                      unsigned MaxAttempts) {
  for (unsigned Attempt = 0; Attempt < std::max(MaxAttempts, 1u);
       ++Attempt) {
    if (!roundTrip(Request, Response, Error))
      return false;
    if (Response.Status != ResponseStatus::Rejected)
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::max<uint32_t>(Response.RetryAfterMillis, 1)));
  }
  if (Error)
    *Error = "rejected on every attempt";
  return false;
}

InProcessService::InProcessService(ServiceOptions Options) {
  if (Options.SocketPath.empty()) {
    static std::atomic<unsigned> Counter{0};
    Options.SocketPath = formatString(
        "/tmp/broptd-%d-%u.sock", static_cast<int>(::getpid()),
        Counter.fetch_add(1, std::memory_order_relaxed));
  }
  Path = Options.SocketPath;
  Srv = std::make_unique<BroptService>(std::move(Options));
  std::string StartError;
  if (!Srv->start(&StartError))
    Err = StartError;
}

InProcessService::~InProcessService() {
  if (Srv)
    Srv->shutdown();
}

std::unique_ptr<ServiceClient> InProcessService::connect(std::string *Error) {
  auto Client = std::make_unique<ServiceClient>();
  if (!Client->connectWithRetry(Path, 5.0, Error))
    return nullptr;
  return Client;
}
