//===- service/ProfileShards.h - Sharded cross-tenant profiles --*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's concurrent profile store.  Incoming profiles — client
/// profile-merge requests and snapshots the adaptive runtime learned from
/// live traffic — are split record-by-record across N shards keyed by
/// hash(program, kind, function), so two clients whose traffic touches
/// different functions merge into different shards and never serialize on
/// one profile lock.  Each shard keeps one ProfileDB per program key and
/// merges with the PR-5 conflict checker: matching records sum,
/// conflicting records are skipped and counted, never misattributed
/// (docs/PROFILE.md).
///
/// Reads go through aggregated(): a cross-shard conflict-checked merge
/// into one snapshot per program, cached and refreshed only when shard
/// generations have moved — the periodic aggregation pass that serves
/// profile-export requests and warm-starts cross-tenant compiles.
/// Because shard assignment is a pure function of the record key, the
/// shards partition every program's records and the aggregate equals
/// what a serial merge of the same inputs would have produced — the
/// convergence property tests/service/service_test.cpp asserts.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_SERVICE_PROFILESHARDS_H
#define BROPT_SERVICE_PROFILESHARDS_H

#include "profile/ProfileDB.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace bropt {

/// Aggregate counters over every shard (monotonic, except Records).
struct ProfileShardStats {
  uint64_t Merges = 0;       ///< shard-level merge operations
  uint64_t Conflicts = 0;    ///< records the conflict checker skipped
  uint64_t Aggregations = 0; ///< cross-shard aggregation passes run
  uint64_t Records = 0;      ///< gauge: sequence records currently held
  uint64_t Programs = 0;     ///< gauge: distinct program keys seen
};

/// Concurrency-safe sharded profile store; see the file comment.
class ProfileShards {
public:
  explicit ProfileShards(unsigned NumShards = 16);

  unsigned numShards() const {
    return static_cast<unsigned>(Shards.size());
  }

  /// Splits \p DB by record key and merges each piece into its shard
  /// under that shard's lock only.  Concurrent callers touching disjoint
  /// functions proceed in parallel.  \returns the summed conflict-checked
  /// merge stats across the touched shards.
  ProfileMergeStats merge(const std::string &ProgramKey,
                          const ProfileDB &DB);

  /// The cross-shard aggregate for \p ProgramKey.  Served from a cached
  /// snapshot unless some shard has merged since the last aggregation
  /// pass (generation check), in which case the pass re-runs.  Never
  /// returns null; an unknown program yields an empty profile.
  std::shared_ptr<const ProfileDB> aggregated(const std::string &ProgramKey);

  ProfileShardStats stats() const;

private:
  struct Shard {
    mutable std::mutex Mutex;
    std::unordered_map<std::string, ProfileDB> ByProgram;
    uint64_t Merges = 0;
    uint64_t Conflicts = 0;
  };

  size_t shardFor(const std::string &ProgramKey, unsigned Kind,
                  const std::string &FunctionName) const;

  std::vector<std::unique_ptr<Shard>> Shards;
  /// Bumped on every merge; snapshots record the value they were built
  /// at, so aggregated() can tell a fresh cache from a stale one.
  std::atomic<uint64_t> Generation{0};

  struct Snapshot {
    uint64_t BuiltAtGeneration = 0;
    std::shared_ptr<const ProfileDB> DB;
  };
  mutable std::mutex SnapshotMutex;
  std::unordered_map<std::string, Snapshot> Snapshots;
  std::atomic<uint64_t> Aggregations{0};
};

} // namespace bropt

#endif // BROPT_SERVICE_PROFILESHARDS_H
