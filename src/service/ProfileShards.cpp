//===- service/ProfileShards.cpp - Sharded cross-tenant profiles ----------===//

#include "service/ProfileShards.h"

#include <algorithm>
#include <functional>

using namespace bropt;

namespace {

/// Pseudo-kind distinguishing FunctionHotness records from sequence
/// entries in the shard-assignment hash (ProfileKind stops at 3).
constexpr unsigned HotnessShardKind = 250;

} // namespace

ProfileShards::ProfileShards(unsigned NumShards) {
  if (NumShards == 0)
    NumShards = 1;
  Shards.reserve(NumShards);
  for (unsigned Index = 0; Index < NumShards; ++Index)
    Shards.push_back(std::make_unique<Shard>());
}

size_t ProfileShards::shardFor(const std::string &ProgramKey, unsigned Kind,
                               const std::string &FunctionName) const {
  // Shard assignment must be a pure function of the record key so every
  // merge of a given record lands in the same shard — that is what makes
  // the shards a partition and the aggregate order-independent.
  size_t Hash = std::hash<std::string>()(ProgramKey) * 1099511628211ull;
  Hash ^= std::hash<unsigned>()(Kind) + 0x9e3779b97f4a7c15ull;
  Hash ^= std::hash<std::string>()(FunctionName) << 1;
  return Hash % Shards.size();
}

ProfileMergeStats ProfileShards::merge(const std::string &ProgramKey,
                                       const ProfileDB &DB) {
  // Split the incoming profile into one piece per shard.  Building the
  // pieces needs no lock; only the per-shard merge below takes one.
  std::vector<std::unique_ptr<ProfileDB>> Pieces(Shards.size());
  auto pieceFor = [&](size_t Index) -> ProfileDB & {
    if (!Pieces[Index])
      Pieces[Index] = std::make_unique<ProfileDB>();
    return *Pieces[Index];
  };
  for (const ProfileEntry &Entry : DB) {
    ProfileDB &Piece = pieceFor(shardFor(
        ProgramKey, static_cast<unsigned>(Entry.Kind), Entry.FunctionName));
    ProfileEntry &Copy =
        Piece.upsertEntry(Entry.Kind, Entry.FunctionName, Entry.Signature,
                          Entry.Ordinal, Entry.BinCounts.size());
    Copy.BinCounts = Entry.BinCounts;
  }
  for (const FunctionHotness &Hot : DB.hotness()) {
    ProfileDB &Piece = pieceFor(
        shardFor(ProgramKey, HotnessShardKind, Hot.FunctionName));
    FunctionHotness &Copy =
        Piece.functionHotness(Hot.FunctionName, Hot.Taken.size());
    Copy.Taken = Hot.Taken;
    Copy.Total = Hot.Total;
  }

  ProfileMergeStats Total;
  for (size_t Index = 0; Index < Pieces.size(); ++Index) {
    if (!Pieces[Index])
      continue;
    Shard &S = *Shards[Index];
    std::lock_guard<std::mutex> Lock(S.Mutex);
    ProfileMergeStats Stats = S.ByProgram[ProgramKey].merge(*Pieces[Index]);
    ++S.Merges;
    S.Conflicts += Stats.Skipped;
    Total.Added += Stats.Added;
    Total.Merged += Stats.Merged;
    Total.Skipped += Stats.Skipped;
    for (std::string &Conflict : Stats.Conflicts)
      Total.Conflicts.push_back(std::move(Conflict));
  }
  Generation.fetch_add(1, std::memory_order_release);
  return Total;
}

std::shared_ptr<const ProfileDB>
ProfileShards::aggregated(const std::string &ProgramKey) {
  uint64_t Current = Generation.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> Lock(SnapshotMutex);
    auto It = Snapshots.find(ProgramKey);
    if (It != Snapshots.end() && It->second.BuiltAtGeneration == Current)
      return It->second.DB;
  }
  // Stale or missing: run an aggregation pass.  Shards are locked one at
  // a time — never all at once — so concurrent merges into other shards
  // keep flowing while the pass walks.  The shards partition the record
  // space, so cross-shard conflicts cannot occur and merge order is
  // irrelevant; the conflict checker still runs as a safety net.
  auto Aggregate = std::make_shared<ProfileDB>();
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    auto It = S->ByProgram.find(ProgramKey);
    if (It != S->ByProgram.end())
      Aggregate->merge(It->second);
  }
  Aggregations.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(SnapshotMutex);
  Snapshot &Cached = Snapshots[ProgramKey];
  // A racing merge may have bumped the generation mid-pass; remembering
  // the pre-pass generation keeps the cache conservatively stale rather
  // than wrongly fresh.
  if (!Cached.DB || Cached.BuiltAtGeneration <= Current) {
    Cached.BuiltAtGeneration = Current;
    Cached.DB = Aggregate;
  }
  return Aggregate;
}

ProfileShardStats ProfileShards::stats() const {
  ProfileShardStats Stats;
  std::vector<std::string> Programs;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Stats.Merges += S->Merges;
    Stats.Conflicts += S->Conflicts;
    for (const auto &[Key, DB] : S->ByProgram) {
      Stats.Records += DB.numSequences();
      Programs.push_back(Key);
    }
  }
  std::sort(Programs.begin(), Programs.end());
  Stats.Programs = static_cast<uint64_t>(
      std::unique(Programs.begin(), Programs.end()) - Programs.begin());
  Stats.Aggregations = Aggregations.load(std::memory_order_relaxed);
  return Stats;
}
