//===- service/ServeMain.cpp - Shared daemon entry point ------------------===//

#include "service/ServeMain.h"

#include "support/Strings.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

using namespace bropt;

namespace {

/// Written from the signal handler; everything else happens on the
/// watcher thread, where normal synchronization is allowed again.
volatile std::sig_atomic_t SignalSeen = 0;

void onSignal(int) {
  SignalSeen = 1;
}

void printStats(const ServiceStats &S) {
  std::fprintf(stderr,
               "broptd: %llu accepted, %llu completed, %llu rejected, "
               "%llu protocol errors, %llu dropped connections\n",
               static_cast<unsigned long long>(S.RequestsAccepted),
               static_cast<unsigned long long>(S.RequestsCompleted),
               static_cast<unsigned long long>(S.RequestsRejected),
               static_cast<unsigned long long>(S.ProtocolErrors),
               static_cast<unsigned long long>(S.DroppedConnections));
  std::fprintf(stderr,
               "broptd: cache %llu hits / %llu misses / %llu evictions; "
               "%llu warm starts, %llu learned exports\n",
               static_cast<unsigned long long>(S.CompileHits),
               static_cast<unsigned long long>(S.CompileMisses),
               static_cast<unsigned long long>(S.ArtifactEvictions),
               static_cast<unsigned long long>(S.WarmStarts),
               static_cast<unsigned long long>(S.LearnedExports));
  std::fprintf(stderr,
               "broptd: shards %llu merges (%llu conflicts), %llu "
               "aggregations, %llu records; %llu tier-2 cancellations\n",
               static_cast<unsigned long long>(S.ProfileMerges),
               static_cast<unsigned long long>(S.ProfileMergeConflicts),
               static_cast<unsigned long long>(S.ProfileAggregations),
               static_cast<unsigned long long>(S.ProfileRecords),
               static_cast<unsigned long long>(S.TierTwoCancellations));
}

} // namespace

const char *bropt::serveUsage() {
  return "  --socket PATH        Unix-domain socket to bind (required)\n"
         "  --threads N          worker threads (default: hardware)\n"
         "  --queue-high-water N backpressure threshold (default 256)\n"
         "  --shards N           profile store shards (default 16)\n"
         "  --cache-capacity N   artifact LRU capacity (default 64)\n"
         "  --drain-seconds S    graceful-shutdown budget (default 30)\n"
         "  --retry-after-ms N   rejection retry hint (default 50)\n"
         "  --hot-threshold N    adaptive tier-up threshold\n"
         "  --native-tier        enable tier-2 native promotion\n"
         "  --native-threshold N tier-2 promotion threshold\n"
         "  --sample-interval N  adaptive sampling interval\n"
         "  --verbose            log lifecycle events to stderr\n";
}

bool bropt::parseServeArgs(int Argc, char **Argv, ServiceOptions &Options,
                           bool &Verbose, std::string *Error) {
  auto fail = [&](const std::string &Why) {
    if (Error)
      *Error = Why;
    return false;
  };
  for (int Index = 1; Index < Argc; ++Index) {
    std::string Arg = Argv[Index];
    auto nextValue = [&]() -> const char * {
      return Index + 1 < Argc ? Argv[++Index] : nullptr;
    };
    auto nextOrFail = [&](std::string &Out) {
      const char *Value = nextValue();
      if (Value)
        Out = Value;
      return Value != nullptr;
    };
    std::string Value;
    if (Arg == "--serve") {
      continue; // broptc's mode selector; inert here
    } else if (Arg == "--socket") {
      if (!nextOrFail(Options.SocketPath))
        return fail("missing value after --socket");
    } else if (Arg == "--threads") {
      if (!nextOrFail(Value))
        return fail("missing value after --threads");
      Options.Threads = static_cast<unsigned>(std::atoi(Value.c_str()));
    } else if (Arg == "--queue-high-water") {
      if (!nextOrFail(Value))
        return fail("missing value after --queue-high-water");
      Options.QueueHighWater =
          static_cast<size_t>(std::atoll(Value.c_str()));
    } else if (Arg == "--shards") {
      if (!nextOrFail(Value))
        return fail("missing value after --shards");
      Options.ProfileShardCount =
          static_cast<unsigned>(std::atoi(Value.c_str()));
    } else if (Arg == "--cache-capacity") {
      if (!nextOrFail(Value))
        return fail("missing value after --cache-capacity");
      Options.ArtifactCacheCapacity =
          static_cast<size_t>(std::atoll(Value.c_str()));
    } else if (Arg == "--drain-seconds") {
      if (!nextOrFail(Value))
        return fail("missing value after --drain-seconds");
      Options.DrainDeadlineSeconds = std::atof(Value.c_str());
    } else if (Arg == "--retry-after-ms") {
      if (!nextOrFail(Value))
        return fail("missing value after --retry-after-ms");
      Options.RetryAfterMillis =
          static_cast<uint32_t>(std::atoi(Value.c_str()));
    } else if (Arg == "--hot-threshold") {
      if (!nextOrFail(Value))
        return fail("missing value after --hot-threshold");
      Options.Runtime.HotThreshold =
          static_cast<uint64_t>(std::atoll(Value.c_str()));
    } else if (Arg == "--native-tier") {
      Options.Runtime.NativeTier = true;
    } else if (Arg == "--native-threshold") {
      if (!nextOrFail(Value))
        return fail("missing value after --native-threshold");
      Options.Runtime.NativeThreshold =
          static_cast<uint64_t>(std::atoll(Value.c_str()));
    } else if (Arg == "--sample-interval") {
      if (!nextOrFail(Value))
        return fail("missing value after --sample-interval");
      Options.Runtime.SampleInterval =
          static_cast<uint32_t>(std::atoi(Value.c_str()));
    } else if (Arg == "--verbose" || Arg == "-v") {
      Verbose = true;
    } else {
      return fail("unknown option " + Arg);
    }
  }
  if (Options.SocketPath.empty())
    return fail("--socket PATH is required");
  return true;
}

int bropt::runServeLoop(ServiceOptions Options, bool Verbose) {
  if (Verbose && !Options.Log)
    Options.Log = [](const std::string &Message) {
      std::fprintf(stderr, "%s\n", Message.c_str());
    };
  BroptService Service(std::move(Options));
  std::string Error;
  if (!Service.start(&Error)) {
    std::fprintf(stderr, "broptd: %s\n", Error.c_str());
    return 1;
  }

  SignalSeen = 0;
  struct sigaction SA {};
  SA.sa_handler = onSignal;
  sigemptyset(&SA.sa_mask);
  struct sigaction OldInt {}, OldTerm {};
  sigaction(SIGINT, &SA, &OldInt);
  sigaction(SIGTERM, &SA, &OldTerm);

  // The handler may only flip a flag; this thread translates it into a
  // stop request, where locks and condition variables are legal.
  std::atomic<bool> WatcherExit{false};
  std::thread Watcher([&] {
    while (!WatcherExit.load(std::memory_order_acquire)) {
      if (SignalSeen) {
        Service.requestStop();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  Service.wait();
  bool Clean = Service.shutdown();
  WatcherExit.store(true, std::memory_order_release);
  if (Watcher.joinable())
    Watcher.join();
  sigaction(SIGINT, &OldInt, nullptr);
  sigaction(SIGTERM, &OldTerm, nullptr);

  if (Verbose)
    printStats(Service.stats());
  return Clean ? 0 : 1;
}
