//===- service/Protocol.cpp - broptd wire protocol ------------------------===//

#include "service/Protocol.h"

#include "support/Strings.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

using namespace bropt;

namespace {

// --- Primitive encoders: LEB128 varints + length-prefixed strings, the
// same shapes ProfileDB's binary format is built from. ---

void putVar(std::string &Out, uint64_t Value) {
  do {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    if (Value)
      Byte |= 0x80;
    Out.push_back(static_cast<char>(Byte));
  } while (Value);
}

void putString(std::string &Out, const std::string &S) {
  putVar(Out, S.size());
  Out.append(S);
}

void putBool(std::string &Out, bool B) { Out.push_back(B ? 1 : 0); }

/// Bounded little-endian cursor over a payload.  Every read checks the
/// remaining length, so a truncated or garbage frame fails cleanly.
struct Cursor {
  const std::string &Data;
  size_t Pos = 0;
  bool Failed = false;
  std::string Reason;

  explicit Cursor(const std::string &Data) : Data(Data) {}

  void fail(const char *Why) {
    if (!Failed) {
      Failed = true;
      Reason = formatString("%s at offset %zu", Why, Pos);
    }
  }

  uint64_t var() {
    uint64_t Value = 0;
    unsigned Shift = 0;
    while (true) {
      if (Pos >= Data.size() || Shift > 63) {
        fail("truncated varint");
        return 0;
      }
      uint8_t Byte = static_cast<uint8_t>(Data[Pos++]);
      Value |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
      if (!(Byte & 0x80))
        return Value;
      Shift += 7;
    }
  }

  std::string str() {
    uint64_t Len = var();
    if (Failed || Len > Data.size() - Pos) {
      fail("truncated string");
      return {};
    }
    std::string S = Data.substr(Pos, Len);
    Pos += Len;
    return S;
  }

  bool boolean() {
    if (Pos >= Data.size()) {
      fail("truncated bool");
      return false;
    }
    return Data[Pos++] != 0;
  }

  uint8_t byte() {
    if (Pos >= Data.size()) {
      fail("truncated byte");
      return 0;
    }
    return static_cast<uint8_t>(Data[Pos++]);
  }

  bool done() const { return Pos == Data.size(); }
};

void putSpec(std::string &Out, const CompileSpec &Spec) {
  putString(Out, Spec.Source);
  putVar(Out, Spec.TrainingInputs.size());
  for (const std::string &Input : Spec.TrainingInputs)
    putString(Out, Input);
  putString(Out, Spec.ProfileData);
  Out.push_back(static_cast<char>(Spec.HeuristicSet));
  putBool(Out, Spec.CommonSuccessor);
  putBool(Out, Spec.MethodSelection);
  putBool(Out, Spec.WarmStart);
  putString(Out, Spec.Predictor);
}

bool getSpec(Cursor &In, CompileSpec &Spec) {
  Spec.Source = In.str();
  uint64_t NumTraining = In.var();
  if (In.Failed || NumTraining > 1024) {
    In.fail("absurd training-input count");
    return false;
  }
  Spec.TrainingInputs.clear();
  for (uint64_t Index = 0; Index < NumTraining && !In.Failed; ++Index)
    Spec.TrainingInputs.push_back(In.str());
  Spec.ProfileData = In.str();
  Spec.HeuristicSet = In.byte();
  Spec.CommonSuccessor = In.boolean();
  Spec.MethodSelection = In.boolean();
  Spec.WarmStart = In.boolean();
  Spec.Predictor = In.str();
  return !In.Failed;
}

/// The stats block travels as a count-prefixed u64 array in declaration
/// order: old readers ignore trailing fields, new readers zero-fill.
void putStats(std::string &Out, const ServiceStats &S) {
  const uint64_t Fields[] = {
      S.RequestsAccepted,   S.RequestsCompleted,  S.RequestsRejected,
      S.ProtocolErrors,     S.DroppedConnections, S.QueueDepth,
      S.QueueHighWaterSeen, S.QueueWaitMicrosTotal, S.QueueWaitMicrosMax,
      S.CompileHits,        S.CompileMisses,      S.ArtifactEvictions,
      S.ProfileMerges,      S.ProfileMergeConflicts, S.ProfileAggregations,
      S.ProfileRecords,     S.WarmStarts,         S.LearnedExports,
      S.ActiveConnections,  S.TierTwoCancellations};
  putVar(Out, sizeof(Fields) / sizeof(Fields[0]));
  for (uint64_t Field : Fields)
    putVar(Out, Field);
  putVar(Out, S.Zoo.size());
  for (const ServiceStats::PredictorUsage &Usage : S.Zoo) {
    putString(Out, Usage.Name);
    putVar(Out, Usage.Runs);
    putVar(Out, Usage.Branches);
    putVar(Out, Usage.Mispredictions);
  }
}

bool getStats(Cursor &In, ServiceStats &S) {
  uint64_t Count = In.var();
  if (In.Failed || Count > 1024) {
    In.fail("absurd stats field count");
    return false;
  }
  uint64_t *Fields[] = {
      &S.RequestsAccepted,   &S.RequestsCompleted,  &S.RequestsRejected,
      &S.ProtocolErrors,     &S.DroppedConnections, &S.QueueDepth,
      &S.QueueHighWaterSeen, &S.QueueWaitMicrosTotal, &S.QueueWaitMicrosMax,
      &S.CompileHits,        &S.CompileMisses,      &S.ArtifactEvictions,
      &S.ProfileMerges,      &S.ProfileMergeConflicts, &S.ProfileAggregations,
      &S.ProfileRecords,     &S.WarmStarts,         &S.LearnedExports,
      &S.ActiveConnections,  &S.TierTwoCancellations};
  constexpr size_t Known = sizeof(Fields) / sizeof(Fields[0]);
  for (uint64_t Index = 0; Index < Count && !In.Failed; ++Index) {
    uint64_t Value = In.var();
    if (Index < Known)
      *Fields[Index] = Value;
  }
  uint64_t ZooCount = In.var();
  if (In.Failed || ZooCount > 1024) {
    In.fail("absurd predictor-usage count");
    return false;
  }
  S.Zoo.clear();
  for (uint64_t Index = 0; Index < ZooCount && !In.Failed; ++Index) {
    ServiceStats::PredictorUsage Usage;
    Usage.Name = In.str();
    Usage.Runs = In.var();
    Usage.Branches = In.var();
    Usage.Mispredictions = In.var();
    S.Zoo.push_back(std::move(Usage));
  }
  return !In.Failed;
}

uint64_t fnv1a(const std::string &Data, uint64_t Hash = 1469598103934665603ull) {
  for (unsigned char Byte : Data) {
    Hash ^= Byte;
    Hash *= 1099511628211ull;
  }
  return Hash;
}

} // namespace

const char *bropt::requestKindName(RequestKind Kind) {
  switch (Kind) {
  case RequestKind::Compile:
    return "compile";
  case RequestKind::Execute:
    return "execute";
  case RequestKind::Evaluate:
    return "evaluate";
  case RequestKind::ProfileExport:
    return "profile-export";
  case RequestKind::ProfileMerge:
    return "profile-merge";
  case RequestKind::Stats:
    return "stats";
  case RequestKind::Shutdown:
    return "shutdown";
  }
  return "unknown";
}

const char *bropt::responseStatusName(ResponseStatus Status) {
  switch (Status) {
  case ResponseStatus::Ok:
    return "ok";
  case ResponseStatus::Error:
    return "error";
  case ResponseStatus::Rejected:
    return "rejected";
  case ResponseStatus::ShuttingDown:
    return "shutting-down";
  }
  return "unknown";
}

std::string bropt::encodeRequest(const ServiceRequest &Request) {
  std::string Out;
  Out.push_back(static_cast<char>(Request.Kind));
  putVar(Out, Request.Seq);
  switch (Request.Kind) {
  case RequestKind::Compile:
    putSpec(Out, Request.Spec);
    break;
  case RequestKind::Execute:
    putSpec(Out, Request.Spec);
    putString(Out, Request.Input);
    Out.push_back(static_cast<char>(Request.Mode));
    putVar(Out, Request.InstructionLimit);
    break;
  case RequestKind::Evaluate:
    putString(Out, Request.WorkloadName);
    Out.push_back(static_cast<char>(Request.Spec.HeuristicSet));
    break;
  case RequestKind::ProfileExport:
    putString(Out, Request.ProgramKey);
    break;
  case RequestKind::ProfileMerge:
    putString(Out, Request.ProgramKey);
    putString(Out, Request.ProfileData);
    break;
  case RequestKind::Stats:
  case RequestKind::Shutdown:
    break;
  }
  return Out;
}

bool bropt::decodeRequest(const std::string &Payload, ServiceRequest &Request,
                          std::string *Error) {
  Cursor In(Payload);
  uint8_t Kind = In.byte();
  if (Kind > static_cast<uint8_t>(RequestKind::Shutdown)) {
    if (Error)
      *Error = formatString("unknown request kind %u", Kind);
    return false;
  }
  Request = ServiceRequest();
  Request.Kind = static_cast<RequestKind>(Kind);
  Request.Seq = In.var();
  switch (Request.Kind) {
  case RequestKind::Compile:
    getSpec(In, Request.Spec);
    break;
  case RequestKind::Execute:
    getSpec(In, Request.Spec);
    Request.Input = In.str();
    Request.Mode = In.byte();
    Request.InstructionLimit = In.var();
    break;
  case RequestKind::Evaluate:
    Request.WorkloadName = In.str();
    Request.Spec.HeuristicSet = In.byte();
    break;
  case RequestKind::ProfileExport:
    Request.ProgramKey = In.str();
    break;
  case RequestKind::ProfileMerge:
    Request.ProgramKey = In.str();
    Request.ProfileData = In.str();
    break;
  case RequestKind::Stats:
  case RequestKind::Shutdown:
    break;
  }
  if (In.Failed || !In.done()) {
    if (Error)
      *Error = In.Failed ? In.Reason : "trailing bytes after request";
    return false;
  }
  return true;
}

std::string bropt::encodeResponse(const ServiceResponse &Response) {
  std::string Out;
  Out.push_back(static_cast<char>(Response.Status));
  putVar(Out, Response.Seq);
  putString(Out, Response.Error);
  putVar(Out, Response.RetryAfterMillis);
  putString(Out, Response.ProgramKey);
  putBool(Out, Response.CompileCacheHit);
  putBool(Out, Response.WarmStarted);
  putVar(Out, Response.SequencesReordered);
  putVar(Out, Response.CodeSize);
  putBool(Out, Response.Trapped);
  putString(Out, Response.TrapReason);
  // ZigZag keeps negative exit values to a couple of bytes.
  putVar(Out, (static_cast<uint64_t>(Response.ExitValue) << 1) ^
                  static_cast<uint64_t>(Response.ExitValue >> 63));
  putString(Out, Response.Output);
  putVar(Out, Response.TotalInsts);
  putVar(Out, Response.CondBranches);
  putVar(Out, Response.PredictedBranches);
  putVar(Out, Response.Mispredictions);
  putString(Out, formatString("%.17g", Response.BranchDeltaPercent));
  putBool(Out, Response.OutputsMatch);
  putVar(Out, Response.QueueMicros);
  putString(Out, Response.ProfileData);
  putVar(Out, Response.MergeAdded);
  putVar(Out, Response.MergeMerged);
  putVar(Out, Response.MergeSkipped);
  putStats(Out, Response.Stats);
  return Out;
}

bool bropt::decodeResponse(const std::string &Payload,
                           ServiceResponse &Response, std::string *Error) {
  Cursor In(Payload);
  Response = ServiceResponse();
  uint8_t Status = In.byte();
  if (Status > static_cast<uint8_t>(ResponseStatus::ShuttingDown)) {
    if (Error)
      *Error = formatString("unknown response status %u", Status);
    return false;
  }
  Response.Status = static_cast<ResponseStatus>(Status);
  Response.Seq = In.var();
  Response.Error = In.str();
  Response.RetryAfterMillis = static_cast<uint32_t>(In.var());
  Response.ProgramKey = In.str();
  Response.CompileCacheHit = In.boolean();
  Response.WarmStarted = In.boolean();
  Response.SequencesReordered = static_cast<uint32_t>(In.var());
  Response.CodeSize = In.var();
  Response.Trapped = In.boolean();
  Response.TrapReason = In.str();
  uint64_t ZigZag = In.var();
  Response.ExitValue =
      static_cast<int64_t>((ZigZag >> 1) ^ (~(ZigZag & 1) + 1));
  Response.Output = In.str();
  Response.TotalInsts = In.var();
  Response.CondBranches = In.var();
  Response.PredictedBranches = In.var();
  Response.Mispredictions = In.var();
  Response.BranchDeltaPercent = std::atof(In.str().c_str());
  Response.OutputsMatch = In.boolean();
  Response.QueueMicros = In.var();
  Response.ProfileData = In.str();
  Response.MergeAdded = In.var();
  Response.MergeMerged = In.var();
  Response.MergeSkipped = In.var();
  getStats(In, Response.Stats);
  if (In.Failed || !In.done()) {
    if (Error)
      *Error = In.Failed ? In.Reason : "trailing bytes after response";
    return false;
  }
  return true;
}

bool bropt::writeFrame(int Fd, const std::string &Payload,
                       std::string *Error) {
  uint32_t Length = static_cast<uint32_t>(Payload.size());
  uint8_t Prefix[4] = {static_cast<uint8_t>(Length),
                       static_cast<uint8_t>(Length >> 8),
                       static_cast<uint8_t>(Length >> 16),
                       static_cast<uint8_t>(Length >> 24)};
  std::string Frame(reinterpret_cast<char *>(Prefix), 4);
  Frame += Payload;
  size_t Sent = 0;
  while (Sent < Frame.size()) {
    // MSG_NOSIGNAL: a peer that hung up mid-response must surface as an
    // error on this connection, never as SIGPIPE against the daemon.
    ssize_t Wrote = ::send(Fd, Frame.data() + Sent, Frame.size() - Sent,
                           MSG_NOSIGNAL);
    if (Wrote < 0) {
      if (errno == EINTR)
        continue;
      if (Error)
        *Error = formatString("send: %s", std::strerror(errno));
      return false;
    }
    Sent += static_cast<size_t>(Wrote);
  }
  return true;
}

namespace {

/// Reads exactly \p Length bytes; false on EOF/error.
bool readExact(int Fd, char *Buffer, size_t Length, bool &SawAnyByte,
               std::string *Error) {
  size_t Got = 0;
  while (Got < Length) {
    ssize_t Read = ::recv(Fd, Buffer + Got, Length - Got, 0);
    if (Read < 0) {
      if (errno == EINTR)
        continue;
      if (Error)
        *Error = formatString("recv: %s", std::strerror(errno));
      return false;
    }
    if (Read == 0) {
      if (Error)
        *Error = SawAnyByte ? "connection closed mid-frame" : "eof";
      return false;
    }
    SawAnyByte = true;
    Got += static_cast<size_t>(Read);
  }
  return true;
}

} // namespace

bool bropt::readFrame(int Fd, std::string &Payload, uint32_t MaxBytes,
                      std::string *Error) {
  char Prefix[4];
  bool SawAnyByte = false;
  if (!readExact(Fd, Prefix, 4, SawAnyByte, Error))
    return false;
  uint32_t Length = static_cast<uint8_t>(Prefix[0]) |
                    static_cast<uint32_t>(static_cast<uint8_t>(Prefix[1])) << 8 |
                    static_cast<uint32_t>(static_cast<uint8_t>(Prefix[2])) << 16 |
                    static_cast<uint32_t>(static_cast<uint8_t>(Prefix[3])) << 24;
  if (Length > MaxBytes) {
    if (Error)
      *Error = formatString("oversize frame: %u bytes (limit %u)", Length,
                            MaxBytes);
    return false;
  }
  Payload.resize(Length);
  return Length == 0 ||
         readExact(Fd, Payload.data(), Length, SawAnyByte, Error);
}

std::string bropt::serviceContentHash(const std::string &Data) {
  return formatString("%016llx",
                      static_cast<unsigned long long>(fnv1a(Data)));
}

namespace {

std::string specOptionsTag(const CompileSpec &Spec) {
  return formatString("set=%u;cs=%d;ms=%d;", Spec.HeuristicSet,
                      Spec.CommonSuccessor ? 1 : 0,
                      Spec.MethodSelection ? 1 : 0) +
         "pred=" + Spec.Predictor + ";";
}

} // namespace

std::string bropt::programKeyFor(const CompileSpec &Spec) {
  return serviceContentHash(specOptionsTag(Spec) + Spec.Source);
}

std::string bropt::artifactKeyFor(const CompileSpec &Spec) {
  std::string Tag = specOptionsTag(Spec);
  Tag += formatString("warm=%d;train=%zu;", Spec.WarmStart ? 1 : 0,
                      Spec.TrainingInputs.size());
  for (const std::string &Input : Spec.TrainingInputs)
    Tag += serviceContentHash(Input) + ";";
  Tag += "profile=" + serviceContentHash(Spec.ProfileData) + ";";
  return programKeyFor(Spec) + "-" + serviceContentHash(Tag + Spec.Source);
}
