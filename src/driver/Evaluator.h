//===- driver/Evaluator.h - Parallel cached workload evaluation -*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation harness the bench binaries run on.  It wraps the
/// per-workload pipeline of driver/Report.h with three additions:
///
///  * workloads are compiled and interpreted concurrently on a ThreadPool
///    (one task per workload; compiled modules are immutable during
///    measurement, so concurrent interpretation is safe);
///  * CompileResults are cached across evaluateSet() calls.  Baseline
///    builds depend only on (source, heuristic set) and reordered builds
///    on (source, training input, full options), so the predictor sweeps
///    of Tables 5/6 — which re-evaluate identical builds under many
///    predictor configurations — stop recompiling identical inputs;
///  * every evaluation carries wall-clock records (compile seconds, run
///    seconds, cache hits) so the bench suite's perf trajectory can be
///    tracked across PRs (bench/bench_json.cpp).
///
/// DynamicCounts and PredictorStats never depend on wall clock or thread
/// schedule: interpretation is deterministic, so the records produced here
/// equal the serial path's bit for bit (see docs/SIM.md).
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_DRIVER_EVALUATOR_H
#define BROPT_DRIVER_EVALUATOR_H

#include "codegen/NativeRunner.h"
#include "driver/Report.h"
#include "support/LruCache.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

namespace bropt {

/// Harness configuration.
struct EvaluatorOptions {
  /// Worker threads; 0 means one per hardware thread.
  unsigned Threads = 0;
  /// Cache CompileResults — and decoded/fused programs — across calls
  /// (keyed by source + options, respectively by module identity).
  bool CacheCompiles = true;
  /// Execution engine for every interpreter run.
  Interpreter::Mode Mode = Interpreter::Mode::Fused;
  /// Controller knobs for Mode::Adaptive and Mode::AdaptiveNative (the
  /// latter forces Runtime.NativeTier on); ignored by the other engines.
  RuntimeOptions Runtime;
  /// LRU bounds for the per-module caches (0 = unbounded).  Sized so the
  /// full bench sweep — ~100 distinct modules live at once — fits, while
  /// a long-running process (the ROADMAP's broptd) stays bounded.
  size_t DecodeCacheCapacity = 256;
  size_t AdaptiveCacheCapacity = 256;
  size_t NativeCacheCapacity = 128;
};

/// A WorkloadEvaluation plus the harness-level measurements around it.
struct WorkloadRecord {
  WorkloadEvaluation Eval;
  double CompileSeconds = 0.0; ///< baseline + reordered compiles (0 if cached)
  double DecodeSeconds = 0.0;  ///< decode/fuse of both builds (0 if cached)
  double RunSeconds = 0.0;     ///< interpretation of both builds
  bool BaselineCacheHit = false;
  bool ReorderedCacheHit = false;
  bool BaselineDecodeHit = false;
  bool ReorderedDecodeHit = false;
  /// Mode::Adaptive only: the builds' controllers came from the cache
  /// (their accumulated profile state carried over into this evaluation).
  bool BaselineAdaptiveHit = false;
  bool ReorderedAdaptiveHit = false;
  /// Mode::Native only: the builds' shared objects came from the cache.
  bool BaselineNativeHit = false;
  bool ReorderedNativeHit = false;
  /// Mode::Native only: emit + host-compiler + dlopen time (0 if cached).
  double NativeCompileSeconds = 0.0;
};

/// Aggregate cache counters (monotonic over the Evaluator's lifetime).
struct EvaluatorStats {
  uint64_t BaselineHits = 0;
  uint64_t BaselineMisses = 0;
  uint64_t ReorderedHits = 0;
  uint64_t ReorderedMisses = 0;
  /// Decoded/fused-program cache: configurations sharing a module reuse
  /// one prepared program instead of re-decoding per evaluation.
  uint64_t DecodeHits = 0;
  uint64_t DecodeMisses = 0;
  /// Adaptive-controller cache (Mode::Adaptive).  A hit re-enters a live
  /// controller — its profile and published versions carry over; distinct
  /// from DecodeHits because what is reused is evolving tiering state,
  /// not an immutable program.
  uint64_t AdaptiveHits = 0;
  uint64_t AdaptiveMisses = 0;
  /// Optimized builds cached controllers published *beyond* their tier-up
  /// build — i.e. drift-triggered re-fusions of an evolving profile, not
  /// plain cache hits serving an unchanged stream.
  uint64_t AdaptiveReFusions = 0;
  /// Mode::AdaptiveNative: native bodies activated across all cached
  /// controllers (fresh builds and cache re-activations alike), and drift
  /// de-optimizations back to the fused tier.
  uint64_t AdaptiveNativePromotions = 0;
  uint64_t AdaptiveNativeDeopts = 0;
  /// Native `.so` cache (Mode::Native): compiled shared objects keyed by
  /// module identity; the source hash underneath embodies the ordering
  /// signature, so a reordered build never serves a baseline request.
  uint64_t NativeHits = 0;
  uint64_t NativeMisses = 0;
  /// LRU evictions per cache (EvaluatorOptions::*CacheCapacity).
  uint64_t DecodeEvictions = 0;
  uint64_t AdaptiveEvictions = 0;
  uint64_t NativeEvictions = 0;
};

/// Compiles and evaluates workloads concurrently with compile caching.
/// One Evaluator is meant to live for a whole bench process so the cache
/// spans every sweep.  Concurrency contract: the caches are mutex-guarded
/// and the stats counters are relaxed atomics, so evaluateWorkload() and
/// stats() are safe from concurrent callers in the immutable-program
/// modes (tree/decoded/fused/native) — broptd serves Evaluate requests
/// from its worker pool this way.  The adaptive modes reuse *stateful*
/// controllers across calls and one controller must not run two
/// interpreters at once, so adaptive-mode evaluations sharing a module
/// must still be serialized by the caller.
class Evaluator {
public:
  explicit Evaluator(EvaluatorOptions Options = {});

  const EvaluatorOptions &options() const { return Options; }
  EvaluatorStats stats() const;

  /// Evaluates one workload, reusing cached compiles when possible.
  WorkloadRecord
  evaluateWorkload(const Workload &W, const CompileOptions &Options,
                   const std::optional<PredictorConfig> &Predictor =
                       std::nullopt);

  /// Evaluates \p Workloads concurrently, preserving input order.
  std::vector<WorkloadRecord> evaluateWorkloads(
      const std::vector<Workload> &Workloads, const CompileOptions &Options,
      const std::optional<PredictorConfig> &Predictor = std::nullopt);

  /// Evaluates every standard workload concurrently (records form).
  std::vector<WorkloadRecord> evaluateAllRecorded(
      const CompileOptions &Options,
      const std::optional<PredictorConfig> &Predictor = std::nullopt);

  /// Drop-in replacement for evaluateAllWorkloads(): every standard
  /// workload, concurrently, without the harness-level records.
  std::vector<WorkloadEvaluation> evaluateAll(
      const CompileOptions &Options,
      const std::optional<PredictorConfig> &Predictor = std::nullopt);

  /// Empties the compile cache (counters keep accumulating).
  void clearCache();

private:
  std::shared_ptr<const CompileResult>
  baselineFor(const Workload &W, const CompileOptions &Options, bool &Hit,
              double &Seconds);
  std::shared_ptr<const CompileResult>
  reorderedFor(const Workload &W, const CompileOptions &Options, bool &Hit,
               double &Seconds);
  std::shared_ptr<const DecodedModule>
  preparedFor(const std::shared_ptr<const CompileResult> &Compiled,
              const std::string *ProfileText, bool &Hit, double &Seconds);
  std::shared_ptr<AdaptiveController>
  controllerFor(const std::shared_ptr<const CompileResult> &Compiled,
                bool &Hit, double &Seconds);
  std::shared_ptr<const NativeProgram>
  nativeFor(const std::shared_ptr<const CompileResult> &Compiled, bool &Hit,
            double &Seconds, std::string &Error);

  EvaluatorOptions Options;
  ThreadPool Pool;

  mutable std::mutex CacheMutex;
  // Keys embed the full source text: no hash collisions, and the map stays
  // tiny (17 workloads x a few option signatures).
  std::map<std::string, std::shared_ptr<const CompileResult>> BaselineCache;
  std::map<std::string, std::shared_ptr<const CompileResult>> ReorderedCache;

  // Prepared (decoded or fused) programs keyed by module identity, so
  // predictor sweeps that re-evaluate one build under many configurations
  // decode it once.  Each entry pins its CompileResult so the key can
  // never dangle or be recycled while cached.  All three per-module
  // caches are LRU-bounded; eviction mid-use is safe because callers hold
  // shared_ptrs and the (unbounded, tiny) compile caches anchor Module
  // identity against ABA reuse.
  struct PreparedEntry {
    std::shared_ptr<const CompileResult> KeepAlive;
    std::shared_ptr<const DecodedModule> Program;
  };
  LruCache<const Module *, PreparedEntry> DecodeCache;

  // Live adaptive controllers, also keyed (and pinned) by module identity.
  // Unlike DecodeCache entries these are stateful: a cache hit resumes the
  // controller's accumulated profile, so the workload's second evaluation
  // starts already tiered.  One controller must not run two interpreters
  // at once; evaluateWorkloads only shares a module across *serial* calls,
  // which is the granularity the cache is reused at.
  struct AdaptiveEntry {
    std::shared_ptr<const CompileResult> KeepAlive;
    std::shared_ptr<AdaptiveController> Controller;
  };
  LruCache<const Module *, AdaptiveEntry> AdaptiveCache;

  // Compiled shared objects (Mode::Native), keyed and pinned the same
  // way.  Sits in front of NativeRunner's process-wide source-hash cache:
  // a hit here skips even re-emitting the C.
  struct NativeEntry {
    std::shared_ptr<const CompileResult> KeepAlive;
    std::shared_ptr<const NativeProgram> Program;
  };
  LruCache<const Module *, NativeEntry> NativeCache;

  // Counter updates are relaxed atomics rather than plain fields guarded
  // by CacheMutex: cache-hit bookkeeping must stay safe even where a
  // fast path reads the cache without holding the lock, and stats() can
  // snapshot mid-evaluation without tearing.  Monotonic counts only —
  // no cross-counter invariant needs more than relaxed ordering.
  struct AtomicCounters {
    std::atomic<uint64_t> BaselineHits{0};
    std::atomic<uint64_t> BaselineMisses{0};
    std::atomic<uint64_t> ReorderedHits{0};
    std::atomic<uint64_t> ReorderedMisses{0};
    std::atomic<uint64_t> DecodeHits{0};
    std::atomic<uint64_t> DecodeMisses{0};
    std::atomic<uint64_t> AdaptiveHits{0};
    std::atomic<uint64_t> AdaptiveMisses{0};
    std::atomic<uint64_t> AdaptiveReFusions{0};
    std::atomic<uint64_t> AdaptiveNativePromotions{0};
    std::atomic<uint64_t> AdaptiveNativeDeopts{0};
    std::atomic<uint64_t> NativeHits{0};
    std::atomic<uint64_t> NativeMisses{0};
  };
  mutable AtomicCounters Counters;
};

} // namespace bropt

#endif // BROPT_DRIVER_EVALUATOR_H
