//===- driver/Evaluator.cpp - Parallel cached workload evaluation ---------===//

#include "driver/Evaluator.h"

#include "predict/Zoo.h"
#include "profile/ProfileDB.h"
#include "sim/Fuse.h"
#include "support/Strings.h"

#include <chrono>

using namespace bropt;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Stable textual signature of everything a baseline compile depends on.
std::string baselineKey(const Workload &W, const CompileOptions &Options) {
  return formatString("set=%d;src=", static_cast<int>(Options.HeuristicSet)) +
         W.Source;
}

/// Stable textual signature of everything a reordered compile depends on.
/// Every BranchCostModel field and the targeted predictor are part of the
/// key: two compiles differing only in cost calibration must never share a
/// cached module.
std::string reorderedKey(const Workload &W, const CompileOptions &Options) {
  const ReorderOptions &R = Options.Reorder;
  return formatString(
             "set=%d;cs=%d;dup=%d;f4=%d;ex=%d;min=%llu;clone=%zu;ms=%d;"
             "span=%llu;tree=%d;pgl=%d;cmp=%g;takenx=%g;ijmp=%g;margin=%g;"
             "mp=%g;q=%g;",
             static_cast<int>(Options.HeuristicSet),
             Options.EnableCommonSuccessorReordering ? 1 : 0,
             R.DuplicateDefaultTarget ? 1 : 0, R.OrderFormFourBranches ? 1 : 0,
             R.UseExhaustiveSelection ? 1 : 0,
             static_cast<unsigned long long>(R.MinExecutions),
             R.MaxDefaultCloneInsts, R.EnableMethodSelection ? 1 : 0,
             static_cast<unsigned long long>(R.MaxTableSpan),
             R.UseOptimalTree ? 1 : 0, R.ProfileGuidedLayout ? 1 : 0,
             R.Cost.CompareCost, R.Cost.TakenBranchExtra,
             R.Cost.IndirectJumpCost, R.Cost.JumpTableMargin,
             R.Cost.MispredictPenalty, R.Cost.PredictorQuality) +
         "pred=" + Options.Predictor +
         formatString(";train=%zu;", W.TrainingInput.size()) +
         W.TrainingInput + ";src=" + W.Source;
}

} // namespace

Evaluator::Evaluator(EvaluatorOptions Options)
    : Options(Options), Pool(Options.Threads),
      DecodeCache(Options.DecodeCacheCapacity),
      AdaptiveCache(Options.AdaptiveCacheCapacity),
      NativeCache(Options.NativeCacheCapacity) {}

EvaluatorStats Evaluator::stats() const {
  EvaluatorStats S;
  S.BaselineHits = Counters.BaselineHits.load(std::memory_order_relaxed);
  S.BaselineMisses =
      Counters.BaselineMisses.load(std::memory_order_relaxed);
  S.ReorderedHits = Counters.ReorderedHits.load(std::memory_order_relaxed);
  S.ReorderedMisses =
      Counters.ReorderedMisses.load(std::memory_order_relaxed);
  S.DecodeHits = Counters.DecodeHits.load(std::memory_order_relaxed);
  S.DecodeMisses = Counters.DecodeMisses.load(std::memory_order_relaxed);
  S.AdaptiveHits = Counters.AdaptiveHits.load(std::memory_order_relaxed);
  S.AdaptiveMisses =
      Counters.AdaptiveMisses.load(std::memory_order_relaxed);
  S.AdaptiveReFusions =
      Counters.AdaptiveReFusions.load(std::memory_order_relaxed);
  S.AdaptiveNativePromotions =
      Counters.AdaptiveNativePromotions.load(std::memory_order_relaxed);
  S.AdaptiveNativeDeopts =
      Counters.AdaptiveNativeDeopts.load(std::memory_order_relaxed);
  S.NativeHits = Counters.NativeHits.load(std::memory_order_relaxed);
  S.NativeMisses = Counters.NativeMisses.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(CacheMutex);
  // Re-fusions live inside the controllers; count every optimized build
  // beyond a controller's tier-up build as a re-fusion of its evolving
  // profile.  Evicted controllers were folded into Counters already.
  for (const auto &[Key, Entry] : AdaptiveCache) {
    const RuntimeStats Runtime = Entry.Controller->stats();
    if (Runtime.Recompiles > 1)
      S.AdaptiveReFusions += Runtime.Recompiles - 1;
    S.AdaptiveNativePromotions += Runtime.NativeTierUps;
    S.AdaptiveNativeDeopts += Runtime.NativeDeopts;
  }
  S.DecodeEvictions = DecodeCache.evictions();
  S.AdaptiveEvictions = AdaptiveCache.evictions();
  S.NativeEvictions = NativeCache.evictions();
  return S;
}

void Evaluator::clearCache() {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  BaselineCache.clear();
  ReorderedCache.clear();
  DecodeCache.clear();
  AdaptiveCache.clear();
  NativeCache.clear();
}

std::shared_ptr<const DecodedModule>
Evaluator::preparedFor(const std::shared_ptr<const CompileResult> &Compiled,
                       const std::string *ProfileText, bool &Hit,
                       double &Seconds) {
  const Module *Key = Compiled->M.get();
  if (Options.CacheCompiles) {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    if (auto *Entry = DecodeCache.get(Key)) {
      Counters.DecodeHits.fetch_add(1, std::memory_order_relaxed);
      Hit = true;
      return Entry->Program;
    }
  }
  auto Start = std::chrono::steady_clock::now();
  std::shared_ptr<const DecodedModule> Program;
  if (Options.Mode == Interpreter::Mode::Fused) {
    // The fused engine dogfoods the paper's own profile: arm execution
    // order inside MultiCmp superinstructions follows the pass-1 counts
    // when the caller has them (observables are unaffected either way).
    FuseOptions FO;
    ProfileDB Profile;
    if (ProfileText && !ProfileText->empty() &&
        Profile.deserialize(*ProfileText))
      FO.Profile = &Profile;
    Program = std::make_shared<DecodedModule>(decodeFused(*Key, FO));
  } else {
    Program = std::make_shared<DecodedModule>(DecodedModule::decode(*Key));
  }
  Seconds += secondsSince(Start);
  Hit = false;
  if (Options.CacheCompiles) {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    // Two threads can race to the first decode of one module; keep the
    // winner so every caller shares a single prepared program.
    if (auto *Entry = DecodeCache.get(Key))
      return Entry->Program;
    Counters.DecodeMisses.fetch_add(1, std::memory_order_relaxed);
    DecodeCache.put(Key, PreparedEntry{Compiled, Program});
  }
  return Program;
}

std::shared_ptr<AdaptiveController>
Evaluator::controllerFor(const std::shared_ptr<const CompileResult> &Compiled,
                         bool &Hit, double &Seconds) {
  const Module *Key = Compiled->M.get();
  if (Options.CacheCompiles) {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    if (auto *Entry = AdaptiveCache.get(Key)) {
      Counters.AdaptiveHits.fetch_add(1, std::memory_order_relaxed);
      Hit = true;
      return Entry->Controller;
    }
  }
  auto Start = std::chrono::steady_clock::now();
  RuntimeOptions RO = Options.Runtime;
  if (Options.Mode == Interpreter::Mode::AdaptiveNative)
    RO.NativeTier = true;
  auto Controller = std::make_shared<AdaptiveController>(*Key, RO);
  Seconds += secondsSince(Start);
  Hit = false;
  if (Options.CacheCompiles) {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    if (auto *Entry = AdaptiveCache.get(Key))
      return Entry->Controller;
    Counters.AdaptiveMisses.fetch_add(1, std::memory_order_relaxed);
    if (auto Evicted = AdaptiveCache.put(Key, AdaptiveEntry{Compiled,
                                                            Controller})) {
      // Keep the evicted controller's re-fusion and tiering history in the
      // aggregate counters; stats() can no longer walk it.
      const RuntimeStats Runtime = Evicted->Controller->stats();
      if (Runtime.Recompiles > 1)
        Counters.AdaptiveReFusions.fetch_add(Runtime.Recompiles - 1, std::memory_order_relaxed);
      Counters.AdaptiveNativePromotions.fetch_add(Runtime.NativeTierUps, std::memory_order_relaxed);
      Counters.AdaptiveNativeDeopts.fetch_add(Runtime.NativeDeopts, std::memory_order_relaxed);
    }
  }
  return Controller;
}

std::shared_ptr<const NativeProgram>
Evaluator::nativeFor(const std::shared_ptr<const CompileResult> &Compiled,
                     bool &Hit, double &Seconds, std::string &Error) {
  const Module *Key = Compiled->M.get();
  if (Options.CacheCompiles) {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    if (auto *Entry = NativeCache.get(Key)) {
      Counters.NativeHits.fetch_add(1, std::memory_order_relaxed);
      Hit = true;
      return Entry->Program;
    }
  }
  auto Start = std::chrono::steady_clock::now();
  std::string CompileError;
  std::shared_ptr<const NativeProgram> Program =
      NativeRunner::shared().prepare(*Compiled->M, &CompileError);
  Seconds += secondsSince(Start);
  Hit = false;
  if (!Program) {
    Error = "native compile failed: " + CompileError;
    return nullptr;
  }
  if (Options.CacheCompiles) {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    if (auto *Entry = NativeCache.get(Key))
      return Entry->Program;
    Counters.NativeMisses.fetch_add(1, std::memory_order_relaxed);
    NativeCache.put(Key, NativeEntry{Compiled, Program});
  }
  return Program;
}

std::shared_ptr<const CompileResult>
Evaluator::baselineFor(const Workload &W, const CompileOptions &CompileOpts,
                       bool &Hit, double &Seconds) {
  std::string Key;
  if (Options.CacheCompiles) {
    Key = baselineKey(W, CompileOpts);
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto It = BaselineCache.find(Key);
    if (It != BaselineCache.end()) {
      Counters.BaselineHits.fetch_add(1, std::memory_order_relaxed);
      Hit = true;
      return It->second;
    }
  }
  auto Start = std::chrono::steady_clock::now();
  auto Result = std::make_shared<CompileResult>(
      compileBaseline(W.Source, CompileOpts));
  Seconds += secondsSince(Start);
  Hit = false;
  if (Options.CacheCompiles) {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    Counters.BaselineMisses.fetch_add(1, std::memory_order_relaxed);
    BaselineCache.emplace(std::move(Key), Result);
  }
  return Result;
}

std::shared_ptr<const CompileResult>
Evaluator::reorderedFor(const Workload &W, const CompileOptions &CompileOpts,
                        bool &Hit, double &Seconds) {
  std::string Key;
  if (Options.CacheCompiles) {
    Key = reorderedKey(W, CompileOpts);
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto It = ReorderedCache.find(Key);
    if (It != ReorderedCache.end()) {
      Counters.ReorderedHits.fetch_add(1, std::memory_order_relaxed);
      Hit = true;
      return It->second;
    }
  }
  auto Start = std::chrono::steady_clock::now();
  auto Result = std::make_shared<CompileResult>(
      compileWithReordering(W.Source, W.TrainingInput, CompileOpts));
  Seconds += secondsSince(Start);
  Hit = false;
  if (Options.CacheCompiles) {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    Counters.ReorderedMisses.fetch_add(1, std::memory_order_relaxed);
    ReorderedCache.emplace(std::move(Key), Result);
  }
  return Result;
}

WorkloadRecord
Evaluator::evaluateWorkload(const Workload &W,
                            const CompileOptions &CompileOpts,
                            const std::optional<PredictorConfig> &Predictor) {
  WorkloadRecord Record;
  WorkloadEvaluation &Eval = Record.Eval;
  Eval.Name = W.Name;

  std::shared_ptr<const CompileResult> Baseline = baselineFor(
      W, CompileOpts, Record.BaselineCacheHit, Record.CompileSeconds);
  if (!Baseline->ok()) {
    Eval.Error = W.Name + ": baseline compile failed: " + Baseline->Error;
    return Record;
  }
  std::shared_ptr<const CompileResult> Reordered = reorderedFor(
      W, CompileOpts, Record.ReorderedCacheHit, Record.CompileSeconds);
  if (!Reordered->ok()) {
    Eval.Error = W.Name + ": reordering compile failed: " + Reordered->Error;
    return Record;
  }
  Eval.Stats = Reordered->Stats;
  Eval.SwitchStats = Reordered->SwitchStats;

  // Fuse each build once per module, not once per evaluation.  The
  // baseline build is fused against the reordered compile's pass-1
  // profile so even the unreordered code gets profile-guided arm ordering
  // at the engine level (sequence ids line up because compilation is
  // deterministic — the same property pass 2 relies on).  The plain
  // decoded engine stays exactly the PR-1 stack — per-run self-decode —
  // so bench comparisons against it measure this PR's whole engine side.
  std::shared_ptr<const DecodedModule> BaselinePrepared, ReorderedPrepared;
  if (Options.Mode == Interpreter::Mode::Fused) {
    BaselinePrepared =
        preparedFor(Baseline, &Reordered->ProfileText,
                    Record.BaselineDecodeHit, Record.DecodeSeconds);
    ReorderedPrepared = preparedFor(Reordered, nullptr,
                                    Record.ReorderedDecodeHit,
                                    Record.DecodeSeconds);
  }
  // The adaptive engine carries its own evolving program versions inside a
  // cached controller; the immutable DecodeCache is deliberately not used
  // (it could only ever serve a stale fused stream).
  std::shared_ptr<AdaptiveController> BaselineCtl, ReorderedCtl;
  if (Options.Mode == Interpreter::Mode::Adaptive ||
      Options.Mode == Interpreter::Mode::AdaptiveNative) {
    BaselineCtl = controllerFor(Baseline, Record.BaselineAdaptiveHit,
                                Record.DecodeSeconds);
    ReorderedCtl = controllerFor(Reordered, Record.ReorderedAdaptiveHit,
                                 Record.DecodeSeconds);
  }
  // Native builds AOT-compile each module once; the cached `.so` is keyed
  // by module identity and its source hash embodies the block ordering,
  // so baseline and reordered builds always get distinct machine code.
  std::shared_ptr<const NativeProgram> BaselineNative, ReorderedNative;
  if (Options.Mode == Interpreter::Mode::Native) {
    std::string NativeError;
    BaselineNative = nativeFor(Baseline, Record.BaselineNativeHit,
                               Record.NativeCompileSeconds, NativeError);
    if (!BaselineNative) {
      Eval.Error = W.Name + ": " + NativeError;
      return Record;
    }
    ReorderedNative = nativeFor(Reordered, Record.ReorderedNativeHit,
                                Record.NativeCompileSeconds, NativeError);
    if (!ReorderedNative) {
      Eval.Error = W.Name + ": " + NativeError;
      return Record;
    }
  }

  // An explicit (m,n) config wins; otherwise a compile that targets a zoo
  // predictor is also *measured* under it.  One fresh instance per build:
  // cached modules are shared across evaluations, predictor state never is.
  auto measure = [&](const Module &M, const DecodedModule *Prepared,
                     AdaptiveController *Controller,
                     const NativeProgram *Native) {
    if (!Predictor && !CompileOpts.Predictor.empty()) {
      std::unique_ptr<class Predictor> Zoo =
          makePredictor(CompileOpts.Predictor);
      if (Zoo)
        return measureBuild(M, W.TestInput, Zoo.get(), Eval.Error,
                            Options.Mode, Prepared, Controller, Native);
    }
    return measureBuild(M, W.TestInput, Predictor, Eval.Error,
                        Options.Mode, Prepared, Controller, Native);
  };
  auto RunStart = std::chrono::steady_clock::now();
  Eval.Baseline = measure(*Baseline->M, BaselinePrepared.get(),
                          BaselineCtl.get(), BaselineNative.get());
  if (!Eval.ok()) {
    Record.RunSeconds = secondsSince(RunStart);
    return Record;
  }
  Eval.Reordered = measure(*Reordered->M, ReorderedPrepared.get(),
                           ReorderedCtl.get(), ReorderedNative.get());
  Record.RunSeconds = secondsSince(RunStart);
  if (!Eval.ok())
    return Record;

  Eval.OutputsMatch = Eval.Baseline.Output == Eval.Reordered.Output &&
                      Eval.Baseline.ExitValue == Eval.Reordered.ExitValue;
  if (!Eval.OutputsMatch)
    Eval.Error = W.Name + ": baseline and reordered outputs differ";
  return Record;
}

std::vector<WorkloadRecord> Evaluator::evaluateWorkloads(
    const std::vector<Workload> &Workloads, const CompileOptions &CompileOpts,
    const std::optional<PredictorConfig> &Predictor) {
  std::vector<WorkloadRecord> Records(Workloads.size());
  std::vector<std::future<void>> Pending;
  Pending.reserve(Workloads.size());
  for (size_t Index = 0; Index < Workloads.size(); ++Index)
    Pending.push_back(Pool.submit([this, &Workloads, &Records, &CompileOpts,
                                   &Predictor, Index] {
      Records[Index] =
          evaluateWorkload(Workloads[Index], CompileOpts, Predictor);
    }));
  for (std::future<void> &Future : Pending)
    Future.get();
  return Records;
}

std::vector<WorkloadRecord> Evaluator::evaluateAllRecorded(
    const CompileOptions &CompileOpts,
    const std::optional<PredictorConfig> &Predictor) {
  return evaluateWorkloads(standardWorkloads(), CompileOpts, Predictor);
}

std::vector<WorkloadEvaluation>
Evaluator::evaluateAll(const CompileOptions &CompileOpts,
                       const std::optional<PredictorConfig> &Predictor) {
  std::vector<WorkloadRecord> Records =
      evaluateAllRecorded(CompileOpts, Predictor);
  std::vector<WorkloadEvaluation> Evals;
  Evals.reserve(Records.size());
  for (WorkloadRecord &Record : Records)
    Evals.push_back(std::move(Record.Eval));
  return Evals;
}
