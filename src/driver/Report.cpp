//===- driver/Report.cpp - Workload evaluation for the benches ------------===//

#include "driver/Report.h"

#include "cost/MachineModel.h"

using namespace bropt;

double WorkloadEvaluation::deltaPercent(uint64_t Before, uint64_t After) {
  if (Before == 0)
    return 0.0;
  return 100.0 *
         (static_cast<double>(After) - static_cast<double>(Before)) /
         static_cast<double>(Before);
}

BuildMeasurement
bropt::measureBuild(const Module &M, std::string_view TestInput,
                    Predictor *AttachedPredictor, std::string &Error,
                    Interpreter::Mode Mode, const DecodedModule *Prepared,
                    AdaptiveController *Adaptive,
                    const NativeProgram *Native) {
  BuildMeasurement Result;
  Result.CodeSize = M.codeSize();

  ExecRequest Req;
  Req.Input = TestInput;
  Req.Prepared = Prepared;
  Req.Adaptive = Adaptive;
  Req.Native = Native;
  Req.AttachedPredictor = AttachedPredictor;
  RunResult Run = executeModule(M, Mode, Req);
  if (Adaptive) {
    Adaptive->drainBackgroundWork();
    Result.Runtime = Adaptive->stats();
  }
  if (Run.Trapped) {
    Error = "test run trapped: " + Run.TrapReason;
    return Result;
  }
  Result.Counts = Run.Counts;
  Result.Output = std::move(Run.Output);
  Result.ExitValue = Run.ExitValue;
  if (AttachedPredictor)
    Result.Mispredictions = AttachedPredictor->getStats().Mispredictions;
  Result.CyclesIPC = computeCycles(MachineModel::sparcIPCLike(), Run.Counts,
                                   Result.Mispredictions);
  Result.CyclesUltra = computeCycles(MachineModel::sparcUltraLike(),
                                     Run.Counts, Result.Mispredictions);
  return Result;
}

BuildMeasurement
bropt::measureBuild(const Module &M, std::string_view TestInput,
                    const std::optional<PredictorConfig>
                        &PredictorConfiguration,
                    std::string &Error, Interpreter::Mode Mode,
                    const DecodedModule *Prepared,
                    AdaptiveController *Adaptive,
                    const NativeProgram *Native) {
  // One fresh predictor per measurement: state and statistics must never
  // leak between builds (the isolation contract the predictor tests pin).
  std::optional<BranchPredictor> Predictor;
  if (PredictorConfiguration)
    Predictor.emplace(*PredictorConfiguration);
  return measureBuild(M, TestInput, Predictor ? &*Predictor : nullptr,
                      Error, Mode, Prepared, Adaptive, Native);
}

WorkloadEvaluation
bropt::evaluateWorkload(const Workload &W, const CompileOptions &Options,
                        const std::optional<PredictorConfig> &Predictor) {
  WorkloadEvaluation Eval;
  Eval.Name = W.Name;

  CompileResult Baseline = compileBaseline(W.Source, Options);
  if (!Baseline.ok()) {
    Eval.Error = W.Name + ": baseline compile failed: " + Baseline.Error;
    return Eval;
  }
  CompileResult Reordered =
      compileWithReordering(W.Source, W.TrainingInput, Options);
  if (!Reordered.ok()) {
    Eval.Error = W.Name + ": reordering compile failed: " + Reordered.Error;
    return Eval;
  }
  Eval.Stats = Reordered.Stats;
  Eval.SwitchStats = Reordered.SwitchStats;

  Eval.Baseline = measureBuild(*Baseline.M, W.TestInput, Predictor,
                               Eval.Error);
  if (!Eval.ok())
    return Eval;
  Eval.Reordered = measureBuild(*Reordered.M, W.TestInput, Predictor,
                                Eval.Error);
  if (!Eval.ok())
    return Eval;

  Eval.OutputsMatch = Eval.Baseline.Output == Eval.Reordered.Output &&
                      Eval.Baseline.ExitValue == Eval.Reordered.ExitValue;
  if (!Eval.OutputsMatch)
    Eval.Error = W.Name + ": baseline and reordered outputs differ";
  return Eval;
}

std::vector<WorkloadEvaluation> bropt::evaluateAllWorkloads(
    const CompileOptions &Options,
    const std::optional<PredictorConfig> &Predictor) {
  std::vector<WorkloadEvaluation> Evals;
  for (const Workload &W : standardWorkloads())
    Evals.push_back(evaluateWorkload(W, Options, Predictor));
  return Evals;
}
