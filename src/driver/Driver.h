//===- driver/Driver.h - The two-pass compilation pipeline ------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the compilation process of paper Figure 2:
///
///   pass 1: front end -> conventional optimizations + switch lowering ->
///           detect reorderable sequences -> instrument -> run on the
///           training input -> profile data
///   pass 2: recompile identically -> re-detect (ids match because
///           compilation is deterministic) -> select orderings from the
///           profile -> restructure -> clean up and finalize layout
///
/// compileBaseline() runs the same pipeline with reordering disabled; the
/// benches diff the two against identical test inputs.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_DRIVER_DRIVER_H
#define BROPT_DRIVER_DRIVER_H

#include "core/CommonSuccessor.h"
#include "core/Reorder.h"
#include "core/SequenceDetection.h"
#include "opt/SwitchLowering.h"
#include "profile/ProfileDB.h"

#include <memory>
#include <string>
#include <string_view>

namespace bropt {

/// Pipeline configuration.
struct CompileOptions {
  SwitchHeuristicSet HeuristicSet = SwitchHeuristicSet::SetI;
  ReorderOptions Reorder;
  /// §10 extension: also profile and reorder common-successor branch
  /// sequences (Figure 14).
  bool EnableCommonSuccessorReordering = false;
  /// Misprediction-aware selection (docs/PREDICT.md): the zoo name of the
  /// predictor the compile targets (`broptc --predictor`).  Non-empty:
  /// pass 1 additionally measures per-branch mispredictions under this
  /// predictor into the ProfileKind::Misprediction plane, and pass 2
  /// calibrates Reorder.Cost from the imported plane so shape selection
  /// (chain vs tree vs table) minimizes expected cycles including the
  /// mispredict charge.  Empty (default): the cost model stays
  /// prediction-unaware and every decision is bit-identical to before.
  std::string Predictor;
};

/// Cycles one mispredicted branch costs in the shape-selection model when
/// a predictor is targeted — MachineModel::sparcUltraLike's penalty, the
/// machine the paper measured prediction on.
inline constexpr double DefaultMispredictPenalty = 4.0;

/// Everything the evaluation wants to know about one compilation.
struct CompileResult {
  std::unique_ptr<Module> M;
  /// Empty on success; front-end or pipeline diagnostics otherwise.
  std::string Error;
  SwitchLoweringStats SwitchStats;
  /// Sequence statistics (zeroed for baseline compiles).
  ReorderStats Stats;
  /// §10 common-successor statistics (zeroed unless enabled).
  CommonSuccessorStats CommonStats;
  /// Serialized profile collected by pass 1 (empty for baseline).
  std::string ProfileText;
  /// Per reordered sequence (branches before, after) lives in Stats.

  bool ok() const { return Error.empty(); }
};

/// The reorder options pass 2 actually runs with: \p Options.Reorder plus
/// the Set IV preset (optimal trees + method selection) and, when a
/// predictor is targeted, the armed mispredict charge.  Exposed so callers
/// that rebuild outside the driver — the adaptive runtime's tier-2, the
/// benches — select shapes under the same model.
ReorderOptions effectiveReorderOptions(const CompileOptions &Options);

/// Compiles without the reordering transformation: front end, switch
/// lowering under \p Options.HeuristicSet, conventional optimizations,
/// final layout.  This is the paper's "Original" measurement build.
CompileResult compileBaseline(std::string_view Source,
                              const CompileOptions &Options);

/// Pass 1 only: returns the instrumented module and, after running it on
/// \p TrainingInput, the profile.  Exposed for tests; most callers use
/// compileWithReordering.
struct Pass1Result {
  std::unique_ptr<Module> M;
  std::string Error;
  std::vector<RangeSequence> Sequences;
  std::vector<CommonSuccessorSequence> CommonSequences;
  ProfileDB Profile;
  SwitchLoweringStats SwitchStats;
  bool ok() const { return Error.empty(); }
};
Pass1Result runPass1(std::string_view Source, std::string_view TrainingInput,
                     const CompileOptions &Options);

/// Pass 1 over several training data sets: the instrumented binary runs
/// once per input and the counters accumulate.  The paper (§9) points out
/// that multiple training sets raise the fraction of detected sequences
/// that actually get reordered.
Pass1Result runPass1(std::string_view Source,
                     const std::vector<std::string_view> &TrainingInputs,
                     const CompileOptions &Options);

/// The full two-pass pipeline: profile on \p TrainingInput, then recompile
/// with reordering applied.
CompileResult compileWithReordering(std::string_view Source,
                                    std::string_view TrainingInput,
                                    const CompileOptions &Options);

/// Two-pass pipeline over several training data sets.
CompileResult
compileWithReordering(std::string_view Source,
                      const std::vector<std::string_view> &TrainingInputs,
                      const CompileOptions &Options);

/// Pass 2 only: recompiles \p Source and selects orderings from an
/// existing profile — loaded from disk (`broptc --profile-in`), merged
/// from several training runs, or exported by the adaptive runtime.
/// Records are matched by (function, ordinal) with signature validation,
/// so a profile saved against different source degrades to diagnosed
/// skips, never to wrong orderings.
CompileResult compileWithProfile(std::string_view Source,
                                 const ProfileDB &Profile,
                                 const CompileOptions &Options);

/// Profile-guided layout from a fresh measurement: runs \p Result's module
/// on \p Inputs with the edge callback installed, applies the ext-TSP
/// layout from the measured weights (opt/Passes.h), exports the weights
/// into \p Profile, and refreshes Result.ProfileText — so a saved profile
/// reproduces the layout offline via compileWithProfile.  No-op (returns
/// false) when Result already failed or layout is disabled in \p Options.
/// compileWithReordering calls this itself; broptc calls it after a
/// --train compile.
bool applyMeasuredLayout(CompileResult &Result,
                         const std::vector<std::string_view> &Inputs,
                         ProfileDB &Profile, const CompileOptions &Options);

} // namespace bropt

#endif // BROPT_DRIVER_DRIVER_H
