//===- driver/Driver.cpp - The two-pass compilation pipeline --------------===//

#include "driver/Driver.h"

#include "core/Instrumentation.h"

#include <unordered_set>
#include "exec/ExecBackend.h"
#include "ir/Verifier.h"
#include "lang/Lowering.h"
#include "opt/Passes.h"
#include "predict/Zoo.h"
#include "profile/MispredictProfile.h"
#include "sim/Interpreter.h"

using namespace bropt;

/// Set IV is a driver-level preset: the Set III shape classification (in
/// opt/SwitchLowering) plus optimal-tree lowering and method selection in
/// the reordering pass (docs/LOWERING.md).  Targeting a predictor arms the
/// cost model's mispredict charge; its quality is calibrated separately
/// from the imported Misprediction plane (compileWithProfile).
ReorderOptions bropt::effectiveReorderOptions(const CompileOptions &Options) {
  ReorderOptions Reorder = Options.Reorder;
  if (Options.HeuristicSet == SwitchHeuristicSet::SetIV) {
    Reorder.UseOptimalTree = true;
    Reorder.EnableMethodSelection = true;
  }
  if (!Options.Predictor.empty() &&
      Reorder.Cost.MispredictPenalty == 0.0)
    Reorder.Cost.MispredictPenalty = DefaultMispredictPenalty;
  return Reorder;
}

namespace {

/// Front end + switch lowering + conventional optimizations; the common
/// prefix of every build.  \returns null and fills \p Error on failure.
std::unique_ptr<Module> compileCommon(std::string_view Source,
                                      const CompileOptions &Options,
                                      SwitchLoweringStats *SwitchStats,
                                      std::string &Error) {
  std::unique_ptr<Module> M = compileSource(Source, &Error);
  if (!M)
    return nullptr;
  lowerSwitches(*M, Options.HeuristicSet, SwitchStats);
  // Conventional optimizations only: final code layout (repositioning)
  // happens after detection/reordering, because its trampoline blocks and
  // branch inversions would obscure the common-successor structure the
  // detector looks for.  This mirrors the paper: reordering runs after all
  // optimizations except delay-slot filling, and repositioning/chaining
  // are reinvoked afterwards (paper §8).
  for (auto &F : *M)
    runCleanupPipeline(*F);
  std::string VerifyErrors;
  if (!verifyModule(*M, &VerifyErrors)) {
    Error = "internal error: IR verification failed after optimization:\n" +
            VerifyErrors;
    return nullptr;
  }
  return M;
}

} // namespace

CompileResult bropt::compileBaseline(std::string_view Source,
                                     const CompileOptions &Options) {
  CompileResult Result;
  Result.M = compileCommon(Source, Options, &Result.SwitchStats,
                           Result.Error);
  if (Result.M)
    optimizeModule(*Result.M);
  return Result;
}

Pass1Result bropt::runPass1(std::string_view Source,
                            std::string_view TrainingInput,
                            const CompileOptions &Options) {
  return runPass1(Source, std::vector<std::string_view>{TrainingInput},
                  Options);
}

Pass1Result
bropt::runPass1(std::string_view Source,
                const std::vector<std::string_view> &TrainingInputs,
                const CompileOptions &Options) {
  Pass1Result Result;
  Result.M =
      compileCommon(Source, Options, &Result.SwitchStats, Result.Error);
  if (!Result.M)
    return Result;

  Result.Sequences = detectSequences(*Result.M);
  ProfileBinner Binner;
  instrumentSequences(Result.Sequences, Result.Profile, Binner);
  if (Options.EnableCommonSuccessorReordering) {
    std::unordered_set<const BasicBlock *> ClaimedBlocks;
    for (const RangeSequence &Seq : Result.Sequences)
      for (const RangeConditionDesc &Cond : Seq.Conds)
        for (const BasicBlock *Block : Cond.Blocks)
          ClaimedBlocks.insert(Block);
    Result.CommonSequences = detectCommonSuccessorSequences(
        *Result.M, static_cast<unsigned>(Result.Sequences.size()),
        ClaimedBlocks);
    instrumentCommonSuccessorSequences(Result.CommonSequences,
                                       Result.Profile);
  }

  // One run per training data set; the counters simply accumulate, which
  // is equivalent to merging the per-set profiles.
  Interpreter Interp(*Result.M);
  Interp.setProfileCallback(Binner.callback(Result.Profile));
  if (Options.EnableCommonSuccessorReordering) {
    ProfileDB *Profile = &Result.Profile;
    Interp.setComboProfileCallback([Profile](unsigned Id, int64_t Mask) {
      Profile->increment(Id, static_cast<size_t>(Mask));
    });
  }
  // Targeting a predictor: the training runs double as the misprediction
  // measurement.  Instrumentation adds no conditional branches, so branch
  // ids line up with the pass-2 module the plane is imported against.
  std::unique_ptr<Predictor> Measured;
  if (!Options.Predictor.empty()) {
    Measured = makePredictor(Options.Predictor);
    if (!Measured) {
      Result.Error = "unknown predictor '" + Options.Predictor +
                     "' (see docs/PREDICT.md for the zoo)";
      return Result;
    }
    Measured->enableBranchRecords();
    Interp.attachPredictor(Measured.get());
  }
  for (std::string_view TrainingInput : TrainingInputs) {
    Interp.setInput(TrainingInput);
    RunResult Run = Interp.run();
    if (Run.Trapped) {
      Result.Error = "training run trapped: " + Run.TrapReason;
      return Result;
    }
  }
  if (Measured)
    exportMispredictProfile(*Result.M, *Measured, Result.Profile);
  return Result;
}

CompileResult bropt::compileWithReordering(std::string_view Source,
                                           std::string_view TrainingInput,
                                           const CompileOptions &Options) {
  return compileWithReordering(
      Source, std::vector<std::string_view>{TrainingInput}, Options);
}

CompileResult bropt::compileWithReordering(
    std::string_view Source,
    const std::vector<std::string_view> &TrainingInputs,
    const CompileOptions &Options) {
  CompileResult Result;

  // Pass 1: instrumented build + training runs.
  Pass1Result Pass1 = runPass1(Source, TrainingInputs, Options);
  if (!Pass1.ok()) {
    Result.Error = Pass1.Error;
    return Result;
  }
  Result.ProfileText = Pass1.Profile.serializeText();

  // The profile crosses the pass boundary in serialized form, exactly like
  // the on-disk profile file of the paper's tooling.
  ProfileDB Profile;
  std::string ProfileError;
  if (!Profile.deserialize(Result.ProfileText, &ProfileError)) {
    Result.Error =
        "internal error: profile round-trip failed: " + ProfileError;
    return Result;
  }

  CompileResult Pass2 = compileWithProfile(Source, Profile, Options);
  Pass2.ProfileText = std::move(Result.ProfileText);

  // The pass-1 profile has no edge records, so compileWithProfile kept the
  // hot-first layout.  Measure real edge traffic by running the finished
  // binary on the training inputs, lay it out ext-TSP style from those
  // weights, and export them into the profile so `--profile-out` captures
  // the full measurement (a later --profile-in compile reproduces this
  // layout without re-running the training inputs).
  applyMeasuredLayout(Pass2, TrainingInputs, Profile, Options);
  return Pass2;
}

bool bropt::applyMeasuredLayout(CompileResult &Result,
                                const std::vector<std::string_view> &Inputs,
                                ProfileDB &Profile,
                                const CompileOptions &Options) {
  if (!Result.ok() ||
      !effectiveReorderOptions(Options).ProfileGuidedLayout)
    return false;
  std::vector<std::string> Copies(Inputs.begin(), Inputs.end());
  ModuleEdgeWeights Weights = collectEdgeWeights(*Result.M, Copies);
  applyProfileGuidedLayout(*Result.M, Weights, &Result.Stats.Layout);
  exportEdgeWeights(Weights, Profile);
  Result.ProfileText = Profile.serializeText();
  std::string VerifyErrors;
  if (!verifyModule(*Result.M, &VerifyErrors)) {
    Result.Error =
        "internal error: IR verification failed after layout:\n" +
        VerifyErrors;
    Result.M.reset();
    return false;
  }
  return true;
}

CompileResult bropt::compileWithProfile(std::string_view Source,
                                        const ProfileDB &Profile,
                                        const CompileOptions &Options) {
  CompileResult Result;

  // Pass 2: fresh compilation; detection re-derives the same sequences,
  // whose (function, ordinal) keys the profile's records are matched by.
  Result.M = compileCommon(Source, Options, &Result.SwitchStats,
                           Result.Error);
  if (!Result.M)
    return Result;
  ReorderOptions Reorder = effectiveReorderOptions(Options);
  if (!Options.Predictor.empty()) {
    // Calibrate the mispredict charge against what the targeted predictor
    // actually did on the training runs.  A profile without the plane (or
    // a stale one) keeps the neutral quality 1.0 — the saturating-counter
    // baseline — so selection degrades gracefully, never wrongly.
    MispredictSummary Summary =
        importMispredictProfile(Profile, *Result.M, Options.Predictor);
    Reorder.Cost.PredictorQuality = Summary.quality();
  }
  std::vector<RangeSequence> Sequences = detectSequences(*Result.M);
  if (!Options.EnableCommonSuccessorReordering) {
    Result.Stats =
        reorderSequences(*Result.M, Sequences, Profile, Reorder);
  } else {
    // Both transformations must run before any clean-up pass: clean-up
    // erases the unreachable original blocks the descriptors point into.
    std::unordered_set<const BasicBlock *> ClaimedBlocks;
    for (const RangeSequence &Seq : Sequences)
      for (const RangeConditionDesc &Cond : Seq.Conds)
        for (const BasicBlock *Block : Cond.Blocks)
          ClaimedBlocks.insert(Block);
    std::vector<CommonSuccessorSequence> CommonSequences =
        detectCommonSuccessorSequences(
            *Result.M, static_cast<unsigned>(Sequences.size()),
            ClaimedBlocks);
    // Common-successor chains first: the range transformation may
    // duplicate code *into* its exit edges (Figure 10c/d), and it must
    // duplicate the already-reordered chain, not the stale one.
    Result.CommonStats = reorderCommonSuccessorSequences(
        CommonSequences, Profile, Reorder.MinExecutions);
    SequenceKeyer Keyer;
    for (const RangeSequence &Seq : Sequences)
      reorderSequence(Seq, Profile, Reorder, &Result.Stats,
                      Keyer.next(ProfileKind::RangeBins, Seq.F->getName()));
  }
  optimizeModule(*Result.M);

  // Profile-guided layout: when the profile carries measured edge weights
  // (exported by a prior compileWithReordering or `broptc --profile-out`),
  // replace the hot-first layout with the ext-TSP one.  Import validates
  // every edge against this module's CFG, so a stale profile degrades to
  // keeping the heuristic layout, never to a wrong one.
  if (Reorder.ProfileGuidedLayout) {
    ModuleEdgeWeights Weights = importEdgeWeights(Profile, *Result.M);
    if (!Weights.empty())
      applyProfileGuidedLayout(*Result.M, Weights, &Result.Stats.Layout);
  }

  std::string VerifyErrors;
  if (!verifyModule(*Result.M, &VerifyErrors)) {
    Result.Error =
        "internal error: IR verification failed after reordering:\n" +
        VerifyErrors;
    Result.M.reset();
  }
  return Result;
}
