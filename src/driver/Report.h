//===- driver/Report.h - Workload evaluation for the benches ----*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one workload through baseline and reordered builds on its test
/// input and gathers every quantity the paper's tables report: dynamic
/// instructions and branches (Table 4), mispredictions under a configured
/// predictor (Tables 5-6), model cycles under both machine models
/// (Table 7's relative times), and static size / sequence statistics
/// (Table 8, Figures 11-13).
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_DRIVER_REPORT_H
#define BROPT_DRIVER_REPORT_H

#include "driver/Driver.h"
#include "exec/ExecBackend.h"
#include "predict/BranchPredictor.h"
#include "runtime/AdaptiveController.h"
#include "sim/Interpreter.h"
#include "workloads/Workloads.h"

#include <optional>

namespace bropt {

/// Measurements for one build of one workload.
struct BuildMeasurement {
  DynamicCounts Counts;
  uint64_t Mispredictions = 0;
  uint64_t CyclesIPC = 0;   ///< SPARC IPC/20-like machine model
  uint64_t CyclesUltra = 0; ///< SPARC Ultra-like (expensive ijmp)
  size_t CodeSize = 0;
  std::string Output;
  int64_t ExitValue = 0;
  /// Tiering counters when the run went through an AdaptiveController
  /// (cumulative over the controller's lifetime, snapshotted after the
  /// run); all zero otherwise.
  RuntimeStats Runtime;
};

/// Baseline vs. reordered comparison for one workload.
struct WorkloadEvaluation {
  std::string Name;
  std::string Error; ///< empty on success
  BuildMeasurement Baseline;
  BuildMeasurement Reordered;
  ReorderStats Stats;
  SwitchLoweringStats SwitchStats;
  bool OutputsMatch = false;

  bool ok() const { return Error.empty(); }

  /// Percentage change from baseline to reordered; negative is better.
  static double deltaPercent(uint64_t Before, uint64_t After);
};

/// Interprets one build of \p M on \p TestInput under \p Mode and collects
/// every per-build quantity the tables report.  On a trap, \p Error is
/// filled and the measurement is partial.  Thread-safe for concurrent
/// callers sharing one (immutable) module.  \p Prepared optionally
/// supplies a pre-decoded program (Evaluator's decode cache) so the run
/// skips re-decoding; it must have been produced from \p M under a format
/// matching \p Mode and is ignored by the tree walker.  \p Adaptive routes
/// the run through an adaptive controller instead (implies Mode::Adaptive
/// and supersedes \p Prepared); the controller must have been built over
/// \p M and its profile state persists across measureBuild calls — a
/// second run of the same workload starts in the fused tier.  \p Native
/// optionally supplies a pre-compiled shared object for Mode::Native
/// (Evaluator's native cache); without one the exec backend compiles on
/// the fly.  Native runs report zero DynamicCounts, mispredictions, and
/// model cycles — only the observables (Output, ExitValue) and wall
/// clock are meaningful.  Dispatch goes through exec/ExecBackend.h, so
/// every engine consumer shares one code path.
BuildMeasurement
measureBuild(const Module &M, std::string_view TestInput,
             const std::optional<PredictorConfig> &Predictor,
             std::string &Error,
             Interpreter::Mode Mode = Interpreter::Mode::Fused,
             const DecodedModule *Prepared = nullptr,
             AdaptiveController *Adaptive = nullptr,
             const NativeProgram *Native = nullptr);

/// As above, but measures under any zoo member (predict/Zoo.h) instead of
/// constructing an (m,n) predictor from a config.  \p AttachedPredictor may
/// be null (no prediction measured); when set, the caller owns it and
/// should pass a freshly reset instance — mispredictions are read off its
/// cumulative stats after the run.
BuildMeasurement
measureBuild(const Module &M, std::string_view TestInput,
             Predictor *AttachedPredictor, std::string &Error,
             Interpreter::Mode Mode = Interpreter::Mode::Fused,
             const DecodedModule *Prepared = nullptr,
             AdaptiveController *Adaptive = nullptr,
             const NativeProgram *Native = nullptr);

/// Evaluates \p W under \p Options; if \p Predictor is set, both builds
/// also run through an (m,n) predictor of that configuration.
WorkloadEvaluation evaluateWorkload(const Workload &W,
                                    const CompileOptions &Options,
                                    const std::optional<PredictorConfig>
                                        &Predictor = std::nullopt);

/// Evaluates every standard workload.
std::vector<WorkloadEvaluation>
evaluateAllWorkloads(const CompileOptions &Options,
                     const std::optional<PredictorConfig> &Predictor =
                         std::nullopt);

} // namespace bropt

#endif // BROPT_DRIVER_REPORT_H
