//===- support/PerfCounters.cpp - Hardware branch counters ----------------===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "support/PerfCounters.h"

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace bropt {

#if defined(__linux__)

namespace {

int perfEventOpen(perf_event_attr &Attr, int GroupFd) {
  // pid=0, cpu=-1: this thread, any CPU.
  return (int)syscall(SYS_perf_event_open, &Attr, 0, -1, GroupFd, 0);
}

int openCounter(uint64_t Config, int GroupFd) {
  perf_event_attr Attr;
  std::memset(&Attr, 0, sizeof(Attr));
  Attr.type = PERF_TYPE_HARDWARE;
  Attr.size = sizeof(Attr);
  Attr.config = Config;
  Attr.disabled = GroupFd < 0 ? 1 : 0; // the leader starts the group
  Attr.exclude_kernel = 1;
  Attr.exclude_hv = 1;
  Attr.read_format =
      PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return perfEventOpen(Attr, GroupFd);
}

} // namespace

PerfCounters::PerfCounters() {
  GroupFd = openCounter(PERF_COUNT_HW_BRANCH_INSTRUCTIONS, -1);
  if (GroupFd < 0) {
    Reason = std::string("perf_event_open: ") + std::strerror(errno);
    return;
  }
  MissFd = openCounter(PERF_COUNT_HW_BRANCH_MISSES, GroupFd);
  if (MissFd < 0) {
    Reason = std::string("perf_event_open (branch-misses): ") + std::strerror(errno);
    close(GroupFd);
    GroupFd = -1;
  }
}

PerfCounters::~PerfCounters() {
  if (MissFd >= 0)
    close(MissFd);
  if (GroupFd >= 0)
    close(GroupFd);
}

void PerfCounters::start() {
  if (GroupFd < 0)
    return;
  ioctl(GroupFd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(GroupFd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample PerfCounters::stop() {
  PerfSample S;
  if (GroupFd < 0)
    return S;
  ioctl(GroupFd, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);

  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
  struct {
    uint64_t Nr;
    uint64_t TimeEnabled;
    uint64_t TimeRunning;
    uint64_t Values[2];
  } Buf;
  std::memset(&Buf, 0, sizeof(Buf));
  if (read(GroupFd, &Buf, sizeof(Buf)) < 0 || Buf.Nr < 2)
    return S;

  S.Branches = Buf.Values[0];
  S.BranchMisses = Buf.Values[1];
  if (Buf.TimeRunning != Buf.TimeEnabled && Buf.TimeRunning > 0) {
    // Scale multiplexed counts the way perf(1) does.
    double Scale = (double)Buf.TimeEnabled / (double)Buf.TimeRunning;
    S.Branches = (uint64_t)((double)S.Branches * Scale);
    S.BranchMisses = (uint64_t)((double)S.BranchMisses * Scale);
    S.Multiplexed = true;
  }
  return S;
}

#else // !__linux__

PerfCounters::PerfCounters()
    : Reason("perf_event_open unsupported on this platform") {}
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() {}
PerfSample PerfCounters::stop() { return PerfSample(); }

#endif

} // namespace bropt
