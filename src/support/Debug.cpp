//===- support/Debug.cpp - Assertions and fatal-error helpers ------------===//

#include "support/Debug.h"

#include <cstdio>
#include <cstdlib>

using namespace bropt;

void bropt::reportUnreachable(const char *Msg, const char *File,
                              unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

void bropt::reportFatalError(const char *Msg) {
  std::fprintf(stderr, "bropt fatal error: %s\n", Msg);
  std::abort();
}
