//===- support/Strings.h - Small string/formatting utilities ---*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style std::string formatting and tiny parsing helpers shared by
/// printers, the profile serializer, and the bench report writers.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_SUPPORT_STRINGS_H
#define BROPT_SUPPORT_STRINGS_H

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace bropt {

/// Returns a std::string produced from a printf-style format.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string_view> splitString(std::string_view Text, char Sep);

/// Trims ASCII whitespace from both ends of \p Text.
std::string_view trimString(std::string_view Text);

/// Parses a signed decimal integer.  \returns true on success and stores the
/// value in \p Result; false if \p Text is not a well-formed integer.
bool parseInteger(std::string_view Text, long long &Result);

/// Formats \p Delta as a signed percentage string like the paper's tables,
/// e.g. -7.91% or +3.42%.  \p Base must be nonzero.
std::string formatPercent(double Delta, double Base);

} // namespace bropt

#endif // BROPT_SUPPORT_STRINGS_H
