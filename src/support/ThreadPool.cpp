//===- support/ThreadPool.cpp - A small fixed-size thread pool ------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace bropt;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(NumThreads);
  for (unsigned Index = 0; Index < NumThreads; ++Index)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    assert(!ShuttingDown && "enqueue on a shutting-down pool");
    Queue.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllIdle.wait(Lock, [this] { return Queue.empty() && Running == 0; });
}

bool ThreadPool::waitFor(double Seconds) {
  std::unique_lock<std::mutex> Lock(Mutex);
  return AllIdle.wait_for(Lock, std::chrono::duration<double>(Seconds),
                          [this] { return Queue.empty() && Running == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // shutting down and drained
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++Running;
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      --Running;
      if (Queue.empty() && Running == 0)
        AllIdle.notify_all();
    }
  }
}
