//===- support/Debug.h - Assertions and fatal-error helpers ----*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight assertion and unreachable helpers used throughout bropt.
/// The library is built without exceptions; unrecoverable conditions abort
/// with a diagnostic instead.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_SUPPORT_DEBUG_H
#define BROPT_SUPPORT_DEBUG_H

#include <cassert>

namespace bropt {

/// Prints \p Msg with source location info to stderr and aborts.
///
/// Used to mark points in the code that must never be reached.  Unlike
/// assert, this is active in all build configurations.
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    unsigned Line);

/// Prints a fatal diagnostic for an unrecoverable user-facing error (bad
/// input file, malformed profile, ...) and aborts.
[[noreturn]] void reportFatalError(const char *Msg);

} // namespace bropt

#define BROPT_UNREACHABLE(MSG) ::bropt::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // BROPT_SUPPORT_DEBUG_H
