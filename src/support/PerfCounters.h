//===- support/PerfCounters.h - Hardware branch counters --------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin wrapper over Linux `perf_event_open` counting retired branch
/// instructions and branch mispredictions for the calling thread.  The
/// native AOT backend uses it to ground the paper's Table 7/8 claims in
/// hardware: run the ordered and unordered `.so` under the same counters
/// and compare measured branch-miss rates instead of the simulated
/// predictor planes.
///
/// Hardware counters are frequently unavailable — containers without
/// CAP_PERFMON, `perf_event_paranoid` lockdowns, non-Linux hosts, VMs
/// without a PMU.  The wrapper degrades to `available() == false` with a
/// human-readable reason; it never fails the build or the bench.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_SUPPORT_PERFCOUNTERS_H
#define BROPT_SUPPORT_PERFCOUNTERS_H

#include <cstdint>
#include <string>

namespace bropt {

/// One measured interval of hardware branch activity.
struct PerfSample {
  uint64_t Branches = 0;     ///< PERF_COUNT_HW_BRANCH_INSTRUCTIONS
  uint64_t BranchMisses = 0; ///< PERF_COUNT_HW_BRANCH_MISSES
  /// True when the kernel multiplexed the counters (TimeEnabled !=
  /// TimeRunning); values are then scaled estimates, not exact counts.
  bool Multiplexed = false;
};

/// Per-thread branch/branch-miss counters over `perf_event_open`.
///
/// Usage:
///   PerfCounters PC;
///   if (PC.available()) { PC.start(); work(); PerfSample S = PC.stop(); }
///
/// Construction probes the kernel once; when the probe fails every other
/// call is a harmless no-op and stop() returns a zero sample.
class PerfCounters {
public:
  PerfCounters();
  ~PerfCounters();

  PerfCounters(const PerfCounters &) = delete;
  PerfCounters &operator=(const PerfCounters &) = delete;

  /// True when the kernel granted both counters.
  bool available() const { return GroupFd >= 0; }

  /// Why available() is false ("perf_event_open: Permission denied", or
  /// "perf_event_open unsupported on this platform"); empty if available.
  const std::string &unavailableReason() const { return Reason; }

  /// Zeroes and enables the counter group.  No-op when unavailable.
  void start();

  /// Disables the group and reads the interval since start().  Returns a
  /// zero sample when unavailable.
  PerfSample stop();

private:
  int GroupFd = -1;  ///< leader: branch instructions
  int MissFd = -1;   ///< sibling: branch misses
  std::string Reason;
};

} // namespace bropt

#endif // BROPT_SUPPORT_PERFCOUNTERS_H
