//===- support/ThreadPool.h - A small fixed-size thread pool ----*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fixed-size worker pool used by the evaluation harness to
/// compile and interpret workloads concurrently.  Tasks are opaque
/// std::function<void()> thunks; submit() wraps a callable in a
/// packaged_task and returns its future.
///
/// The pool is deliberately simple: no work stealing, no task priorities,
/// no nested-task draining.  Tasks must not enqueue further tasks and then
/// block on them from inside the pool (with one worker that deadlocks).
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_SUPPORT_THREADPOOL_H
#define BROPT_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace bropt {

class ThreadPool {
public:
  /// Creates a pool of \p NumThreads workers; 0 means one worker per
  /// hardware thread (and always at least one).
  explicit ThreadPool(unsigned NumThreads = 0);

  /// Waits for queued and running tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Enqueues a task for execution on some worker.
  void enqueue(std::function<void()> Task);

  /// Enqueues \p Fn and returns a future for its result.
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> submit(Fn &&Callable) {
    using Result = std::invoke_result_t<Fn>;
    auto Task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(Callable));
    std::future<Result> Future = Task->get_future();
    enqueue([Task]() { (*Task)(); });
    return Future;
  }

  /// Blocks until the queue is empty and no task is running.
  void wait();

  /// Like wait(), but gives up after \p Seconds.  \returns true when the
  /// pool drained, false on timeout (tasks keep running either way).
  bool waitFor(double Seconds);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable; ///< workers wait on this
  std::condition_variable AllIdle;       ///< wait() blocks on this
  unsigned Running = 0;                  ///< tasks currently executing
  bool ShuttingDown = false;
};

} // namespace bropt

#endif // BROPT_SUPPORT_THREADPOOL_H
