//===- support/Strings.cpp - Small string/formatting utilities -----------===//

#include "support/Strings.h"

#include <cassert>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

using namespace bropt;

std::string bropt::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  assert(Size >= 0 && "invalid format string");
  std::string Result(static_cast<size_t>(Size), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::vector<std::string_view> bropt::splitString(std::string_view Text,
                                                 char Sep) {
  std::vector<std::string_view> Fields;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Fields.push_back(Text.substr(Start));
      return Fields;
    }
    Fields.push_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view bropt::trimString(std::string_view Text) {
  while (!Text.empty() && std::isspace(static_cast<unsigned char>(Text.front())))
    Text.remove_prefix(1);
  while (!Text.empty() && std::isspace(static_cast<unsigned char>(Text.back())))
    Text.remove_suffix(1);
  return Text;
}

bool bropt::parseInteger(std::string_view Text, long long &Result) {
  Text = trimString(Text);
  if (Text.empty())
    return false;
  std::string Buffer(Text);
  errno = 0;
  char *End = nullptr;
  long long Value = std::strtoll(Buffer.c_str(), &End, 10);
  if (errno != 0 || End != Buffer.c_str() + Buffer.size())
    return false;
  Result = Value;
  return true;
}

std::string bropt::formatPercent(double Delta, double Base) {
  assert(Base != 0.0 && "cannot compute a percentage of a zero base");
  double Pct = 100.0 * Delta / Base;
  return formatString("%+.2f%%", Pct);
}
