//===- support/LruCache.h - Bounded map with LRU eviction -------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small capacity-bounded map evicting the least-recently-used entry.
/// The Evaluator's decode/fuse, adaptive-controller, and native `.so`
/// caches sit on this so long-running processes (the future broptd, long
/// fuzz campaigns) stop growing without bound; the eviction count is
/// surfaced through EvaluatorStats so benches can see cache pressure.
///
/// Not thread-safe; callers hold their own lock (the Evaluator already
/// serializes cache access under CacheMutex).
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_SUPPORT_LRUCACHE_H
#define BROPT_SUPPORT_LRUCACHE_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace bropt {

/// Capacity-bounded key-value store with least-recently-used eviction.
/// A capacity of 0 means unbounded (eviction never fires).
template <typename Key, typename Value> class LruCache {
public:
  explicit LruCache(size_t Capacity = 0) : Capacity(Capacity) {}

  size_t size() const { return Entries.size(); }
  size_t capacity() const { return Capacity; }
  uint64_t evictions() const { return Evictions; }

  /// Rebounds the cache; an over-full cache only shrinks on the next put().
  void setCapacity(size_t NewCapacity) { Capacity = NewCapacity; }

  /// \returns the value for \p K (refreshing its recency), or null.
  Value *get(const Key &K) {
    auto It = Index.find(K);
    if (It == Index.end())
      return nullptr;
    // Splicing moves the node without invalidating iterators.
    Entries.splice(Entries.begin(), Entries, It->second);
    return &It->second->second;
  }

  /// Inserts (or overwrites) \p K -> \p V as the most recent entry.  When
  /// the insert pushes the cache over capacity, the least-recently-used
  /// entry is evicted and its value returned so the caller can fold any
  /// statistics it carried into longer-lived counters.
  std::optional<Value> put(const Key &K, Value V) {
    auto It = Index.find(K);
    if (It != Index.end()) {
      It->second->second = std::move(V);
      Entries.splice(Entries.begin(), Entries, It->second);
      return std::nullopt;
    }
    Entries.emplace_front(K, std::move(V));
    Index.emplace(K, Entries.begin());
    if (Capacity == 0 || Entries.size() <= Capacity)
      return std::nullopt;
    auto Last = std::prev(Entries.end());
    std::optional<Value> Evicted(std::move(Last->second));
    Index.erase(Last->first);
    Entries.pop_back();
    ++Evictions;
    return Evicted;
  }

  void clear() {
    Entries.clear();
    Index.clear();
  }

  /// Iteration in recency order (most recent first); stats collectors use
  /// this to walk live entries.
  auto begin() { return Entries.begin(); }
  auto end() { return Entries.end(); }
  auto begin() const { return Entries.begin(); }
  auto end() const { return Entries.end(); }

private:
  size_t Capacity;
  uint64_t Evictions = 0;
  std::list<std::pair<Key, Value>> Entries;
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
      Index;
};

} // namespace bropt

#endif // BROPT_SUPPORT_LRUCACHE_H
