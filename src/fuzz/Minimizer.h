//===- fuzz/Minimizer.h - Delta-debugging failure minimizer -----*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a failing Mini-C program while preserving its failure.  The
/// minimizer parses the source, repeatedly applies structural reductions —
/// delete a statement, hoist a branch or loop body over its parent, drop a
/// switch section, drop a global or helper function — and keeps each
/// reduction only if the caller's predicate still reports the failure on
/// the re-rendered source.  Reductions that break compilation simply make
/// the predicate return false (the oracle reports CompileError, a distinct
/// kind), so the minimizer never needs its own validity checking.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_FUZZ_MINIMIZER_H
#define BROPT_FUZZ_MINIMIZER_H

#include <functional>
#include <string>

namespace bropt {

/// \returns true if \p Source still exhibits the failure being chased.
/// Must be deterministic; the minimizer calls it hundreds of times.
using FailurePredicate = std::function<bool(const std::string &Source)>;

struct MinimizeResult {
  /// The smallest failing source found.
  std::string Source;
  /// Statement count of the result (blocks and empties excluded).
  size_t Statements = 0;
  /// Full reduction passes performed.
  unsigned Rounds = 0;
  /// Predicate invocations — the cost driver.
  unsigned Probes = 0;
};

/// Minimizes \p Source under \p StillFails, iterating reduction passes to
/// a fixpoint or \p MaxRounds.  \p Source must satisfy the predicate;
/// if it does not (or does not parse), it is returned unchanged.
MinimizeResult minimizeSource(const std::string &Source,
                              const FailurePredicate &StillFails,
                              unsigned MaxRounds = 16);

} // namespace bropt

#endif // BROPT_FUZZ_MINIMIZER_H
