//===- fuzz/Fuzzer.cpp - Randomized differential-testing campaigns --------===//

#include "fuzz/Fuzzer.h"

#include "fuzz/Generator.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Rng.h"
#include "support/Strings.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace bropt;

OracleOptions bropt::optionsForSeed(uint64_t ProgramSeed, FaultKind Fault) {
  // Options derive from an independent stream so that adding a knob never
  // perturbs program generation for existing seeds.
  Rng R(Rng::mix(ProgramSeed, /*Salt=*/0xC0FF));
  OracleOptions Opts;
  switch (R.range(0, 2)) {
  case 0:
    Opts.Compile.HeuristicSet = SwitchHeuristicSet::SetI;
    break;
  case 1:
    Opts.Compile.HeuristicSet = SwitchHeuristicSet::SetII;
    break;
  default:
    Opts.Compile.HeuristicSet = SwitchHeuristicSet::SetIII;
    break;
  }
  Opts.Compile.Reorder.DuplicateDefaultTarget = R.pct(75);
  Opts.Compile.Reorder.OrderFormFourBranches = R.pct(75);
  Opts.Compile.Reorder.UseExhaustiveSelection = R.pct(15);
  Opts.Compile.Reorder.EnableMethodSelection = R.pct(30);
  Opts.Compile.EnableCommonSuccessorReordering = R.pct(30);
  // Adaptive-runtime knobs draw *after* every pre-existing knob so old
  // seeds keep their compile options.  Varying the sample interval and
  // hot threshold moves the tier-up and safe-point swap positions around
  // relative to program behavior, which is exactly the state space the
  // adaptive oracle needs covered.
  Opts.AdaptiveSampleInterval = static_cast<uint32_t>(R.range(1, 32));
  Opts.AdaptiveHotThreshold = static_cast<uint64_t>(R.range(32, 1024));
  Opts.AdaptiveDriftWindow = static_cast<uint32_t>(R.range(8, 64));
  Opts.Fault = Fault;
  return Opts;
}

std::string bropt::renderReproducer(const FuzzViolation &Violation) {
  OracleOptions Opts = optionsForSeed(Violation.ProgramSeed, FaultKind::None);
  std::string Text;
  Text += "// bropt-fuzz reproducer\n";
  Text += formatString("// seed: %llu\n",
                       (unsigned long long)Violation.ProgramSeed);
  Text += formatString("// violation: %s\n",
                       violationKindName(Violation.Kind));
  Text += "// detail: " + Violation.Detail + "\n";
  Text += formatString(
      "// config: set %s, dup-default %d, form-four %d, exhaustive %d, "
      "method-selection %d, common-successor %d\n",
      switchHeuristicSetName(Opts.Compile.HeuristicSet),
      (int)Opts.Compile.Reorder.DuplicateDefaultTarget,
      (int)Opts.Compile.Reorder.OrderFormFourBranches,
      (int)Opts.Compile.Reorder.UseExhaustiveSelection,
      (int)Opts.Compile.Reorder.EnableMethodSelection,
      (int)Opts.Compile.EnableCommonSuccessorReordering);
  Text += formatString(
      "// adaptive: sample-interval %u, hot-threshold %llu, drift-window %u\n",
      Opts.AdaptiveSampleInterval,
      (unsigned long long)Opts.AdaptiveHotThreshold, Opts.AdaptiveDriftWindow);
  Text += formatString(
      "// replay: bropt-fuzz --seed %llu --programs 1\n",
      (unsigned long long)Violation.ProgramSeed);
  Text += "\n" + Violation.Source;
  return Text;
}

namespace {

std::string writeReproducer(const std::string &CorpusDir,
                            const FuzzViolation &Violation) {
  std::error_code EC;
  std::filesystem::create_directories(CorpusDir, EC);
  std::string Path =
      CorpusDir + formatString("/case-%llu-%s.minic",
                               (unsigned long long)Violation.ProgramSeed,
                               violationKindName(Violation.Kind));
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return "";
  Out << renderReproducer(Violation);
  return Path;
}

} // namespace

FuzzCampaignResult bropt::runFuzzCampaign(const FuzzOptions &Opts) {
  FuzzCampaignResult Result;
  auto Start = std::chrono::steady_clock::now();
  auto timedOut = [&] {
    if (!Opts.Seconds)
      return false;
    return std::chrono::steady_clock::now() - Start >=
           std::chrono::seconds(Opts.Seconds);
  };

  for (unsigned Index = 0;; ++Index) {
    if (Opts.Seconds ? timedOut() : Index >= Opts.Programs)
      break;
    uint64_t ProgramSeed = Rng::mix(Opts.Seed, Index);
    GeneratedProgram Program = generateProgram(ProgramSeed);
    OracleOptions Oracle = optionsForSeed(ProgramSeed, Opts.Fault);
    Oracle.CheckNativeEngine = Opts.CheckNativeEngine;
    Oracle.CheckAdaptiveNativeEngine = Opts.CheckAdaptiveNativeEngine;
    Oracle.CheckLoweringOptimal = Opts.CheckLoweringOptimal;
    Oracle.CheckServiceEngine =
        Opts.CheckServiceEngine || Opts.Fault == FaultKind::DropConnection;
    OracleReport Report = runOracle(Program.Source, Program.TrainingInputs,
                                    Program.HeldOutInputs, Oracle);
    ++Result.ProgramsRun;
    Result.NativeCompileCancellations += Report.NativeCompileCancellations;
    Result.DroppedConnections += Report.DroppedConnections;
    if (Report.ok())
      continue;
    if (Report.Kind == ViolationKind::CompileError) {
      ++Result.CompileErrors;
      if (Opts.Verbose)
        std::fprintf(stderr, "bropt-fuzz: seed %llu: %s\n",
                     (unsigned long long)ProgramSeed,
                     Report.Detail.c_str());
      continue;
    }

    FuzzViolation Violation;
    Violation.ProgramSeed = ProgramSeed;
    Violation.Kind = Report.Kind;
    Violation.Detail = Report.Detail;
    if (Opts.Verbose)
      std::fprintf(stderr, "bropt-fuzz: seed %llu: %s: %s\n",
                   (unsigned long long)ProgramSeed,
                   violationKindName(Report.Kind), Report.Detail.c_str());

    // Shrink while the oracle keeps reporting the same invariant broken.
    // The inputs are held fixed: they derive from the seed, and the
    // reproducer replays through the same seed.
    ViolationKind Target = Report.Kind;
    auto StillFails = [&](const std::string &Candidate) {
      return runOracle(Candidate, Program.TrainingInputs,
                       Program.HeldOutInputs, Oracle)
                 .Kind == Target;
    };
    MinimizeResult Minimized =
        minimizeSource(Program.Source, StillFails, Opts.MinimizeRounds);
    Violation.Source = Minimized.Source;
    Violation.Statements = Minimized.Statements;
    if (!Opts.CorpusDir.empty())
      Violation.Path = writeReproducer(Opts.CorpusDir, Violation);
    Result.Violations.push_back(std::move(Violation));
  }
  return Result;
}
