//===- fuzz/Minimizer.cpp - Delta-debugging failure minimizer -------------===//

#include "fuzz/Minimizer.h"

#include "fuzz/AstRender.h"
#include "lang/Parser.h"

using namespace bropt;

namespace {

/// One minimization session over a parsed unit.  AST nodes are move-only,
/// so every attempted reduction moves the victim out, tests the rendered
/// program, and moves it back on failure.
class Shrinker {
public:
  Shrinker(TranslationUnit &Unit, const FailurePredicate &StillFails)
      : Unit(Unit), StillFails(StillFails) {}

  unsigned Probes = 0;

  /// One full reduction pass.  \returns true if anything shrank.
  bool pass() {
    bool Changed = shrinkGlobals();
    Changed |= shrinkFunctions();
    for (FunctionDecl &F : Unit.Functions)
      Changed |= shrinkSlot(F.Body);
    return Changed;
  }

private:
  bool test() {
    ++Probes;
    return StillFails(renderUnit(Unit));
  }

  bool shrinkGlobals() {
    bool Changed = false;
    for (size_t Index = 0; Index < Unit.Globals.size();) {
      GlobalDecl Saved = std::move(Unit.Globals[Index]);
      Unit.Globals.erase(Unit.Globals.begin() + Index);
      if (test()) {
        Changed = true;
        continue;
      }
      Unit.Globals.insert(Unit.Globals.begin() + Index, std::move(Saved));
      ++Index;
    }
    return Changed;
  }

  bool shrinkFunctions() {
    bool Changed = false;
    for (size_t Index = 0; Index < Unit.Functions.size();) {
      if (Unit.Functions[Index].Name == "main") {
        ++Index;
        continue;
      }
      FunctionDecl Saved = std::move(Unit.Functions[Index]);
      Unit.Functions.erase(Unit.Functions.begin() + Index);
      if (test()) {
        Changed = true;
        continue;
      }
      Unit.Functions.insert(Unit.Functions.begin() + Index,
                            std::move(Saved));
      ++Index;
    }
    return Changed;
  }

  /// Tries to delete each statement of \p List, then shrinks survivors.
  bool shrinkList(std::vector<StmtPtr> &List) {
    bool Changed = false;
    for (size_t Index = 0; Index < List.size();) {
      StmtPtr Saved = std::move(List[Index]);
      List.erase(List.begin() + Index);
      if (test()) {
        Changed = true;
        continue;
      }
      List.insert(List.begin() + Index, std::move(Saved));
      ++Index;
    }
    for (StmtPtr &Slot : List)
      Changed |= shrinkSlot(Slot);
    return Changed;
  }

  /// Replaces \p Slot with child \p Replacement (taken from the node that
  /// \p Slot owns); restores via \p Restore on predicate failure.
  template <typename TakeFn, typename RestoreFn>
  bool tryHoist(StmtPtr &Slot, TakeFn Take, RestoreFn Restore) {
    StmtPtr Saved = std::move(Slot);
    Slot = Take(Saved.get());
    if (!Slot) {
      Slot = std::move(Saved);
      return false;
    }
    if (test())
      return true;
    Restore(Saved.get(), std::move(Slot));
    Slot = std::move(Saved);
    return false;
  }

  /// Structural reductions on the statement \p Slot owns, recursing into
  /// children.  The slot reference stays valid throughout because every
  /// test() happens with the tree whole.
  bool shrinkSlot(StmtPtr &Slot) {
    if (!Slot)
      return false;
    bool Changed = false;

    if (auto *If = dyn_cast<IfStmt>(Slot.get())) {
      // if (c) A else B -> A, or -> B, or -> if (c) A.
      if (tryHoist(
              Slot, [](Stmt *S) { return cast<IfStmt>(S)->takeThen(); },
              [](Stmt *S, StmtPtr Old) {
                cast<IfStmt>(S)->setThen(std::move(Old));
              }))
        return shrinkSlot(Slot), true;
      if (If->getElse() &&
          tryHoist(
              Slot, [](Stmt *S) { return cast<IfStmt>(S)->takeElse(); },
              [](Stmt *S, StmtPtr Old) {
                cast<IfStmt>(S)->setElse(std::move(Old));
              }))
        return shrinkSlot(Slot), true;
      if (If->getElse()) {
        StmtPtr Saved = If->takeElse();
        if (test())
          Changed = true;
        else
          If->setElse(std::move(Saved));
      }
      Changed |= shrinkSlot(If->thenSlot());
      Changed |= shrinkSlot(If->elseSlot());
      return Changed;
    }

    if (isa<WhileStmt>(Slot.get()) || isa<DoWhileStmt>(Slot.get()) ||
        isa<ForStmt>(Slot.get())) {
      auto Take = [](Stmt *S) -> StmtPtr {
        if (auto *W = dyn_cast<WhileStmt>(S))
          return W->takeBody();
        if (auto *D = dyn_cast<DoWhileStmt>(S))
          return D->takeBody();
        return cast<ForStmt>(S)->takeBody();
      };
      auto Restore = [](Stmt *S, StmtPtr Old) {
        if (auto *W = dyn_cast<WhileStmt>(S))
          W->setBody(std::move(Old));
        else if (auto *D = dyn_cast<DoWhileStmt>(S))
          D->setBody(std::move(Old));
        else
          cast<ForStmt>(S)->setBody(std::move(Old));
      };
      if (tryHoist(Slot, Take, Restore))
        return shrinkSlot(Slot), true;
      StmtPtr &Body = isa<WhileStmt>(Slot.get())
                          ? cast<WhileStmt>(Slot.get())->bodySlot()
                      : isa<DoWhileStmt>(Slot.get())
                          ? cast<DoWhileStmt>(Slot.get())->bodySlot()
                          : cast<ForStmt>(Slot.get())->bodySlot();
      return shrinkSlot(Body);
    }

    if (auto *Block = dyn_cast<BlockStmt>(Slot.get()))
      return shrinkList(Block->stmts());

    if (auto *Switch = dyn_cast<SwitchStmt>(Slot.get())) {
      auto &Sections = Switch->sections();
      for (size_t Index = 0; Index < Sections.size();) {
        SwitchSection Saved = std::move(Sections[Index]);
        Sections.erase(Sections.begin() + Index);
        if (test()) {
          Changed = true;
          continue;
        }
        Sections.insert(Sections.begin() + Index, std::move(Saved));
        ++Index;
      }
      for (SwitchSection &Section : Sections)
        Changed |= shrinkList(Section.Stmts);
      return Changed;
    }

    return Changed;
  }

  TranslationUnit &Unit;
  const FailurePredicate &StillFails;
};

} // namespace

MinimizeResult bropt::minimizeSource(const std::string &Source,
                                     const FailurePredicate &StillFails,
                                     unsigned MaxRounds) {
  MinimizeResult Result;
  Result.Source = Source;

  TranslationUnit Unit;
  std::vector<Diagnostic> Diags;
  if (!parseSource(Source, Unit, Diags) || !StillFails(Source)) {
    Result.Statements = countStatements(Unit);
    return Result;
  }

  Shrinker S(Unit, StillFails);
  while (Result.Rounds < MaxRounds && S.pass())
    ++Result.Rounds;
  Result.Probes = S.Probes;
  Result.Source = renderUnit(Unit);
  Result.Statements = countStatements(Unit);
  return Result;
}
