//===- fuzz/Oracle.cpp - Pipeline-wide differential-testing oracle --------===//

#include "fuzz/Oracle.h"

#include "codegen/NativeRunner.h"
#include "core/Reorder.h"
#include "exec/ExecBackend.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"
#include "profile/ProfileDB.h"
#include "runtime/AdaptiveController.h"
#include "service/Client.h"
#include "sim/Fuse.h"
#include "sim/Interpreter.h"
#include "support/Strings.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include <sys/socket.h>

using namespace bropt;

const char *bropt::violationKindName(ViolationKind Kind) {
  switch (Kind) {
  case ViolationKind::None:
    return "none";
  case ViolationKind::CompileError:
    return "compile-error";
  case ViolationKind::BehaviorMismatch:
    return "behavior-mismatch";
  case ViolationKind::EngineMismatch:
    return "engine-mismatch";
  case ViolationKind::VerifierFailure:
    return "verifier-failure";
  case ViolationKind::CostRegression:
    return "cost-regression";
  case ViolationKind::ProfileReplayMismatch:
    return "profile-replay-mismatch";
  case ViolationKind::LoweringSuboptimal:
    return "lowering-suboptimal";
  }
  return "unknown";
}

namespace {

bool countsEqual(const DynamicCounts &A, const DynamicCounts &B) {
  return A.TotalInsts == B.TotalInsts && A.CondBranches == B.CondBranches &&
         A.TakenBranches == B.TakenBranches &&
         A.UncondJumps == B.UncondJumps &&
         A.IndirectJumps == B.IndirectJumps && A.Compares == B.Compares &&
         A.Loads == B.Loads && A.Stores == B.Stores && A.Calls == B.Calls &&
         A.ProfileHooks == B.ProfileHooks;
}

RunResult runOne(const Module &M, Interpreter::Mode Mode,
                 const std::string &Input, uint64_t Limit) {
  Interpreter Interp(M, Mode);
  Interp.setInput(Input);
  Interp.setInstructionLimit(Limit);
  return Interp.run();
}

/// Runs the fused engine against a pre-built fused program, the way the
/// driver's Evaluator injects its decode cache.
RunResult runFused(const Module &M, const DecodedModule &DM,
                   const std::string &Input, uint64_t Limit) {
  Interpreter Interp(M, Interpreter::Mode::Fused);
  Interp.setPreparedProgram(&DM);
  Interp.setInput(Input);
  Interp.setInstructionLimit(Limit);
  return Interp.run();
}

/// Runs the adaptive engine through a persistent controller, the way the
/// driver's Evaluator re-enters a cached one: tiering state accumulated on
/// earlier inputs carries into this run.
RunResult runAdaptive(const Module &M, AdaptiveController &Controller,
                      const std::string &Input, uint64_t Limit) {
  Interpreter Interp(M, Interpreter::Mode::Adaptive);
  Controller.attach(Interp);
  Interp.setInput(Input);
  Interp.setInstructionLimit(Limit);
  return Interp.run();
}

/// Runs the full tier ladder through the exec seam: beginRun() decides
/// per activation whether the hot-swapped native body or the adaptive
/// interpreter executes this input.
RunResult runAdaptiveNative(const Module &M, AdaptiveController &Controller,
                            const std::string &Input, uint64_t Limit) {
  ExecRequest Req;
  Req.Input = Input;
  Req.InstructionLimit = Limit;
  Req.Adaptive = &Controller;
  return executeModule(M, Interpreter::Mode::AdaptiveNative, Req);
}

std::string describeRun(const RunResult &R) {
  if (R.Trapped)
    return "trap: " + R.TrapReason;
  return formatString("exit %lld, %zu output bytes", (long long)R.ExitValue,
                      R.Output.size());
}

/// Invariant 2: the engines must agree on everything, counters included.
/// \p Label names the non-tree engine in diagnostics.
bool enginesAgree(const RunResult &Tree, const RunResult &Other,
                  const char *Label, std::string &Detail) {
  if (Tree.Trapped != Other.Trapped ||
      Tree.TrapReason != Other.TrapReason ||
      Tree.ExitValue != Other.ExitValue || Tree.Output != Other.Output) {
    Detail = "tree: " + describeRun(Tree) + "; " + Label + ": " +
             describeRun(Other);
    return false;
  }
  if (!countsEqual(Tree.Counts, Other.Counts)) {
    Detail = formatString(
        "dynamic counters diverge: tree %llu insts / %llu branches, "
        "%s %llu insts / %llu branches",
        (unsigned long long)Tree.Counts.TotalInsts,
        (unsigned long long)Tree.Counts.CondBranches, Label,
        (unsigned long long)Other.Counts.TotalInsts,
        (unsigned long long)Other.Counts.CondBranches);
    return false;
  }
  return true;
}

/// Invariant 2, observables half: native code collects no dynamic
/// counters (that is the point of compiling it), so the native engine is
/// held to exact agreement on trap state, exit value, and output only.
bool observablesAgree(const RunResult &Tree, const RunResult &Other,
                      const char *Label, std::string &Detail) {
  if (Tree.Trapped != Other.Trapped ||
      Tree.TrapReason != Other.TrapReason ||
      Tree.ExitValue != Other.ExitValue || Tree.Output != Other.Output) {
    Detail = "tree: " + describeRun(Tree) + "; " + Label + ": " +
             describeRun(Other);
    return false;
  }
  return true;
}

/// Invariant 1: same input -> same observable behavior.  Counters are
/// allowed — expected — to differ; that is the optimization working.
bool behaviorsAgree(const RunResult &Base, const RunResult &Opt,
                    std::string &Detail) {
  if (Base.Trapped != Opt.Trapped ||
      (Base.Trapped && Base.TrapReason != Opt.TrapReason) ||
      (!Base.Trapped &&
       (Base.ExitValue != Opt.ExitValue || Base.Output != Opt.Output))) {
    Detail = "baseline: " + describeRun(Base) +
             "; reordered: " + describeRun(Opt);
    return false;
  }
  return true;
}

/// The campaign-wide daemon the service oracle replays through.  Shared
/// across every runOracle() call in the process on purpose: its artifact
/// cache and profile shards accumulate state from every prior program, so
/// a corruption planted by one run (or one dropped connection) has the
/// rest of the campaign to be observed — a fresh daemon per run would
/// only ever test a cold cache.
InProcessService &sharedOracleService() {
  static InProcessService Daemon([] {
    ServiceOptions Options;
    Options.Threads = 2;
    return Options;
  }());
  return Daemon;
}

std::string describeResponse(const ServiceResponse &Response) {
  if (Response.Trapped)
    return "trap: " + Response.TrapReason;
  return formatString("exit %lld, %zu output bytes",
                      (long long)Response.ExitValue,
                      Response.Output.size());
}

/// Invariant 2 over the wire: an Execute response must agree with the
/// direct run bit for bit — observables and the dynamic counters the
/// protocol carries.
bool serviceAgrees(const RunResult &Tree, const ServiceResponse &Response,
                   std::string &Detail) {
  if (Tree.Trapped != Response.Trapped ||
      Tree.TrapReason != Response.TrapReason ||
      Tree.ExitValue != Response.ExitValue ||
      Tree.Output != Response.Output) {
    Detail = "tree: " + describeRun(Tree) +
             "; service: " + describeResponse(Response);
    return false;
  }
  if (Tree.Counts.TotalInsts != Response.TotalInsts ||
      Tree.Counts.CondBranches != Response.CondBranches) {
    Detail = formatString(
        "dynamic counters diverge over the wire: tree %llu insts / %llu "
        "branches, service %llu insts / %llu branches",
        (unsigned long long)Tree.Counts.TotalInsts,
        (unsigned long long)Tree.Counts.CondBranches,
        (unsigned long long)Response.TotalInsts,
        (unsigned long long)Response.CondBranches);
    return false;
  }
  return true;
}

/// FaultKind::DropConnection saboteur: two extra connections die against
/// the shared daemon — one mid-frame (a length prefix promising more
/// bytes than ever arrive, which the reader records deterministically
/// once it sees the EOF), and one whose request completes but whose
/// response write finds the peer already gone.  The second races the
/// worker and may or may not be counted; the inverted expectation only
/// needs >= 1 recorded drop and an uncorrupted daemon afterwards.
void dropConnectionsMidRequest(InProcessService &Daemon,
                               const ServiceRequest &Request) {
  const std::string Payload = encodeRequest(Request);
  if (auto Client = Daemon.connect()) {
    const uint32_t Length = (uint32_t)Payload.size();
    const uint8_t Prefix[4] = {
        (uint8_t)(Length & 0xff), (uint8_t)((Length >> 8) & 0xff),
        (uint8_t)((Length >> 16) & 0xff), (uint8_t)((Length >> 24) & 0xff)};
    (void)::send(Client->fd(), Prefix, sizeof(Prefix), MSG_NOSIGNAL);
    (void)::send(Client->fd(), Payload.data(), Payload.size() / 2,
                 MSG_NOSIGNAL);
    Client->close();
  }
  if (auto Client = Daemon.connect()) {
    (void)Client->send(Request);
    Client->close();
  }
}

/// Test-only fault: flip the predicate of the first conditional branch in
/// a block the reorderer created, without swapping the successors.  The
/// corruption only fires when reordering actually restructured something,
/// so un-reordered programs stay clean (and the minimizer must preserve a
/// reorderable shape to keep the failure alive).
bool corruptReorderedBlock(Module &M) {
  for (auto &F : M)
    for (auto &Block : *F) {
      if (Block->getLabel().find("reord") == std::string::npos)
        continue;
      if (auto *Br = dyn_cast_or_null<CondBrInst>(Block->getTerminator())) {
        Br->setPred(invertCondCode(Br->getPred()));
        return true;
      }
    }
  return false;
}

/// Invariant 4 over every sequence the profile covers: the Figure 8
/// selection must never pick an ordering costing more (Equations 1-4)
/// than the original one.
OracleReport checkCosts(std::string_view Source,
                        const std::vector<std::string_view> &Training,
                        const OracleOptions &Opts) {
  OracleReport Report;
  Pass1Result Pass1 = runPass1(Source, Training, Opts.Compile);
  if (!Pass1.ok()) {
    Report.Kind = ViolationKind::CompileError;
    Report.Detail = "pass 1 failed: " + Pass1.Error;
    return Report;
  }
  SequenceKeyer Keyer;
  for (const RangeSequence &Seq : Pass1.Sequences) {
    size_t NumBins = Seq.Conds.size() + Seq.DefaultRanges.size();
    const ProfileEntry *Prof = Pass1.Profile.lookupSequence(
        ProfileKind::RangeBins, Seq.F->getName(), Seq.signature(), NumBins,
        Keyer.next(ProfileKind::RangeBins, Seq.F->getName()));
    if (!Prof ||
        Prof->totalExecutions() < Opts.Compile.Reorder.MinExecutions ||
        Prof->totalExecutions() == 0)
      continue; // reorderSequence skips these too
    std::vector<RangeInfo> Infos = buildRangeInfos(Seq, *Prof);
    OrderingDecision Decision =
        Opts.Compile.Reorder.UseExhaustiveSelection && Infos.size() <= 10
            ? selectOrderingExhaustive(Infos)
            : selectOrdering(Infos);
    // The original ordering tests the explicit conditions in source order
    // and leaves every default range unchecked.
    std::vector<size_t> OriginalOrder, OriginalEliminated;
    for (size_t Index = 0; Index < Seq.Conds.size(); ++Index)
      OriginalOrder.push_back(Index);
    for (size_t Index = Seq.Conds.size(); Index < Infos.size(); ++Index)
      OriginalEliminated.push_back(Index);
    double OriginalCost =
        orderingCost(Infos, OriginalOrder, OriginalEliminated);
    bool Regressed = Decision.Cost > OriginalCost + 1e-9;
    if (Opts.Fault == FaultKind::PretendCostRegression)
      Regressed = !Regressed;
    if (Regressed) {
      Report.Kind = ViolationKind::CostRegression;
      Report.Detail = formatString(
          "sequence %u in %s: selected cost %.6f > original %.6f "
          "(%zu ranges, %llu executions)",
          Seq.Id, Seq.F->getName().c_str(), Decision.Cost, OriginalCost,
          Infos.size(), (unsigned long long)Prof->totalExecutions());
      return Report;
    }
  }
  return Report;
}

} // namespace

OracleReport bropt::runOracle(std::string_view Source,
                              const std::vector<std::string> &TrainingInputs,
                              const std::vector<std::string> &HeldOutInputs,
                              const OracleOptions &Opts) {
  OracleReport Report;

  // Invariant 3: verify after every pass of every compilation below.
  std::string VerifierErrors;
  PassObserverScope Observer([&VerifierErrors](const char *Pass,
                                               Function &F) {
    std::string Errors;
    if (!verifyFunction(F, &Errors))
      VerifierErrors += formatString("after %s in %s: %s; ", Pass,
                                     F.getName().c_str(), Errors.c_str());
  });

  CompileResult Base = compileBaseline(Source, Opts.Compile);
  if (!Base.ok()) {
    Report.Kind = ViolationKind::CompileError;
    Report.Detail = "baseline compile failed: " + Base.Error;
    return Report;
  }

  std::vector<std::string_view> Training(TrainingInputs.begin(),
                                         TrainingInputs.end());
  CompileResult Optimized =
      compileWithReordering(Source, Training, Opts.Compile);
  if (!Optimized.ok()) {
    Report.Kind = ViolationKind::CompileError;
    Report.Detail = "reordering compile failed: " + Optimized.Error;
    return Report;
  }

  // Invariant 6: the Set IV build (optimal comparison trees + ext-TSP
  // layout).  Compiled under the observer too, so its passes get verifier
  // coverage; its held-out runs join the loop below.
  CompileResult SetIV;
  if (Opts.CheckLoweringOptimal) {
    CompileOptions IVOpts = Opts.Compile;
    IVOpts.HeuristicSet = SwitchHeuristicSet::SetIV;
    SetIV = compileWithReordering(Source, Training, IVOpts);
    if (!SetIV.ok()) {
      Report.Kind = ViolationKind::CompileError;
      Report.Detail = "Set IV compile failed: " + SetIV.Error;
      return Report;
    }
    bool Suboptimal =
        SetIV.Stats.ChosenModelCost > SetIV.Stats.ChainModelCost + 1e-9;
    if (Opts.Fault == FaultKind::PretendLoweringRegression)
      Suboptimal = !Suboptimal;
    if (Suboptimal) {
      Report.Kind = ViolationKind::LoweringSuboptimal;
      Report.Detail = formatString(
          "Set IV emitted shapes cost %.6f > chain cost %.6f across %u "
          "reordered sequence(s) (%u trees)",
          SetIV.Stats.ChosenModelCost, SetIV.Stats.ChainModelCost,
          SetIV.Stats.Reordered, SetIV.Stats.OptimalTrees);
      return Report;
    }
  }

  // The misprediction-aware half of invariant 6: the same Set IV build
  // repriced for the paper's predictor (docs/PREDICT.md).  Awareness may
  // only change which shapes win, never what the program computes, and
  // under its own (aware) pricing the chosen shape still never loses to
  // the chain.  Its held-out runs join the loop below across the
  // interpreter tiers.
  CompileResult AwareIV;
  if (Opts.CheckLoweringOptimal) {
    CompileOptions AwareOpts = Opts.Compile;
    AwareOpts.HeuristicSet = SwitchHeuristicSet::SetIV;
    AwareOpts.Predictor = "paper";
    AwareIV = compileWithReordering(Source, Training, AwareOpts);
    if (!AwareIV.ok()) {
      Report.Kind = ViolationKind::CompileError;
      Report.Detail = "aware Set IV compile failed: " + AwareIV.Error;
      return Report;
    }
    if (AwareIV.Stats.ChosenModelCost >
        AwareIV.Stats.ChainModelCost + 1e-9) {
      Report.Kind = ViolationKind::LoweringSuboptimal;
      Report.Detail = formatString(
          "aware Set IV emitted shapes cost %.6f > chain cost %.6f "
          "across %u reordered sequence(s) (%u trees)",
          AwareIV.Stats.ChosenModelCost, AwareIV.Stats.ChainModelCost,
          AwareIV.Stats.Reordered, AwareIV.Stats.OptimalTrees);
      return Report;
    }
  }

  if (!VerifierErrors.empty()) {
    Report.Kind = ViolationKind::VerifierFailure;
    Report.Detail = VerifierErrors;
    return Report;
  }

  if (Opts.Fault == FaultKind::CorruptReorderedBlock)
    corruptReorderedBlock(*Optimized.M);

  Report = checkCosts(Source, Training, Opts);
  if (!Report.ok())
    return Report;

  // Fused programs are decode-time artifacts; build each module's once and
  // reuse it across every held-out input, the way driver/Evaluator's decode
  // cache does.  The baseline module fuses against the reordering compile's
  // pass-1 profile so profile-guided arm ordering gets differential
  // coverage, not just the unprofiled fusions.
  ProfileDB FuseProfile;
  DecodedModule BaseFused, OptFused, AwareFused;
  if (Opts.CheckFusedEngine) {
    FuseOptions BaseFuseOpts;
    if (!Optimized.ProfileText.empty() &&
        FuseProfile.deserialize(Optimized.ProfileText))
      BaseFuseOpts.Profile = &FuseProfile;
    BaseFused = decodeFused(*Base.M, BaseFuseOpts);
    OptFused = decodeFused(*Optimized.M);
    if (AwareIV.M)
      AwareFused = decodeFused(*AwareIV.M);
  }

  // Adaptive controllers live across the whole held-out set: the first
  // inputs drive tier-up and mid-run hot-swaps, later inputs re-enter an
  // already-tiered controller.  Synchronous mode keeps swap timing
  // deterministic.  Built after fault injection on purpose — a corrupted
  // module must still execute identically across engines.
  std::unique_ptr<AdaptiveController> BaseAdaptive, OptAdaptive;
  if (Opts.CheckAdaptiveEngine) {
    RuntimeOptions RO;
    RO.HotThreshold = Opts.AdaptiveHotThreshold;
    RO.SampleInterval = Opts.AdaptiveSampleInterval;
    RO.DriftWindow = Opts.AdaptiveDriftWindow;
    RO.MinSamplesBetweenRecompiles = 64;
    RO.Background = false;
    BaseAdaptive = std::make_unique<AdaptiveController>(*Base.M, RO);
    OptAdaptive = std::make_unique<AdaptiveController>(*Optimized.M, RO);
  }

  // The full tier ladder (tier-2 JIT), persisted across the held-out set
  // the same way: early inputs drive fused tier-up and then native
  // promotion, later inputs re-enter through beginRun() and execute the
  // hot-swapped body.  Under HangNativeCompile the controllers own a
  // private runner whose "compiler" never returns; the compile deadline
  // must cancel it and every run must stay on the fused tier, observably
  // clean — that inverted expectation is what proves the teardown path.
  std::unique_ptr<NativeRunner> HangRunner;
  std::unique_ptr<AdaptiveController> BaseAN, OptAN;
  const bool HangFault = Opts.Fault == FaultKind::HangNativeCompile;
  if (Opts.CheckAdaptiveNativeEngine &&
      (HangFault || NativeRunner::shared().available())) {
    RuntimeOptions RO;
    RO.HotThreshold = Opts.AdaptiveHotThreshold;
    RO.SampleInterval = Opts.AdaptiveSampleInterval;
    RO.DriftWindow = Opts.AdaptiveDriftWindow;
    RO.MinSamplesBetweenRecompiles = 64;
    RO.Background = false;
    RO.NativeTier = true;
    RO.NativeThreshold = Opts.AdaptiveHotThreshold * 2;
    RO.MinSamplesBetweenNativeBuilds = 64;
    RO.NativeRecheckMin = 2;
    RO.NativeRecheckMax = 8;
    if (HangFault) {
      // discoverCompiler() reads $BROPT_CC when the runner is built:
      // point a private runner at a command that never finishes, then
      // restore the environment before anything else can observe it.
      // This runner must never be probed — available() compiles a test
      // TU with no deadline and would hang; only the controllers'
      // NativeCompileTimeout ever touches it.
      const char *SavedCC = getenv("BROPT_CC");
      std::string Saved = SavedCC ? SavedCC : "";
      setenv("BROPT_CC", "sleep 600 #", 1);
      HangRunner = std::make_unique<NativeRunner>();
      if (SavedCC)
        setenv("BROPT_CC", Saved.c_str(), 1);
      else
        unsetenv("BROPT_CC");
      RO.Runner = HangRunner.get();
      RO.NativeCompileTimeout = 0.2;
    }
    BaseAN = std::make_unique<AdaptiveController>(*Base.M, RO);
    OptAN = std::make_unique<AdaptiveController>(*Optimized.M, RO);
  }

  // Native shared objects, also built once per module and reused across
  // the held-out set (NativeRunner's source-hash cache makes repeats of
  // the same module cheap across oracle runs too).  Like the adaptive
  // controllers these are built after fault injection: a corrupted module
  // must compile to native code that misbehaves *identically*.  A module
  // whose emitted C the host compiler rejects is an emitter bug.
  std::shared_ptr<const NativeProgram> BaseNative, OptNative;
  if (Opts.CheckNativeEngine && NativeRunner::shared().available()) {
    std::string NativeError;
    BaseNative = NativeRunner::shared().prepare(*Base.M, &NativeError);
    if (!BaseNative) {
      Report.Kind = ViolationKind::EngineMismatch;
      Report.Detail = "native compile of baseline module failed: " +
                      NativeError;
      return Report;
    }
    OptNative = NativeRunner::shared().prepare(*Optimized.M, &NativeError);
    if (!OptNative) {
      Report.Kind = ViolationKind::EngineMismatch;
      Report.Detail = "native compile of reordered module failed: " +
                      NativeError;
      return Report;
    }
  }

  // The service engine: replay the program through the shared in-process
  // broptd and hold every Execute response to bit-identical agreement
  // with a direct run.  The wire protocol's CompileSpec carries fewer
  // knobs than OracleOptions::Compile (it encodes the heuristic set,
  // common-successor, and method-selection flags only), so the daemon's
  // builds are compared against *reference modules compiled under the
  // daemon's own option mapping* — not against Base/Optimized — making
  // counter agreement meaningful even when the campaign varied knobs the
  // protocol does not encode.  Skipped under CorruptReorderedBlock: that
  // fault corrupts the oracle's in-memory module, while the daemon
  // compiles its own pristine one from source.
  InProcessService *Daemon = nullptr;
  std::unique_ptr<ServiceClient> SvcClient;
  CompileSpec BaseSpec, OptSpec;
  CompileResult SvcBaseRef, SvcOptRef;
  uint64_t DropsBefore = 0;
  const bool DropFault = Opts.Fault == FaultKind::DropConnection;
  if (Opts.CheckServiceEngine &&
      Opts.Fault != FaultKind::CorruptReorderedBlock) {
    Daemon = &sharedOracleService();
    if (!Daemon->ok()) {
      Report.Kind = ViolationKind::EngineMismatch;
      Report.Detail =
          "service: in-process daemon failed to start: " + Daemon->error();
      return Report;
    }
    DropsBefore = Daemon->service().stats().DroppedConnections;
    std::string ConnectError;
    SvcClient = Daemon->connect(&ConnectError);
    if (!SvcClient) {
      Report.Kind = ViolationKind::EngineMismatch;
      Report.Detail = "service: connect failed: " + ConnectError;
      return Report;
    }
    BaseSpec.Source = std::string(Source);
    BaseSpec.HeuristicSet =
        (uint8_t)std::min<unsigned>((unsigned)Opts.Compile.HeuristicSet, 3);
    BaseSpec.CommonSuccessor = Opts.Compile.EnableCommonSuccessorReordering;
    BaseSpec.MethodSelection = Opts.Compile.Reorder.EnableMethodSelection;
    OptSpec = BaseSpec;
    OptSpec.TrainingInputs = TrainingInputs;
    CompileOptions SvcOpts; // mirror of the daemon's compileOptionsFor()
    SvcOpts.HeuristicSet = (SwitchHeuristicSet)BaseSpec.HeuristicSet;
    SvcOpts.EnableCommonSuccessorReordering = BaseSpec.CommonSuccessor;
    SvcOpts.Reorder.EnableMethodSelection = BaseSpec.MethodSelection;
    SvcBaseRef = compileBaseline(Source, SvcOpts);
    // The trained reference mirrors the daemon's buildArtifact() exactly:
    // pass 1 over the training inputs, then compileWithProfile — NOT
    // compileWithReordering, whose extra fresh-measurement layout pass
    // would produce a differently-laid-out (and differently-counting)
    // module than the daemon serves.
    if (Training.empty()) {
      SvcOptRef = compileBaseline(Source, SvcOpts);
    } else {
      Pass1Result SvcP1 = runPass1(Source, Training, SvcOpts);
      if (SvcP1.ok()) {
        ProfileDB SvcProfile;
        SvcProfile.merge(SvcP1.Profile);
        SvcOptRef = compileWithProfile(Source, SvcProfile, SvcOpts);
      } else {
        SvcOptRef.Error = SvcP1.Error;
      }
    }
    if (!SvcBaseRef.ok() || !SvcOptRef.ok()) {
      Report.Kind = ViolationKind::EngineMismatch;
      Report.Detail = "service reference compile failed: " +
                      (SvcBaseRef.ok() ? SvcOptRef.Error : SvcBaseRef.Error);
      return Report;
    }
  }

  for (size_t InputIndex = 0; InputIndex < HeldOutInputs.size();
       ++InputIndex) {
    const std::string &Input = HeldOutInputs[InputIndex];
    RunResult BaseTree =
        runOne(*Base.M, Interpreter::Mode::Tree, Input, Opts.InstructionLimit);
    RunResult BaseDecoded = runOne(*Base.M, Interpreter::Mode::Decoded, Input,
                                   Opts.InstructionLimit);
    RunResult OptTree = runOne(*Optimized.M, Interpreter::Mode::Tree, Input,
                               Opts.InstructionLimit);
    RunResult OptDecoded = runOne(*Optimized.M, Interpreter::Mode::Decoded,
                                  Input, Opts.InstructionLimit);

    std::string Detail;
    if (!enginesAgree(BaseTree, BaseDecoded, "decoded", Detail)) {
      Report.Kind = ViolationKind::EngineMismatch;
      Report.Detail = formatString("baseline module, held-out input %zu: ",
                                   InputIndex) +
                      Detail;
      return Report;
    }
    if (!enginesAgree(OptTree, OptDecoded, "decoded", Detail)) {
      Report.Kind = ViolationKind::EngineMismatch;
      Report.Detail = formatString("reordered module, held-out input %zu: ",
                                   InputIndex) +
                      Detail;
      return Report;
    }
    if (Opts.CheckFusedEngine) {
      RunResult BaseFusedRun =
          runFused(*Base.M, BaseFused, Input, Opts.InstructionLimit);
      RunResult OptFusedRun =
          runFused(*Optimized.M, OptFused, Input, Opts.InstructionLimit);
      if (!enginesAgree(BaseTree, BaseFusedRun, "fused", Detail)) {
        Report.Kind = ViolationKind::EngineMismatch;
        Report.Detail = formatString("baseline module, held-out input %zu: ",
                                     InputIndex) +
                        Detail;
        return Report;
      }
      if (!enginesAgree(OptTree, OptFusedRun, "fused", Detail)) {
        Report.Kind = ViolationKind::EngineMismatch;
        Report.Detail = formatString("reordered module, held-out input %zu: ",
                                     InputIndex) +
                        Detail;
        return Report;
      }
    }
    if (Opts.CheckAdaptiveEngine) {
      RunResult BaseAdaptiveRun = runAdaptive(*Base.M, *BaseAdaptive, Input,
                                              Opts.InstructionLimit);
      RunResult OptAdaptiveRun = runAdaptive(*Optimized.M, *OptAdaptive,
                                             Input, Opts.InstructionLimit);
      if (!enginesAgree(BaseTree, BaseAdaptiveRun, "adaptive", Detail)) {
        Report.Kind = ViolationKind::EngineMismatch;
        Report.Detail = formatString("baseline module, held-out input %zu: ",
                                     InputIndex) +
                        Detail;
        return Report;
      }
      if (!enginesAgree(OptTree, OptAdaptiveRun, "adaptive", Detail)) {
        Report.Kind = ViolationKind::EngineMismatch;
        Report.Detail = formatString("reordered module, held-out input %zu: ",
                                     InputIndex) +
                        Detail;
        return Report;
      }
    }
    if (BaseNative) {
      RunResult BaseNativeRun =
          BaseNative->run(Input, {}, Opts.InstructionLimit);
      RunResult OptNativeRun =
          OptNative->run(Input, {}, Opts.InstructionLimit);
      if (!observablesAgree(BaseTree, BaseNativeRun, "native", Detail)) {
        Report.Kind = ViolationKind::EngineMismatch;
        Report.Detail = formatString("baseline module, held-out input %zu: ",
                                     InputIndex) +
                        Detail;
        return Report;
      }
      if (!observablesAgree(OptTree, OptNativeRun, "native", Detail)) {
        Report.Kind = ViolationKind::EngineMismatch;
        Report.Detail = formatString("reordered module, held-out input %zu: ",
                                     InputIndex) +
                        Detail;
        return Report;
      }
    }
    if (BaseAN) {
      RunResult BaseANRun =
          runAdaptiveNative(*Base.M, *BaseAN, Input, Opts.InstructionLimit);
      RunResult OptANRun = runAdaptiveNative(*Optimized.M, *OptAN, Input,
                                             Opts.InstructionLimit);
      if (!observablesAgree(BaseTree, BaseANRun, "adaptive-native", Detail)) {
        Report.Kind = ViolationKind::EngineMismatch;
        Report.Detail = formatString("baseline module, held-out input %zu: ",
                                     InputIndex) +
                        Detail;
        return Report;
      }
      if (!observablesAgree(OptTree, OptANRun, "adaptive-native", Detail)) {
        Report.Kind = ViolationKind::EngineMismatch;
        Report.Detail = formatString("reordered module, held-out input %zu: ",
                                     InputIndex) +
                        Detail;
        return Report;
      }
    }
    if (!behaviorsAgree(BaseTree, OptTree, Detail)) {
      Report.Kind = ViolationKind::BehaviorMismatch;
      Report.Detail =
          formatString("held-out input %zu: ", InputIndex) + Detail;
      return Report;
    }
    if (SetIV.M) {
      RunResult IVTree = runOne(*SetIV.M, Interpreter::Mode::Tree, Input,
                                Opts.InstructionLimit);
      if (!behaviorsAgree(BaseTree, IVTree, Detail)) {
        Report.Kind = ViolationKind::LoweringSuboptimal;
        Report.Detail = formatString("Set IV module, held-out input %zu: ",
                                     InputIndex) +
                        Detail;
        return Report;
      }
    }
    if (AwareIV.M) {
      // Aware selection: identical observables to the baseline, and the
      // engine tiers must agree on the aware module exactly (counters
      // included) — the repriced orderings are just another module to
      // them.
      RunResult AwareTree = runOne(*AwareIV.M, Interpreter::Mode::Tree,
                                   Input, Opts.InstructionLimit);
      if (!behaviorsAgree(BaseTree, AwareTree, Detail)) {
        Report.Kind = ViolationKind::LoweringSuboptimal;
        Report.Detail =
            formatString("aware Set IV module, held-out input %zu: ",
                         InputIndex) +
            Detail;
        return Report;
      }
      RunResult AwareDecoded = runOne(*AwareIV.M, Interpreter::Mode::Decoded,
                                      Input, Opts.InstructionLimit);
      if (!enginesAgree(AwareTree, AwareDecoded, "decoded", Detail)) {
        Report.Kind = ViolationKind::EngineMismatch;
        Report.Detail =
            formatString("aware Set IV module, held-out input %zu: ",
                         InputIndex) +
            Detail;
        return Report;
      }
      if (Opts.CheckFusedEngine) {
        RunResult AwareFusedRun =
            runFused(*AwareIV.M, AwareFused, Input, Opts.InstructionLimit);
        if (!enginesAgree(AwareTree, AwareFusedRun, "fused", Detail)) {
          Report.Kind = ViolationKind::EngineMismatch;
          Report.Detail =
              formatString("aware Set IV module, held-out input %zu: ",
                           InputIndex) +
              Detail;
          return Report;
        }
      }
    }
    if (SvcClient) {
      ServiceRequest Request;
      Request.Kind = RequestKind::Execute;
      Request.Spec = BaseSpec;
      Request.Input = Input;
      Request.Mode = (uint8_t)Interpreter::Mode::Fused;
      Request.InstructionLimit = Opts.InstructionLimit;
      if (DropFault)
        dropConnectionsMidRequest(*Daemon, Request);
      struct WireCheck {
        const CompileSpec *Spec;
        const Module *Ref;
        const char *Label;
      } Checks[] = {{&BaseSpec, SvcBaseRef.M.get(), "baseline"},
                    {&OptSpec, SvcOptRef.M.get(), "reordered"}};
      for (const WireCheck &Check : Checks) {
        Request.Spec = *Check.Spec;
        RunResult Ref = runOne(*Check.Ref, Interpreter::Mode::Tree, Input,
                               Opts.InstructionLimit);
        ServiceResponse Response;
        std::string TransportError;
        if (!SvcClient->roundTripRetrying(Request, Response,
                                          &TransportError)) {
          Report.Kind = ViolationKind::EngineMismatch;
          Report.Detail =
              formatString("service %s spec, held-out input %zu: "
                           "transport failed: ",
                           Check.Label, InputIndex) +
              (TransportError.empty() ? std::string("rejected")
                                      : TransportError);
          return Report;
        }
        if (!Response.ok()) {
          Report.Kind = ViolationKind::EngineMismatch;
          Report.Detail = formatString("service %s spec, held-out input "
                                       "%zu: request failed: ",
                                       Check.Label, InputIndex) +
                          Response.Error;
          return Report;
        }
        if (!serviceAgrees(Ref, Response, Detail)) {
          Report.Kind = ViolationKind::EngineMismatch;
          Report.Detail = formatString("service %s spec, held-out input "
                                       "%zu: ",
                                       Check.Label, InputIndex) +
                          Detail;
          return Report;
        }
      }
    }
  }

  // The saboteur's mid-frame EOFs are recorded on the daemon's reader
  // threads; give the last one a moment to land before snapshotting.
  if (Daemon) {
    uint64_t Drops = Daemon->service().stats().DroppedConnections;
    for (int Spin = 0; DropFault && Drops <= DropsBefore && Spin < 200;
         ++Spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      Drops = Daemon->service().stats().DroppedConnections;
    }
    Report.DroppedConnections = Drops - DropsBefore;
  }

  // Sync mode means nothing is still in flight here; the stats are final.
  if (BaseAN)
    Report.NativeCompileCancellations =
        BaseAN->stats().NativeCompilesCancelled +
        OptAN->stats().NativeCompilesCancelled;

  // Invariant 5: what the adaptive runtime learned must survive disk.  The
  // exported profile, reloaded from either format and replayed through the
  // offline pass-2 selection, has to reproduce the deployed orderings, and
  // an AOT build from it has to behave like the live run did.
  if (Opts.CheckAdaptiveEngine && Opts.CheckProfileReplay &&
      BaseAdaptive->tiered()) {
    ProfileDB Learned;
    BaseAdaptive->exportProfile(Learned);
    ProfileDB FromText, FromBinary;
    std::string ParseError;
    if (!FromText.deserialize(Learned.serializeText(), &ParseError) ||
        !FromBinary.deserialize(Learned.serializeBinary(), &ParseError)) {
      Report.Kind = ViolationKind::ProfileReplayMismatch;
      Report.Detail = "exported profile failed to re-load: " + ParseError;
      return Report;
    }
    const std::string Live = BaseAdaptive->deployedOrderingSignature();
    const std::string TextSig = orderingSignaturesFromProfile(*Base.M,
                                                              FromText);
    const std::string BinarySig = orderingSignaturesFromProfile(*Base.M,
                                                                FromBinary);
    if (TextSig != Live || BinarySig != Live) {
      Report.Kind = ViolationKind::ProfileReplayMismatch;
      Report.Detail = "replayed orderings diverge from live tier-up: live '" +
                      Live + "', text replay '" + TextSig +
                      "', binary replay '" + BinarySig + "'";
      return Report;
    }

    CompileResult Replayed =
        compileWithProfile(Source, FromText, Opts.Compile);
    if (!Replayed.ok()) {
      Report.Kind = ViolationKind::ProfileReplayMismatch;
      Report.Detail = "recompile from saved profile failed: " +
                      Replayed.Error;
      return Report;
    }
    for (size_t InputIndex = 0; InputIndex < HeldOutInputs.size();
         ++InputIndex) {
      const std::string &Input = HeldOutInputs[InputIndex];
      RunResult Ref = runOne(*Base.M, Interpreter::Mode::Tree, Input,
                             Opts.InstructionLimit);
      RunResult Rep = runOne(*Replayed.M, Interpreter::Mode::Tree, Input,
                             Opts.InstructionLimit);
      std::string Detail;
      if (!behaviorsAgree(Ref, Rep, Detail)) {
        Report.Kind = ViolationKind::ProfileReplayMismatch;
        Report.Detail = formatString("profile-replayed build, held-out "
                                     "input %zu: ",
                                     InputIndex) +
                        Detail;
        return Report;
      }
    }
  }
  return Report;
}
