//===- fuzz/Generator.cpp - Seeded random Mini-C program generator --------===//

#include "fuzz/Generator.h"

#include "fuzz/Rng.h"
#include "support/Strings.h"

#include <algorithm>

using namespace bropt;

namespace {

/// A closed byte interval a branch condition tests.
struct Interval {
  int Lo;
  int Hi;
};

/// Builds one program's source text.  Emission is append-only; Indent
/// tracks the current nesting depth for readable output (the minimizer
/// reparses, so layout is cosmetic).
class ProgramBuilder {
public:
  explicit ProgramBuilder(uint64_t Seed) : Seed(Seed), R(Seed) {}

  GeneratedProgram run() {
    NumCounters = static_cast<unsigned>(R.range(2, 5));
    ArrayWords = static_cast<unsigned>(R.range(8, 32));
    emitGlobals();
    if (R.pct(55))
      emitClassifier();
    emitMain();

    GeneratedProgram P;
    P.Seed = Seed;
    P.Source = std::move(Out);
    P.TrainingInputs = makeInputs(/*Salt=*/1, /*Count=*/2, /*BiasPct=*/70);
    P.HeldOutInputs = makeInputs(/*Salt=*/2, /*Count=*/3, /*BiasPct=*/40);
    // Boundary inputs: no bytes at all, and a single interesting byte.
    P.HeldOutInputs.push_back("");
    if (!Interesting.empty())
      P.HeldOutInputs.push_back(
          std::string(1, static_cast<char>(R.pick(Interesting))));
    // Phase-shift input: the byte distribution flips abruptly halfway
    // through one run.  Exercises the adaptive runtime's drift detection
    // and mid-run re-optimization; fresh salts keep earlier inputs stable
    // for existing seeds.
    std::string PhaseShift = makeInputs(/*Salt=*/3, /*Count=*/1,
                                        /*BiasPct=*/90)
                                 .front();
    PhaseShift += makeInputs(/*Salt=*/4, /*Count=*/1, /*BiasPct=*/10).front();
    P.HeldOutInputs.push_back(std::move(PhaseShift));
    return P;
  }

private:
  //===------------------------------------------------------------------===//
  // Text emission helpers
  //===------------------------------------------------------------------===//

  void line(const std::string &Text) {
    Out.append(2 * Indent, ' ');
    Out += Text;
    Out += "\n";
  }

  void open(const std::string &Head) {
    line(Head + " {");
    ++Indent;
  }

  void close(const std::string &Tail = "}") {
    --Indent;
    line(Tail);
  }

  std::string counter(unsigned Index) { return formatString("g%u", Index); }

  std::string randomCounter() {
    return counter(static_cast<unsigned>(R.range(0, NumCounters - 1)));
  }

  /// Remembers byte values that make conditions go both ways, clamped to
  /// the generator's byte space.
  void interesting(int Value) {
    if (Value >= 0 && Value <= 127)
      Interesting.push_back(static_cast<unsigned char>(Value));
  }

  //===------------------------------------------------------------------===//
  // Intervals: nonoverlapping range allocation
  //===------------------------------------------------------------------===//

  /// Carves \p Count pairwise-disjoint intervals out of [0, 127] with
  /// random gaps, at most \p MaxWidth wide each, then shuffles them so the
  /// emitted test order is independent of the value order.  Nonoverlap is
  /// what makes the chain a reorderable sequence (paper Definition 5).
  std::vector<Interval> carveIntervals(unsigned Count, int MaxWidth) {
    std::vector<Interval> Result;
    int Cursor = static_cast<int>(R.range(0, 8));
    for (unsigned Index = 0; Index < Count && Cursor <= 126; ++Index) {
      int Width = static_cast<int>(R.range(0, MaxWidth - 1));
      int Lo = Cursor;
      int Hi = std::min(Lo + Width, 127);
      Result.push_back({Lo, Hi});
      interesting(Lo - 1);
      interesting(Lo);
      interesting((Lo + Hi) / 2);
      interesting(Hi);
      interesting(Hi + 1);
      Cursor = Hi + 1 + static_cast<int>(R.range(1, 9));
    }
    R.shuffle(Result);
    return Result;
  }

  /// Renders the Mini-C test for \p I against variable \p Var, choosing
  /// among the forms of paper Table 1.
  std::string conditionFor(const Interval &I, const std::string &Var) {
    if (I.Lo == I.Hi)
      return formatString("%s == %d", Var.c_str(), I.Lo);
    // Bounded range: the two-branch Form 4 condition.
    return formatString("%s >= %d && %s <= %d", Var.c_str(), I.Lo,
                        Var.c_str(), I.Hi);
  }

  //===------------------------------------------------------------------===//
  // Actions: trap-free side effects
  //===------------------------------------------------------------------===//

  /// One statement with an observable effect.  \p Var is the in-scope byte
  /// variable.  Array indices are wrapped into bounds and divisors are
  /// nonzero constants, so no action can trap.
  std::string action(const std::string &Var) {
    switch (R.range(0, 5)) {
    case 0:
      return randomCounter() + " = " + randomCounter() + " + 1;";
    case 1:
      return formatString("%s = %s + %lld;", randomCounter().c_str(),
                          Var.c_str(), (long long)R.range(1, 9));
    case 2:
      return formatString("tab[%s %% %u] = tab[%s %% %u] + 1;", Var.c_str(),
                          ArrayWords, Var.c_str(), ArrayWords);
    case 3:
      return formatString("%s = %s + (%s / %lld);", randomCounter().c_str(),
                          randomCounter().c_str(), Var.c_str(),
                          (long long)R.range(2, 7));
    case 4:
      return formatString("putchar(%lld);", (long long)R.range(33, 126));
    default:
      return formatString("%s = (%s * %lld) %% %lld;",
                          randomCounter().c_str(), Var.c_str(),
                          (long long)R.range(2, 6),
                          (long long)R.range(11, 97));
    }
  }

  //===------------------------------------------------------------------===//
  // Top-level pieces
  //===------------------------------------------------------------------===//

  void emitGlobals() {
    for (unsigned Index = 0; Index < NumCounters; ++Index)
      line(formatString("int g%u = 0;", Index));
    std::string Init;
    unsigned InitCount = static_cast<unsigned>(R.range(0, 4));
    for (unsigned Index = 0; Index < InitCount; ++Index) {
      if (Index)
        Init += ", ";
      Init += formatString("%lld", (long long)R.range(0, 99));
    }
    if (InitCount)
      line(formatString("int tab[%u] = {%s};", ArrayWords, Init.c_str()));
    else
      line(formatString("int tab[%u];", ArrayWords));
    line("");
  }

  /// A helper whose body is itself a reorderable shape; main calls it so
  /// sequences in non-entry functions are exercised too.
  void emitClassifier() {
    HaveClassifier = true;
    open("int classify(int v)");
    if (R.pct(50))
      emitIfChain("v", /*Returning=*/true);
    else
      emitSwitch("v", /*Returning=*/true);
    line(formatString("return %lld;", (long long)R.range(-3, 9)));
    close();
    line("");
  }

  void emitMain() {
    open("int main()");
    line("int c;");
    line("int acc = 0;");
    line("int t = 0;");
    open("while ((c = getchar()) != -1)");
    unsigned Constructs = static_cast<unsigned>(R.range(1, 3));
    for (unsigned Index = 0; Index < Constructs; ++Index)
      emitConstruct();
    close();
    for (unsigned Index = 0; Index < NumCounters; ++Index)
      line(formatString("printint(g%u);", Index));
    line("printint(acc);");
    line("printint(t);");
    line(formatString("printint(tab[%u]);", ArrayWords / 2));
    line(formatString("return %lld;", (long long)R.range(0, 9)));
    close();
  }

  void emitConstruct() {
    switch (R.range(0, HaveClassifier ? 4 : 3)) {
    case 0:
      emitIfChain("c", /*Returning=*/false);
      break;
    case 1:
      emitSwitch("c", /*Returning=*/false);
      break;
    case 2:
      line(formatString("acc = acc + tab[c %% %u];", ArrayWords));
      line("t = (t + c) % 1000;");
      break;
    case 3:
      open(formatString("for (t = 0; t < %lld; t = t + 1)",
                        (long long)R.range(2, 4)));
      line(formatString("tab[(t + c) %% %u] = tab[(t + c) %% %u] + 1;",
                        ArrayWords, ArrayWords));
      close();
      break;
    default:
      line("acc = acc + classify(c);");
      break;
    }
  }

  /// An else-if chain over nonoverlapping intervals of \p Var — the
  /// paper's canonical reorderable sequence.  A fraction of the else arms
  /// interpose a side effect before the next test (paper Definition 6),
  /// which the transformation must replay on the right exit edges.
  void emitIfChain(const std::string &Var, bool Returning) {
    std::vector<Interval> Arms =
        carveIntervals(static_cast<unsigned>(R.range(2, 7)), 6);
    unsigned Closes = 0;
    for (size_t Index = 0; Index < Arms.size(); ++Index) {
      bool First = Index == 0;
      bool Interpose = !First && R.pct(30);
      if (First) {
        open("if (" + conditionFor(Arms[Index], Var) + ")");
      } else if (Interpose) {
        close("} else {");
        ++Indent;
        line(action(Var));
        open("if (" + conditionFor(Arms[Index], Var) + ")");
        ++Closes;
      } else {
        close("} else if (" + conditionFor(Arms[Index], Var) + ") {");
        ++Indent;
      }
      line(action(Var));
      if (Returning && R.pct(50))
        line(formatString("return %lld;", (long long)R.range(0, 20)));
    }
    if (R.pct(60)) {
      close("} else {");
      ++Indent;
      line(action(Var));
    }
    close();
    while (Closes--)
      close();
  }

  /// A switch over \p Var.  Density and case count are chosen to cover the
  /// jump-table, binary-search, and linear-search shapes of the Table 2
  /// heuristics regardless of which set the oracle compiles under.
  void emitSwitch(const std::string &Var, bool Returning) {
    unsigned Count = static_cast<unsigned>(R.range(3, 14));
    int Step;
    switch (R.range(0, 2)) {
    case 0:
      Step = 1; // dense: Set I tables at >= 4 cases
      break;
    case 1:
      Step = static_cast<int>(R.range(2, 3)); // borderline density
      break;
    default:
      Step = static_cast<int>(R.range(5, 12)); // sparse: search shapes
      break;
    }
    int Value = static_cast<int>(R.range(0, 20));
    std::vector<int> Labels;
    for (unsigned Index = 0; Index < Count && Value <= 127; ++Index) {
      Labels.push_back(Value);
      interesting(Value);
      interesting(Value + 1);
      Value += Step + (Step > 1 ? static_cast<int>(R.range(0, 1)) : 0);
    }
    open("switch (" + Var + ")");
    --Indent; // case labels sit at switch depth, bodies one deeper
    for (size_t Index = 0; Index < Labels.size(); ++Index) {
      line(formatString("case %d:", Labels[Index]));
      ++Indent;
      line(action(Var));
      if (Returning && R.pct(40))
        line(formatString("return %lld;", (long long)R.range(0, 20)));
      // Occasional fall-through into the next case, as real scanners have.
      if (Index + 1 == Labels.size() || R.pct(85))
        line("break;");
      --Indent;
    }
    if (R.pct(70)) {
      line("default:");
      ++Indent;
      if (R.pct(35)) {
        // Nested work in the default arm: another reorderable chain.
        emitIfChain(Var, Returning);
      } else {
        line(action(Var));
      }
      line("break;");
      --Indent;
    }
    ++Indent;
    close();
  }

  //===------------------------------------------------------------------===//
  // Input synthesis
  //===------------------------------------------------------------------===//

  /// Builds \p Count byte strings.  \p BiasPct percent of bytes come from
  /// the interesting pool (condition boundaries), the rest are uniform.
  std::vector<std::string> makeInputs(uint64_t Salt, unsigned Count,
                                      unsigned BiasPct) {
    Rng InputRng(Rng::mix(Seed, Salt));
    std::vector<std::string> Inputs;
    for (unsigned Index = 0; Index < Count; ++Index) {
      std::string Bytes;
      size_t Length = static_cast<size_t>(InputRng.range(30, 200));
      for (size_t B = 0; B < Length; ++B) {
        if (!Interesting.empty() && InputRng.pct(BiasPct))
          Bytes += static_cast<char>(InputRng.pick(Interesting));
        else
          Bytes += static_cast<char>(InputRng.range(0, 127));
      }
      Inputs.push_back(std::move(Bytes));
    }
    return Inputs;
  }

  uint64_t Seed;
  Rng R;
  std::string Out;
  unsigned Indent = 0;
  unsigned NumCounters = 0;
  unsigned ArrayWords = 0;
  bool HaveClassifier = false;
  std::vector<unsigned char> Interesting;
};

} // namespace

GeneratedProgram bropt::generateProgram(uint64_t Seed) {
  return ProgramBuilder(Seed).run();
}
