//===- fuzz/Oracle.h - Pipeline-wide differential-testing oracle -*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one Mini-C program through the full two-pass pipeline (compile ->
/// instrument -> profile -> reorder -> clean up) and checks six invariants:
///
///  1. Behavior: the reordered and baseline modules produce identical
///     output, exit value, and trap behavior on every held-out input.
///  2. Engines: the tree-walking, decoded, fused threaded-dispatch, and
///     adaptive (online-tiering) interpreters agree on every artifact of
///     every run, dynamic counters included.  The AOT-native and
///     adaptive-native (tier-2 JIT) engines join on the observables half
///     of the bar — trap, exit value, output — since native code collects
///     no dynamic counters.
///  3. Verification: the IR verifier passes after every individual pass
///     (observed through the pass-observer hook).
///  4. Cost: for every sequence the transformation reordered, the selected
///     ordering's expected cost under the measured profile (Equations 1-4)
///     is no worse than the original ordering's.
///  5. Profile persistence: when the adaptive runtime tiers up, its
///     exported ProfileDB — round-tripped through both on-disk formats —
///     replayed through the offline pass-2 pipeline must select exactly
///     the orderings the live tier-up deployed, and the recompiled module
///     must behave identically on every held-out input.
///  6. Lowering optimality: the same program recompiled under Set IV
///     (optimal comparison trees + ext-TSP layout, docs/LOWERING.md) must
///     stay observably identical to the baseline on every held-out input,
///     and its emitted shapes must never model-cost more than the Figure-8
///     chains they replaced (ReorderStats::ChosenModelCost <=
///     ChainModelCost — the by-construction never-worse guarantee).  The
///     misprediction-aware Set IV build (selection repriced for the
///     paper's predictor, docs/PREDICT.md) is held to the same bar, plus
///     exact cross-tier agreement on the aware module itself.
///
/// Fault injection deliberately corrupts the pipeline so tests can prove
/// the oracle and the minimizer actually detect and shrink failures.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_FUZZ_ORACLE_H
#define BROPT_FUZZ_ORACLE_H

#include "driver/Driver.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bropt {

/// Test-only pipeline corruptions.
enum class FaultKind : uint8_t {
  None,
  /// After reordering, invert the predicate of the first conditional
  /// branch in a reordered block without swapping its successors — a
  /// classic transformation bug the behavior oracle must catch.
  CorruptReorderedBlock,
  /// After reordering, claim a lower cost than Equation 1 yields by
  /// perturbing nothing but reporting; modeled as inverting the cost
  /// comparison so the cost oracle's plumbing is testable.
  PretendCostRegression,
  /// Invert the Set IV never-worse comparison (ChosenModelCost <=
  /// ChainModelCost) so the lowering-optimality oracle's plumbing is
  /// testable the same way.
  PretendLoweringRegression,
  /// Point the adaptive-native tier's host compiler at a command that
  /// never returns.  Not a corruption: the expectation inverts — a clean
  /// oracle run with at least one recorded compile cancellation proves
  /// the tier-2 deadline machinery tears down a wedged $BROPT_CC and
  /// falls back to the fused tier without observable divergence.
  HangNativeCompile,
  /// With CheckServiceEngine: before each replayed request, open extra
  /// connections to the in-process broptd and kill them mid-request —
  /// half-written frames, and completed requests whose response write
  /// finds the peer gone.  Another inverted expectation: the run must
  /// stay clean (the daemon's shared artifact cache and profile shards
  /// are never corrupted by a vanishing client) with at least one
  /// dropped connection recorded by the server.
  DropConnection,
};

/// Which invariant a violation report refers to.
enum class ViolationKind : uint8_t {
  None,
  /// The front end rejected the program.  Counted separately: for
  /// generated programs this is a generator bug, not a pipeline bug, and
  /// the minimizer predicate must never confuse it with a real failure.
  CompileError,
  BehaviorMismatch, ///< invariant 1
  EngineMismatch,   ///< invariant 2
  VerifierFailure,  ///< invariant 3
  CostRegression,   ///< invariant 4
  ProfileReplayMismatch, ///< invariant 5
  LoweringSuboptimal,    ///< invariant 6
};

const char *violationKindName(ViolationKind Kind);

/// Oracle configuration: the pipeline options under test plus the fault to
/// inject (if any).
struct OracleOptions {
  CompileOptions Compile;
  FaultKind Fault = FaultKind::None;
  /// Per-run cap; generated programs execute far fewer instructions, so
  /// hitting this cap is itself suspicious and reported as a mismatch
  /// when only one side hits it.
  uint64_t InstructionLimit = 50'000'000;
  /// Also run both modules through the fused threaded-dispatch engine
  /// (sim/Fuse.h) and hold it to the same exact-agreement bar as the
  /// decoded engine.  On by default; the flag exists so a fusion bug can
  /// be bisected away from pipeline bugs.
  bool CheckFusedEngine = true;
  /// Also run both modules through the adaptive runtime
  /// (runtime/AdaptiveController.h) with aggressive tiering knobs —
  /// synchronous optimization, tiny hot threshold, short drift windows —
  /// so tier-up, mid-run hot-swap, and drift re-optimization all happen
  /// *inside* the differential run, and hold it to the same
  /// exact-agreement bar.  One controller per module persists across the
  /// held-out inputs, so later inputs re-enter an already-tiered
  /// controller (the Evaluator's cache-hit path).
  bool CheckAdaptiveEngine = true;
  /// Tiering knobs for CheckAdaptiveEngine; small enough that generated
  /// programs tier up within their held-out runs.
  uint64_t AdaptiveHotThreshold = 256;
  uint32_t AdaptiveSampleInterval = 16;
  uint32_t AdaptiveDriftWindow = 32;
  /// Also AOT-compile both modules to native code (codegen/CEmitter.h +
  /// codegen/NativeRunner.h) and require bit-identical observables —
  /// trap/exit/output — against the tree walker on every held-out input.
  /// Native runs collect no dynamic counters, so they are held to the
  /// observables half of the engine bar.  A generated program the emitter
  /// turns into C the host compiler rejects is itself an emitter bug and
  /// is reported as an engine mismatch.  Silently skipped when no host
  /// compiler is available (NativeRunner::available()).
  bool CheckNativeEngine = true;
  /// Also run both modules through the full tier ladder (Mode::
  /// AdaptiveNative): persistent controllers with NativeTier on and a
  /// native threshold low enough that held-out runs promote to tier-2,
  /// held to the observables bar against the tree walker (native bodies
  /// collect no counters).  Under FaultKind::HangNativeCompile the
  /// controllers get a private NativeRunner whose compiler hangs plus a
  /// short compile deadline, so the run exercises cancellation instead
  /// of promotion.  Silently skipped (except under that fault, which
  /// needs no working compiler) when NativeRunner is unavailable.
  bool CheckAdaptiveNativeEngine = true;
  /// Invariant 5: after the held-out runs, if the baseline module's
  /// adaptive controller tiered up, export its learned profile, round-trip
  /// it through the text and binary formats, and require (a) pass-2
  /// selection over the reloaded profile to pick exactly the orderings the
  /// live tier-up deployed and (b) an AOT recompile from the profile to
  /// behave identically on every held-out input.  Needs
  /// CheckAdaptiveEngine.
  bool CheckProfileReplay = true;
  /// Invariant 6: recompile under Set IV and hold the optimal-tree +
  /// ext-TSP build to (a) observable identity with the baseline on every
  /// held-out input and (b) the never-worse model-cost guarantee.  Also
  /// recompiles misprediction-aware (Predictor "paper"): the repriced
  /// selection must keep (a) and (b) under its own pricing, and the
  /// tree/decoded/fused tiers must agree exactly on the aware module.
  bool CheckLoweringOptimal = true;
  /// Also replay the program through an in-process broptd
  /// (service/Service.h): submit the same source + training inputs as a
  /// daemon Compile, then Execute every held-out input over the wire and
  /// hold the responses to bit-identical agreement — trap, exit value,
  /// output, and dynamic counters — with the direct executeModule runs
  /// the engine oracle already made.  The daemon instance is shared
  /// across the whole campaign, so its artifact cache and profile shards
  /// accumulate state from every prior program — exactly the surface a
  /// corruption would poison.  Off by default (spins up a socket);
  /// bropt-fuzz --serve turns it on.
  bool CheckServiceEngine = false;
};

/// Outcome of one oracle run.
struct OracleReport {
  ViolationKind Kind = ViolationKind::None;
  /// Human-readable explanation with enough detail to debug: which input,
  /// which sequence, which pass.
  std::string Detail;
  /// Tier-2 compiles the adaptive-native controllers cancelled (deadline
  /// or teardown), summed over both modules.  Populated on clean runs;
  /// FaultKind::HangNativeCompile expects ok() && this >= 1.
  uint64_t NativeCompileCancellations = 0;
  /// CheckServiceEngine only: connections the shared daemon saw die
  /// mid-request over this run.  FaultKind::DropConnection expects
  /// ok() && this >= 1 — the drops happened and corrupted nothing.
  uint64_t DroppedConnections = 0;

  bool ok() const { return Kind == ViolationKind::None; }
};

/// Runs the full oracle over \p Source.  \p TrainingInputs feed the pass-1
/// profile; \p HeldOutInputs are what the behavior and engine oracles
/// compare on.  Installs a pass observer for the duration (not
/// thread-safe; see setPassObserver).
OracleReport runOracle(std::string_view Source,
                       const std::vector<std::string> &TrainingInputs,
                       const std::vector<std::string> &HeldOutInputs,
                       const OracleOptions &Opts);

} // namespace bropt

#endif // BROPT_FUZZ_ORACLE_H
