//===- fuzz/Rng.h - Deterministic PRNG for the fuzzer -----------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A splitmix64-based PRNG.  Every fuzzer artifact — program, training
/// input, option matrix — derives purely from a 64-bit seed through this
/// generator, so any failure reproduces from its seed alone.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_FUZZ_RNG_H
#define BROPT_FUZZ_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace bropt {

/// splitmix64: tiny, fast, and statistically solid for fuzzing purposes.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [Lo, Hi], inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    next() % static_cast<uint64_t>(Hi - Lo + 1));
  }

  /// True with probability \p Percent / 100.
  bool pct(unsigned Percent) {
    return next() % 100 < Percent;
  }

  /// Uniformly chosen element of \p Pool.
  template <typename T> const T &pick(const std::vector<T> &Pool) {
    assert(!Pool.empty() && "pick from an empty pool");
    return Pool[next() % Pool.size()];
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t Index = Items.size(); Index > 1; --Index)
      std::swap(Items[Index - 1], Items[next() % Index]);
  }

  /// Derives an independent stream for sub-task \p Salt of this seed.
  static uint64_t mix(uint64_t Seed, uint64_t Salt) {
    Rng R(Seed ^ (0x5851f42d4c957f2dULL * (Salt + 1)));
    return R.next();
  }

private:
  uint64_t State;
};

} // namespace bropt

#endif // BROPT_FUZZ_RNG_H
