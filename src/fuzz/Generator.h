//===- fuzz/Generator.h - Seeded random Mini-C program generator -*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random Mini-C programs biased toward the shapes the paper's
/// transformation targets: if/else-if chains testing one variable against
/// nonoverlapping constants and bounded (Form 4) ranges, switch statements
/// sized and spaced to hit all three Table 2 heuristic-set shapes,
/// intervening side effects between conditions, and nested work in default
/// arms.  Programs are trap-free and terminating by construction (the only
/// unbounded loop consumes the finite input), so every oracle disagreement
/// is a real bug, not a generator artifact.
///
/// Each program comes with seeded training and held-out input sets.  The
/// two sets draw from different mixtures of the program's own branch
/// constants, so the profile the transformation trains on is deliberately
/// not the distribution it is judged on — behavior must be preserved under
/// distribution shift, only performance may vary.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_FUZZ_GENERATOR_H
#define BROPT_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace bropt {

/// One generated test case: everything derives from Seed.
struct GeneratedProgram {
  uint64_t Seed = 0;
  std::string Source;
  /// Inputs the instrumented pass-1 binary trains on.
  std::vector<std::string> TrainingInputs;
  /// Inputs the oracle compares baseline vs. reordered executables on;
  /// includes the empty input and other boundary cases.
  std::vector<std::string> HeldOutInputs;
};

/// Generates the program and inputs for \p Seed.  Pure: equal seeds give
/// equal programs.
GeneratedProgram generateProgram(uint64_t Seed);

} // namespace bropt

#endif // BROPT_FUZZ_GENERATOR_H
