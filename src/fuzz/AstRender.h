//===- fuzz/AstRender.h - Render a Mini-C AST back to source ----*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a TranslationUnit as compilable Mini-C source.  Expressions are
/// fully parenthesized, so rendering never has to reason about operator
/// precedence and render(parse(S)) is always semantics-preserving.  The
/// minimizer shrinks programs by mutating the AST and re-rendering.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_FUZZ_ASTRENDER_H
#define BROPT_FUZZ_ASTRENDER_H

#include "lang/AST.h"

#include <string>

namespace bropt {

/// Renders \p Unit as Mini-C source text.
std::string renderUnit(const TranslationUnit &Unit);

/// Number of statements in \p Unit, excluding blocks and empty statements
/// (the minimizer's size metric).
size_t countStatements(const TranslationUnit &Unit);

} // namespace bropt

#endif // BROPT_FUZZ_ASTRENDER_H
