//===- fuzz/Fuzzer.h - Randomized differential-testing campaigns -*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives fuzzing campaigns: generate a program from a seed, pick a
/// pipeline configuration from the same seed (cycling heuristic sets,
/// method selection, exhaustive ordering search, common-successor
/// reordering, default-target duplication, Form-4 branch ordering), run
/// the four-invariant oracle, and on a violation minimize the program and
/// write a reproducer to the corpus directory.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_FUZZ_FUZZER_H
#define BROPT_FUZZ_FUZZER_H

#include "fuzz/Oracle.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bropt {

/// Campaign configuration.
struct FuzzOptions {
  /// Base seed; program i uses a stream derived from (Seed, i).
  uint64_t Seed = 1;
  /// Number of programs to run (ignored when Seconds > 0).
  unsigned Programs = 200;
  /// Wall-clock budget; 0 means run exactly Programs programs.
  unsigned Seconds = 0;
  /// Directory reproducers are written to; empty disables writing.
  std::string CorpusDir;
  /// Fault to inject into every oracle run (self-test modes).
  FaultKind Fault = FaultKind::None;
  /// Cap on delta-debugging rounds per violation.
  unsigned MinimizeRounds = 16;
  /// Run the native-engine agreement invariant (OracleOptions::
  /// CheckNativeEngine).  The oracle itself skips the check when no host
  /// compiler is available, so leaving this on is safe everywhere; the
  /// knob exists to bisect native-emitter bugs away from pipeline bugs
  /// and to keep smoke campaigns cheap (bropt-fuzz --native off).
  bool CheckNativeEngine = true;
  /// Run the tier-2 engine agreement invariant (OracleOptions::
  /// CheckAdaptiveNativeEngine): both modules also execute through the
  /// full adaptive→native tier ladder and are held to the observables
  /// bar.  Same skip/bisect story as CheckNativeEngine
  /// (bropt-fuzz --adaptive-native off).
  bool CheckAdaptiveNativeEngine = true;
  /// Run the lowering-optimality invariant (OracleOptions::
  /// CheckLoweringOptimal): every program is also recompiled under Set IV
  /// and held to observable identity plus the never-worse model-cost
  /// guarantee.  The knob exists to bisect lowering bugs away from
  /// pipeline bugs and to keep smoke campaigns cheap
  /// (bropt-fuzz --lowering-check off).
  bool CheckLoweringOptimal = true;
  /// Run the service-engine invariant (OracleOptions::CheckServiceEngine):
  /// every program is also replayed through a campaign-wide in-process
  /// broptd and the wire responses held to bit-identical agreement with
  /// direct runs.  Off by default — bropt-fuzz --serve turns it on.
  /// FaultKind::DropConnection forces it on (the fault is meaningless
  /// without the daemon).
  bool CheckServiceEngine = false;
  /// Print per-violation detail to stderr as the campaign runs.
  bool Verbose = false;
};

/// One campaign violation, minimized.
struct FuzzViolation {
  uint64_t ProgramSeed = 0;
  ViolationKind Kind = ViolationKind::None;
  std::string Detail;
  /// Minimized reproducer source.
  std::string Source;
  size_t Statements = 0;
  /// Path the reproducer was written to ("" if corpus writing is off).
  std::string Path;
};

/// Campaign results.
struct FuzzCampaignResult {
  unsigned ProgramsRun = 0;
  /// Programs the front end rejected — generator bugs, tracked separately
  /// from pipeline violations and expected to be zero.
  unsigned CompileErrors = 0;
  /// Tier-2 compile cancellations summed over every clean oracle run.
  /// FaultKind::HangNativeCompile inverts the campaign expectation: zero
  /// violations AND at least one cancellation, proving the compile
  /// deadline tears down a wedged host compiler without observable harm.
  uint64_t NativeCompileCancellations = 0;
  /// Connections the shared daemon saw die mid-request, summed over every
  /// clean oracle run (CheckServiceEngine only).  FaultKind::
  /// DropConnection inverts the campaign expectation the same way: zero
  /// violations AND at least one drop, proving a vanishing client never
  /// corrupts the daemon's shared caches or profile shards.
  uint64_t DroppedConnections = 0;
  std::vector<FuzzViolation> Violations;
};

/// Derives the pipeline configuration program \p ProgramSeed runs under.
/// Exposed so a reproducer's recorded seed rebuilds the exact options.
OracleOptions optionsForSeed(uint64_t ProgramSeed, FaultKind Fault);

/// Runs a campaign.
FuzzCampaignResult runFuzzCampaign(const FuzzOptions &Opts);

/// Renders a reproducer file: the minimized source preceded by a comment
/// header recording the seed, configuration, and violation so the case
/// replays from the file alone.
std::string renderReproducer(const FuzzViolation &Violation);

} // namespace bropt

#endif // BROPT_FUZZ_FUZZER_H
