//===- fuzz/AstRender.cpp - Render a Mini-C AST back to source ------------===//

#include "fuzz/AstRender.h"

#include "support/Debug.h"
#include "support/Strings.h"

using namespace bropt;

namespace {

const char *binOpToken(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
    return "+";
  case BinOpKind::Sub:
    return "-";
  case BinOpKind::Mul:
    return "*";
  case BinOpKind::Div:
    return "/";
  case BinOpKind::Rem:
    return "%";
  case BinOpKind::BitAnd:
    return "&";
  case BinOpKind::BitOr:
    return "|";
  case BinOpKind::BitXor:
    return "^";
  case BinOpKind::Shl:
    return "<<";
  case BinOpKind::Shr:
    return ">>";
  case BinOpKind::Eq:
    return "==";
  case BinOpKind::Ne:
    return "!=";
  case BinOpKind::Lt:
    return "<";
  case BinOpKind::Le:
    return "<=";
  case BinOpKind::Gt:
    return ">";
  case BinOpKind::Ge:
    return ">=";
  case BinOpKind::LogicalAnd:
    return "&&";
  case BinOpKind::LogicalOr:
    return "||";
  }
  BROPT_UNREACHABLE("unknown binary operator");
}

class Renderer {
public:
  std::string run(const TranslationUnit &Unit) {
    for (const GlobalDecl &G : Unit.Globals) {
      Out += "int " + G.Name;
      if (G.ArraySize)
        Out += formatString("[%u]", *G.ArraySize);
      if (!G.Init.empty()) {
        if (G.ArraySize) {
          Out += " = {";
          for (size_t Index = 0; Index < G.Init.size(); ++Index) {
            if (Index)
              Out += ", ";
            Out += formatString("%lld", (long long)G.Init[Index]);
          }
          Out += "}";
        } else {
          Out += formatString(" = %lld", (long long)G.Init[0]);
        }
      }
      Out += ";\n";
    }
    for (const FunctionDecl &F : Unit.Functions) {
      Out += F.ReturnsValue ? "int " : "void ";
      Out += F.Name + "(";
      for (size_t Index = 0; Index < F.Params.size(); ++Index) {
        if (Index)
          Out += ", ";
        Out += "int " + F.Params[Index];
      }
      Out += ") ";
      renderStmt(F.Body.get());
      Out += "\n";
    }
    return std::move(Out);
  }

private:
  void renderExpr(const Expr *E) {
    switch (E->getKind()) {
    case ExprKind::IntLit:
      Out += formatString("%lld", (long long)cast<IntLitExpr>(E)->getValue());
      return;
    case ExprKind::VarRef:
      Out += cast<VarRefExpr>(E)->getName();
      return;
    case ExprKind::ArrayRef: {
      const auto *A = cast<ArrayRefExpr>(E);
      Out += A->getName() + "[";
      renderExpr(A->getIndex());
      Out += "]";
      return;
    }
    case ExprKind::Call: {
      const auto *C = cast<CallExpr>(E);
      Out += C->getCallee() + "(";
      for (size_t Index = 0; Index < C->getArgs().size(); ++Index) {
        if (Index)
          Out += ", ";
        renderExpr(C->getArgs()[Index].get());
      }
      Out += ")";
      return;
    }
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      Out += U->getOp() == UnOpKind::Neg ? "(-" : "(!";
      renderExpr(U->getOperand());
      Out += ")";
      return;
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      Out += "(";
      renderExpr(B->getLhs());
      Out += " ";
      Out += binOpToken(B->getOp());
      Out += " ";
      renderExpr(B->getRhs());
      Out += ")";
      return;
    }
    case ExprKind::Assign: {
      const auto *A = cast<AssignExpr>(E);
      Out += "(";
      renderExpr(A->getTarget());
      switch (A->getOp()) {
      case AssignExpr::OpKind::Plain:
        Out += " = ";
        break;
      case AssignExpr::OpKind::Add:
        Out += " += ";
        break;
      case AssignExpr::OpKind::Sub:
        Out += " -= ";
        break;
      }
      renderExpr(A->getValue());
      Out += ")";
      return;
    }
    case ExprKind::IncDec: {
      const auto *I = cast<IncDecExpr>(E);
      const char *Tok = I->isIncrement() ? "++" : "--";
      Out += "(";
      if (I->isPrefix())
        Out += Tok;
      renderExpr(I->getTarget());
      if (!I->isPrefix())
        Out += Tok;
      Out += ")";
      return;
    }
    case ExprKind::Ternary: {
      const auto *T = cast<TernaryExpr>(E);
      Out += "(";
      renderExpr(T->getCond());
      Out += " ? ";
      renderExpr(T->getThen());
      Out += " : ";
      renderExpr(T->getElse());
      Out += ")";
      return;
    }
    }
    BROPT_UNREACHABLE("unknown expression kind");
  }

  void indent() { Out.append(2 * Depth, ' '); }

  /// Renders \p S at the current indentation.  Non-block statements used as
  /// a loop or branch body are wrapped in braces by the callers below, so
  /// dangling-else never arises.
  void renderStmt(const Stmt *S) {
    switch (S->getKind()) {
    case StmtKind::Block: {
      Out += "{\n";
      ++Depth;
      for (const StmtPtr &Child : cast<BlockStmt>(S)->getStmts()) {
        indent();
        renderStmt(Child.get());
        Out += "\n";
      }
      --Depth;
      indent();
      Out += "}";
      return;
    }
    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      Out += "if (";
      renderExpr(If->getCond());
      Out += ") ";
      renderBody(If->getThen());
      if (If->getElse()) {
        Out += " else ";
        renderBody(If->getElse());
      }
      return;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      Out += "while (";
      renderExpr(W->getCond());
      Out += ") ";
      renderBody(W->getBody());
      return;
    }
    case StmtKind::DoWhile: {
      const auto *D = cast<DoWhileStmt>(S);
      Out += "do ";
      renderBody(D->getBody());
      Out += " while (";
      renderExpr(D->getCond());
      Out += ");";
      return;
    }
    case StmtKind::For: {
      const auto *F = cast<ForStmt>(S);
      Out += "for (";
      if (F->getInit())
        renderStmt(F->getInit()); // VarDecl/ExprStmt render their own ';'
      else
        Out += ";";
      Out += " ";
      if (F->getCond())
        renderExpr(F->getCond());
      Out += "; ";
      if (F->getStep())
        renderExpr(F->getStep());
      Out += ") ";
      renderBody(F->getBody());
      return;
    }
    case StmtKind::Switch: {
      const auto *Sw = cast<SwitchStmt>(S);
      Out += "switch (";
      renderExpr(Sw->getValue());
      Out += ") {\n";
      for (const SwitchSection &Section : Sw->getSections()) {
        for (const std::optional<int64_t> &Label : Section.Labels) {
          indent();
          if (Label)
            Out += formatString("case %lld:\n", (long long)*Label);
          else
            Out += "default:\n";
        }
        ++Depth;
        for (const StmtPtr &Child : Section.Stmts) {
          indent();
          renderStmt(Child.get());
          Out += "\n";
        }
        --Depth;
      }
      indent();
      Out += "}";
      return;
    }
    case StmtKind::Break:
      Out += "break;";
      return;
    case StmtKind::Continue:
      Out += "continue;";
      return;
    case StmtKind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      if (R->getValue()) {
        Out += "return ";
        renderExpr(R->getValue());
        Out += ";";
      } else {
        Out += "return;";
      }
      return;
    }
    case StmtKind::ExprStmt:
      renderExpr(cast<ExprStmt>(S)->getExpr());
      Out += ";";
      return;
    case StmtKind::VarDecl: {
      const auto *V = cast<VarDeclStmt>(S);
      Out += "int " + V->getName();
      if (V->getInit()) {
        Out += " = ";
        renderExpr(V->getInit());
      }
      Out += ";";
      return;
    }
    case StmtKind::Empty:
      Out += ";";
      return;
    }
    BROPT_UNREACHABLE("unknown statement kind");
  }

  /// Renders a branch/loop body, always braced.
  void renderBody(const Stmt *S) {
    if (isa<BlockStmt>(S)) {
      renderStmt(S);
      return;
    }
    Out += "{\n";
    ++Depth;
    indent();
    renderStmt(S);
    Out += "\n";
    --Depth;
    indent();
    Out += "}";
  }

  std::string Out;
  unsigned Depth = 0;
};

size_t countStmt(const Stmt *S) {
  if (!S)
    return 0;
  switch (S->getKind()) {
  case StmtKind::Block: {
    size_t Count = 0;
    for (const StmtPtr &Child : cast<BlockStmt>(S)->getStmts())
      Count += countStmt(Child.get());
    return Count;
  }
  case StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    return 1 + countStmt(If->getThen()) + countStmt(If->getElse());
  }
  case StmtKind::While:
    return 1 + countStmt(cast<WhileStmt>(S)->getBody());
  case StmtKind::DoWhile:
    return 1 + countStmt(cast<DoWhileStmt>(S)->getBody());
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(S);
    return 1 + countStmt(F->getInit()) + countStmt(F->getBody());
  }
  case StmtKind::Switch: {
    size_t Count = 1;
    for (const SwitchSection &Section : cast<SwitchStmt>(S)->getSections())
      for (const StmtPtr &Child : Section.Stmts)
        Count += countStmt(Child.get());
    return Count;
  }
  case StmtKind::Empty:
    return 0;
  case StmtKind::Break:
  case StmtKind::Continue:
  case StmtKind::Return:
  case StmtKind::ExprStmt:
  case StmtKind::VarDecl:
    return 1;
  }
  BROPT_UNREACHABLE("unknown statement kind");
}

} // namespace

std::string bropt::renderUnit(const TranslationUnit &Unit) {
  return Renderer().run(Unit);
}

size_t bropt::countStatements(const TranslationUnit &Unit) {
  size_t Count = 0;
  for (const FunctionDecl &F : Unit.Functions)
    Count += countStmt(F.Body.get());
  return Count;
}
