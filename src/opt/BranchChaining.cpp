//===- opt/BranchChaining.cpp - Collapse jump chains and merge blocks ------===//

#include "ir/CFG.h"
#include "opt/Passes.h"

#include <unordered_set>

using namespace bropt;

namespace {

/// \returns the final destination of \p Block if it consists solely of an
/// unconditional jump, following chains but stopping on cycles.
BasicBlock *ultimateTarget(BasicBlock *Block) {
  std::unordered_set<BasicBlock *> Seen;
  BasicBlock *Current = Block;
  while (Current->size() == 1) {
    const auto *Jump = dyn_cast<JumpInst>(&Current->front());
    if (!Jump)
      break;
    if (!Seen.insert(Current).second)
      return Block; // infinite-jump cycle; leave it alone
    Current = Jump->getTarget();
  }
  return Current;
}

/// Merges \p Succ into \p Block when Block ends in an unconditional jump to
/// Succ and Succ has no other predecessors.
bool mergeIntoPredecessor(Function &F, BasicBlock *Block) {
  auto *Jump = dyn_cast<JumpInst>(Block->getTerminator());
  if (!Jump)
    return false;
  BasicBlock *Succ = Jump->getTarget();
  if (Succ == Block || Succ == &F.getEntryBlock())
    return false;
  if (Succ->predecessors().size() != 1)
    return false;
  // Splice Succ's instructions into Block.
  size_t JumpIndex = Block->indexOf(Jump);
  Block->removeAt(JumpIndex);
  while (!Succ->empty())
    Block->append(Succ->removeAt(0));
  replaceAllBranchesTo(F, Succ, Block); // self-loops back to Succ
  F.eraseBlock(Succ);
  return true;
}

} // namespace

bool bropt::chainBranches(Function &F) {
  bool Changed = false;
  bool LocalChange = true;
  while (LocalChange) {
    LocalChange = false;
    F.recomputePredecessors();

    // Retarget edges that point at jump-only blocks.
    for (auto &Block : F) {
      Instruction *Term = Block->getTerminator();
      if (!Term)
        continue;
      for (unsigned Index = 0, E = Term->getNumSuccessors(); Index != E;
           ++Index) {
        BasicBlock *Succ = Term->getSuccessor(Index);
        BasicBlock *Final = ultimateTarget(Succ);
        if (Final != Succ) {
          Term->setSuccessor(Index, Final);
          LocalChange = true;
        }
      }
      // A conditional branch with identical successors is a jump.
      if (auto *Br = dyn_cast<CondBrInst>(Term)) {
        if (Br->getTaken() == Br->getFallThrough()) {
          BasicBlock *Target = Br->getTaken();
          size_t TermIndex = Block->indexOf(Term);
          Block->removeAt(TermIndex);
          Block->insertAt(TermIndex, std::make_unique<JumpInst>(Target));
          LocalChange = true;
        }
      }
    }

    if (LocalChange) {
      Changed = true;
      continue;
    }

    // Merge single-predecessor jump targets.
    F.recomputePredecessors();
    for (auto &Block : F) {
      if (!Block->hasTerminator())
        continue;
      if (mergeIntoPredecessor(F, Block.get())) {
        LocalChange = true;
        Changed = true;
        break; // block list mutated; restart the scan
      }
    }
  }
  if (Changed)
    F.recomputePredecessors();
  return Changed;
}
