//===- opt/DeadCodeElimination.cpp - Remove dead defs and dead compares ---===//

#include "ir/CFG.h"
#include "opt/Liveness.h"
#include "opt/Passes.h"

using namespace bropt;

bool bropt::eliminateDeadCode(Function &F) {
  F.recomputePredecessors();
  LivenessInfo Info = computeLiveness(F);
  bool Changed = false;

  for (auto &Block : F) {
    std::vector<bool> Live = Info.LiveOut[Block.get()];
    bool CCLive = Info.CCLiveOut[Block.get()];
    // Walk backward; erase pure instructions whose results are dead.
    for (size_t Index = Block->size(); Index-- > 0;) {
      Instruction *Inst = Block->getInstruction(Index);

      bool Removable = false;
      if (!Inst->hasSideEffects() && !Inst->isTerminator()) {
        if (Inst->writesCC())
          Removable = !CCLive;
        else if (auto Def = Inst->getDef())
          Removable = !Live[*Def];
      }
      if (Removable) {
        Block->removeAt(Index);
        Changed = true;
        continue;
      }

      if (auto Def = Inst->getDef())
        Live[*Def] = false;
      if (Inst->writesCC())
        CCLive = false;
      if (Inst->readsCC())
        CCLive = true;
      std::vector<unsigned> Uses;
      Inst->getUses(Uses);
      for (unsigned Reg : Uses)
        Live[Reg] = true;
    }
  }
  return Changed;
}

bool bropt::removeUnreachableBlocks(Function &F) {
  auto Reachable = reachableBlocks(F);
  std::vector<BasicBlock *> ToErase;
  for (auto &Block : F)
    if (!Reachable.count(Block.get()))
      ToErase.push_back(Block.get());
  if (ToErase.empty())
    return false;
  for (BasicBlock *Block : ToErase)
    F.eraseBlock(Block);
  F.recomputePredecessors();
  return true;
}
