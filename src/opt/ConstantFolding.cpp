//===- opt/ConstantFolding.cpp - Constant folding and simplification ------===//

#include "ir/IRBuilder.h"
#include "opt/Passes.h"
#include "support/Debug.h"

#include <optional>

using namespace bropt;

namespace {

std::optional<int64_t> foldBinaryOp(BinaryOp Op, int64_t L, int64_t R) {
  uint64_t UL = static_cast<uint64_t>(L), UR = static_cast<uint64_t>(R);
  switch (Op) {
  case BinaryOp::Add:
    return static_cast<int64_t>(UL + UR);
  case BinaryOp::Sub:
    return static_cast<int64_t>(UL - UR);
  case BinaryOp::Mul:
    return static_cast<int64_t>(UL * UR);
  case BinaryOp::Div:
    if (R == 0 || (L == INT64_MIN && R == -1))
      return std::nullopt; // preserve the trap
    return L / R;
  case BinaryOp::Rem:
    if (R == 0 || (L == INT64_MIN && R == -1))
      return std::nullopt;
    return L % R;
  case BinaryOp::And:
    return L & R;
  case BinaryOp::Or:
    return L | R;
  case BinaryOp::Xor:
    return L ^ R;
  case BinaryOp::Shl:
    return static_cast<int64_t>(UL << (UR & 63));
  case BinaryOp::Shr:
    return L >> (UR & 63);
  }
  BROPT_UNREACHABLE("unknown binary op");
}

/// Algebraic identities that turn a BinaryInst into a Move.
std::optional<Operand> simplifyBinary(const BinaryInst &Bin) {
  Operand Lhs = Bin.getLhs(), Rhs = Bin.getRhs();
  bool RhsZero = Rhs.isImm() && Rhs.getImm() == 0;
  bool RhsOne = Rhs.isImm() && Rhs.getImm() == 1;
  bool LhsZero = Lhs.isImm() && Lhs.getImm() == 0;
  switch (Bin.getOp()) {
  case BinaryOp::Add:
    if (RhsZero)
      return Lhs;
    if (LhsZero)
      return Rhs;
    return std::nullopt;
  case BinaryOp::Sub:
    if (RhsZero)
      return Lhs;
    return std::nullopt;
  case BinaryOp::Mul:
    if (RhsOne)
      return Lhs;
    if (Lhs.isImm() && Lhs.getImm() == 1)
      return Rhs;
    return std::nullopt;
  case BinaryOp::Div:
    if (RhsOne)
      return Lhs;
    return std::nullopt;
  case BinaryOp::Or:
  case BinaryOp::Xor:
    if (RhsZero)
      return Lhs;
    if (LhsZero)
      return Rhs;
    return std::nullopt;
  case BinaryOp::Shl:
  case BinaryOp::Shr:
    if (RhsZero)
      return Lhs;
    return std::nullopt;
  default:
    return std::nullopt;
  }
}

} // namespace

bool bropt::foldConstants(Function &F) {
  bool Changed = false;
  for (auto &Block : F) {
    for (size_t Index = 0; Index < Block->size(); ++Index) {
      Instruction *Inst = Block->getInstruction(Index);
      if (auto *Bin = dyn_cast<BinaryInst>(Inst)) {
        if (Bin->getLhs().isImm() && Bin->getRhs().isImm()) {
          auto Folded = foldBinaryOp(Bin->getOp(), Bin->getLhs().getImm(),
                                     Bin->getRhs().getImm());
          if (!Folded)
            continue;
          unsigned Dest = Bin->getDest();
          Block->removeAt(Index);
          Block->insertAt(Index,
                          std::make_unique<MoveInst>(
                              Dest, Operand::imm(*Folded)));
          Changed = true;
          continue;
        }
        if (auto Simplified = simplifyBinary(*Bin)) {
          unsigned Dest = Bin->getDest();
          Block->removeAt(Index);
          Block->insertAt(Index,
                          std::make_unique<MoveInst>(Dest, *Simplified));
          Changed = true;
          continue;
        }
      } else if (auto *Un = dyn_cast<UnaryInst>(Inst)) {
        if (!Un->getSrc().isImm())
          continue;
        int64_t Src = Un->getSrc().getImm();
        int64_t Value =
            Un->getOp() == UnaryOp::Neg
                ? static_cast<int64_t>(-static_cast<uint64_t>(Src))
                : (Src == 0 ? 1 : 0);
        unsigned Dest = Un->getDest();
        Block->removeAt(Index);
        Block->insertAt(Index,
                        std::make_unique<MoveInst>(Dest, Operand::imm(Value)));
        Changed = true;
      }
    }

    // Fold a branch over a constant comparison into a jump.  The Cmp itself
    // is left for DCE (its condition codes may feed other branches).
    Instruction *Term = Block->getTerminator();
    if (!Term || Term->getKind() != InstKind::CondBr || Block->size() < 2)
      continue;
    const auto *Cmp = dyn_cast<CmpInst>(Block->getInstruction(Block->size() - 2));
    if (!Cmp || !Cmp->getLhs().isImm() || !Cmp->getRhs().isImm())
      continue;
    auto *Br = cast<CondBrInst>(Term);
    bool Taken = evalCondCode(Br->getPred(), Cmp->getLhs().getImm(),
                              Cmp->getRhs().getImm());
    BasicBlock *Target = Taken ? Br->getTaken() : Br->getFallThrough();
    size_t TermIndex = Block->size() - 1;
    Block->removeAt(TermIndex);
    Block->insertAt(TermIndex, std::make_unique<JumpInst>(Target));
    Changed = true;
  }
  if (Changed)
    F.recomputePredecessors();
  return Changed;
}
