//===- opt/PassManager.cpp - Fixed optimization pipelines ------------------===//

#include "opt/Passes.h"

#include "support/Debug.h"

using namespace bropt;

namespace {

PassObserver &observer() {
  static PassObserver Observer;
  return Observer;
}

/// Runs \p Pass and reports it to the observer if it changed anything.
bool runObserved(bool (*Pass)(Function &), const char *Name, Function &F) {
  if (!Pass(F))
    return false;
  notifyPassObserver(Name, F);
  return true;
}

} // namespace

void bropt::setPassObserver(PassObserver Observer) {
  observer() = std::move(Observer);
}

void bropt::notifyPassObserver(const char *PassName, Function &F) {
  if (observer())
    observer()(PassName, F);
}

bool bropt::runCleanupPipeline(Function &F) {
  bool EverChanged = false;
  // The pipeline converges quickly; the bound is a backstop against a pass
  // pair oscillating.
  for (unsigned Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    Changed |= runObserved(foldConstants, "constant-folding", F);
    Changed |= runObserved(propagateCopies, "copy-propagation", F);
    Changed |= runObserved(eliminateDeadCode, "dead-code-elimination", F);
    Changed |= runObserved(chainBranches, "branch-chaining", F);
    Changed |= runObserved(removeUnreachableBlocks, "unreachable-blocks", F);
    if (!Changed)
      return EverChanged;
    EverChanged = true;
  }
  return EverChanged;
}

void bropt::finalizeFunction(Function &F) {
  runCleanupPipeline(F);
  runObserved(repositionCode, "repositioning", F);
  // Redundant-compare elimination works on the final block adjacency, then
  // a last DCE sweep catches anything it exposed.
  if (runObserved(eliminateRedundantCompares, "redundant-compare-elimination",
                  F))
    runObserved(eliminateDeadCode, "dead-code-elimination", F);
  runObserved(repositionCode, "repositioning", F);
}

void bropt::optimizeModule(Module &M) {
  for (auto &F : M)
    finalizeFunction(*F);
}
