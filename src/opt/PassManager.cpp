//===- opt/PassManager.cpp - Fixed optimization pipelines ------------------===//

#include "opt/Passes.h"

#include "support/Debug.h"

using namespace bropt;

bool bropt::runCleanupPipeline(Function &F) {
  bool EverChanged = false;
  // The pipeline converges quickly; the bound is a backstop against a pass
  // pair oscillating.
  for (unsigned Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    Changed |= foldConstants(F);
    Changed |= propagateCopies(F);
    Changed |= eliminateDeadCode(F);
    Changed |= chainBranches(F);
    Changed |= removeUnreachableBlocks(F);
    if (!Changed)
      return EverChanged;
    EverChanged = true;
  }
  return EverChanged;
}

void bropt::finalizeFunction(Function &F) {
  runCleanupPipeline(F);
  repositionCode(F);
  // Redundant-compare elimination works on the final block adjacency, then
  // a last DCE sweep catches anything it exposed.
  if (eliminateRedundantCompares(F))
    eliminateDeadCode(F);
  repositionCode(F);
}

void bropt::optimizeModule(Module &M) {
  for (auto &F : M)
    finalizeFunction(*F);
}
