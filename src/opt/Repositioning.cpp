//===- opt/Repositioning.cpp - Fall-through-maximizing code layout ---------===//
//
// Lays blocks out greedily along fall-through chains, inverts conditional
// branches when the taken successor is the layout successor, inserts
// trampoline jumps when neither successor can be adjacent, and flags jumps
// to the next block as free fall-throughs.  This models what vpo's code
// repositioning and branch chaining achieve on real machine code, so the
// simulator's jump counts are faithful (the paper's transformation goes out
// of its way not to add unconditional jumps — Figure 10d duplicates the
// default target instead).
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include <unordered_set>

using namespace bropt;

namespace {

/// \returns the successor we would most like to place right after \p Block.
BasicBlock *preferredSuccessor(BasicBlock *Block) {
  Instruction *Term = Block->getTerminator();
  if (!Term)
    return nullptr;
  if (auto *Br = dyn_cast<CondBrInst>(Term))
    return Br->getFallThrough();
  if (auto *Jump = dyn_cast<JumpInst>(Term))
    return Jump->getTarget();
  return nullptr;
}

/// Second choice: the taken successor of a conditional branch (we can
/// invert the branch to make it the fall-through).
BasicBlock *alternateSuccessor(BasicBlock *Block) {
  if (auto *Br = dyn_cast<CondBrInst>(Block->getTerminator()))
    return Br->getTaken();
  return nullptr;
}

} // namespace

bool bropt::repositionCode(Function &F) {
  if (F.empty())
    return false;

  // Phase 1: greedy chain placement.
  std::vector<BasicBlock *> Order;
  std::unordered_set<BasicBlock *> Placed;
  std::vector<BasicBlock *> Original;
  for (auto &Block : F)
    Original.push_back(Block.get());

  BasicBlock *Current = &F.getEntryBlock();
  size_t NextFresh = 0;
  while (Order.size() < Original.size()) {
    if (!Current) {
      while (NextFresh < Original.size() && Placed.count(Original[NextFresh]))
        ++NextFresh;
      if (NextFresh == Original.size())
        break;
      Current = Original[NextFresh];
    }
    Order.push_back(Current);
    Placed.insert(Current);
    BasicBlock *Next = preferredSuccessor(Current);
    if (Next && !Placed.count(Next)) {
      Current = Next;
      continue;
    }
    Next = alternateSuccessor(Current);
    Current = (Next && !Placed.count(Next)) ? Next : nullptr;
  }
  F.setLayout(Order);

  // Phase 2: make every conditional branch's fall-through edge physical.
  // Iterate by index because trampoline insertion grows the block list.
  for (size_t Index = 0; Index < F.size(); ++Index) {
    BasicBlock *Block = F.getBlock(Index);
    auto *Br = dyn_cast<CondBrInst>(Block->getTerminator());
    if (!Br)
      continue;
    BasicBlock *Next = F.getNextBlock(Block);
    if (Br->getFallThrough() == Next)
      continue;
    if (Br->getTaken() == Next) {
      Br->invert();
      continue;
    }
    // Neither successor is adjacent: route the fall-through edge through a
    // trampoline jump placed right behind the branch.
    BasicBlock *Trampoline = F.createBlockAfter(Block, "tramp");
    Trampoline->append(std::make_unique<JumpInst>(Br->getFallThrough()));
    Br->setFallThrough(Trampoline);
  }

  // Phase 3: flag jumps to the adjacent block as free fall-throughs.
  bool Changed = false;
  for (auto &Block : F) {
    auto *Jump = dyn_cast<JumpInst>(Block->getTerminator());
    if (!Jump)
      continue;
    bool IsAdjacent = F.getNextBlock(Block.get()) == Jump->getTarget();
    if (Jump->isFallThrough() != IsAdjacent) {
      Jump->setIsFallThrough(IsAdjacent);
      Changed = true;
    }
  }
  F.recomputePredecessors();
  return Changed;
}
