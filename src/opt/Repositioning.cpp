//===- opt/Repositioning.cpp - Fall-through-maximizing code layout ---------===//
//
// Two layout strategies share one back end here.  repositionCode lays
// blocks out greedily along static fall-through chains — what vpo's code
// repositioning achieves with no profile.  repositionCodeExtTsp replaces
// that heuristic with an ext-TSP-style layout (Newell & Pupyrev, "Improved
// Basic Block Reordering"): chains are merged along the *measured*
// heaviest edges, ordered by junction weight, and the result is kept only
// if it satisfies at least as much fall-through weight as the incumbent
// order, so it is never worse than hot-first by construction.
//
// Both end the same way: invert conditional branches when the taken
// successor is the layout successor, insert trampoline jumps when neither
// successor can be adjacent, and flag jumps to the next block as free
// fall-throughs.  This models real machine code, so the simulator's jump
// counts are faithful (the paper's transformation goes out of its way not
// to add unconditional jumps — Figure 10d duplicates the default target
// instead).
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "cost/BranchCostModel.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace bropt;

namespace {

/// \returns the successor we would most like to place right after \p Block.
BasicBlock *preferredSuccessor(BasicBlock *Block) {
  Instruction *Term = Block->getTerminator();
  if (!Term)
    return nullptr;
  if (auto *Br = dyn_cast<CondBrInst>(Term))
    return Br->getFallThrough();
  if (auto *Jump = dyn_cast<JumpInst>(Term))
    return Jump->getTarget();
  return nullptr;
}

/// Second choice: the taken successor of a conditional branch (we can
/// invert the branch to make it the fall-through).
BasicBlock *alternateSuccessor(BasicBlock *Block) {
  if (auto *Br = dyn_cast<CondBrInst>(Block->getTerminator()))
    return Br->getTaken();
  return nullptr;
}

/// True if layout can make the \p From -> \p To edge a free fall-through:
/// either successor of a conditional branch qualifies (the branch can be
/// inverted), and so does a jump's target (phase 3 flags it free).
bool canFallThrough(const BasicBlock *From, const BasicBlock *To) {
  const Instruction *Term = From->getTerminator();
  if (!Term)
    return false;
  if (const auto *Br = dyn_cast<CondBrInst>(Term))
    return Br->getTaken() == To || Br->getFallThrough() == To;
  if (const auto *Jump = dyn_cast<JumpInst>(Term))
    return Jump->getTarget() == To;
  return false;
}

/// Fall-through weight of an explicit block order (see
/// layoutFallThroughWeight).
uint64_t orderFallThroughWeight(const std::vector<BasicBlock *> &Order,
                                const EdgeWeightMap &Weights) {
  uint64_t Total = 0;
  for (size_t Index = 0; Index + 1 < Order.size(); ++Index)
    if (canFallThrough(Order[Index], Order[Index + 1]))
      Total += Weights.weight(Order[Index]->getId(),
                              Order[Index + 1]->getId());
  return Total;
}

/// Phases shared by both layout strategies: make every conditional
/// branch's fall-through edge physical (inverting or adding trampolines),
/// then flag layout-satisfied jumps as free.  \returns true if any jump
/// flag changed (repositionCode's historical change signal).
bool materializeFallThroughs(Function &F) {
  // Iterate by index because trampoline insertion grows the block list.
  for (size_t Index = 0; Index < F.size(); ++Index) {
    BasicBlock *Block = F.getBlock(Index);
    auto *Br = dyn_cast<CondBrInst>(Block->getTerminator());
    if (!Br)
      continue;
    BasicBlock *Next = F.getNextBlock(Block);
    if (Br->getFallThrough() == Next)
      continue;
    if (Br->getTaken() == Next) {
      Br->invert();
      continue;
    }
    // Neither successor is adjacent: route the fall-through edge through a
    // trampoline jump placed right behind the branch.
    BasicBlock *Trampoline = F.createBlockAfter(Block, "tramp");
    Trampoline->append(std::make_unique<JumpInst>(Br->getFallThrough()));
    Br->setFallThrough(Trampoline);
  }

  bool Changed = false;
  for (auto &Block : F) {
    auto *Jump = dyn_cast<JumpInst>(Block->getTerminator());
    if (!Jump)
      continue;
    bool IsAdjacent = F.getNextBlock(Block.get()) == Jump->getTarget();
    if (Jump->isFallThrough() != IsAdjacent) {
      Jump->setIsFallThrough(IsAdjacent);
      Changed = true;
    }
  }
  F.recomputePredecessors();
  return Changed;
}

} // namespace

bool bropt::repositionCode(Function &F) {
  if (F.empty())
    return false;

  // Phase 1: greedy chain placement.
  std::vector<BasicBlock *> Order;
  std::unordered_set<BasicBlock *> Placed;
  std::vector<BasicBlock *> Original;
  for (auto &Block : F)
    Original.push_back(Block.get());

  BasicBlock *Current = &F.getEntryBlock();
  size_t NextFresh = 0;
  while (Order.size() < Original.size()) {
    if (!Current) {
      while (NextFresh < Original.size() && Placed.count(Original[NextFresh]))
        ++NextFresh;
      if (NextFresh == Original.size())
        break;
      Current = Original[NextFresh];
    }
    Order.push_back(Current);
    Placed.insert(Current);
    BasicBlock *Next = preferredSuccessor(Current);
    if (Next && !Placed.count(Next)) {
      Current = Next;
      continue;
    }
    Next = alternateSuccessor(Current);
    Current = (Next && !Placed.count(Next)) ? Next : nullptr;
  }
  F.setLayout(Order);

  return materializeFallThroughs(F);
}

uint64_t bropt::layoutFallThroughWeight(const Function &F,
                                        const EdgeWeightMap &Weights) {
  uint64_t Total = 0;
  const BasicBlock *Prev = nullptr;
  for (const auto &Block : F) {
    if (Prev && canFallThrough(Prev, Block.get()))
      Total += Weights.weight(Prev->getId(), Block->getId());
    Prev = Block.get();
  }
  return Total;
}

bool bropt::repositionCodeExtTsp(Function &F, const EdgeWeightMap &Weights,
                                 LayoutStats *Stats) {
  if (F.empty())
    return false;

  std::vector<BasicBlock *> Incumbent;
  for (auto &Block : F)
    Incumbent.push_back(Block.get());
  BasicBlock *Entry = &F.getEntryBlock();

  // Candidate edges: every measured transition the layout could turn into
  // a fall-through.  Sorted heaviest first; ties break on stable block ids
  // so the result is deterministic.
  struct CandidateEdge {
    BasicBlock *From;
    BasicBlock *To;
    uint64_t Weight;
  };
  std::vector<CandidateEdge> Edges;
  for (BasicBlock *Block : Incumbent) {
    Instruction *Term = Block->getTerminator();
    if (!Term)
      continue;
    std::vector<BasicBlock *> Targets;
    if (auto *Br = dyn_cast<CondBrInst>(Term)) {
      Targets.push_back(Br->getFallThrough());
      Targets.push_back(Br->getTaken());
    } else if (auto *Jump = dyn_cast<JumpInst>(Term)) {
      Targets.push_back(Jump->getTarget());
    }
    for (BasicBlock *Target : Targets) {
      if (Target == Block || Target == Entry)
        continue;
      uint64_t W = Weights.weight(Block->getId(), Target->getId());
      if (W > 0)
        Edges.push_back({Block, Target, W});
    }
  }
  std::sort(Edges.begin(), Edges.end(),
            [](const CandidateEdge &A, const CandidateEdge &B) {
              if (A.Weight != B.Weight)
                return A.Weight > B.Weight;
              if (A.From->getId() != B.From->getId())
                return A.From->getId() < B.From->getId();
              return A.To->getId() < B.To->getId();
            });

  // Greedy chain merging: an edge joins two chains when its source is a
  // chain tail and its destination a chain head.
  std::vector<std::vector<BasicBlock *>> Chains;
  std::unordered_map<BasicBlock *, size_t> ChainOf;
  for (BasicBlock *Block : Incumbent) {
    ChainOf[Block] = Chains.size();
    Chains.push_back({Block});
  }
  unsigned Merged = 0;
  for (const CandidateEdge &Edge : Edges) {
    size_t FromChain = ChainOf[Edge.From];
    size_t ToChain = ChainOf[Edge.To];
    if (FromChain == ToChain)
      continue;
    if (Chains[FromChain].back() != Edge.From ||
        Chains[ToChain].front() != Edge.To)
      continue;
    for (BasicBlock *Block : Chains[ToChain])
      ChainOf[Block] = FromChain;
    Chains[FromChain].insert(Chains[FromChain].end(),
                             Chains[ToChain].begin(), Chains[ToChain].end());
    Chains[ToChain].clear();
    ++Merged;
  }

  // Chain concatenation with one-edge lookahead: starting from the entry
  // chain, repeatedly append the chain whose head receives the most weight
  // from the current tail; with no weighted junction, fall back to the
  // chain earliest in the incumbent layout (preserving hot-first's cold
  // ordering).
  std::unordered_map<BasicBlock *, size_t> IncumbentIndex;
  for (size_t Index = 0; Index < Incumbent.size(); ++Index)
    IncumbentIndex[Incumbent[Index]] = Index;

  size_t EntryChain = ChainOf[Entry];
  std::vector<size_t> Pending;
  for (size_t Index = 0; Index < Chains.size(); ++Index)
    if (!Chains[Index].empty() && Index != EntryChain)
      Pending.push_back(Index);

  std::vector<BasicBlock *> Candidate;
  Candidate.insert(Candidate.end(), Chains[EntryChain].begin(),
                   Chains[EntryChain].end());
  while (!Pending.empty()) {
    BasicBlock *Tail = Candidate.back();
    size_t BestPos = 0;
    uint64_t BestWeight = 0;
    size_t BestIncumbent = SIZE_MAX;
    for (size_t Pos = 0; Pos < Pending.size(); ++Pos) {
      BasicBlock *Head = Chains[Pending[Pos]].front();
      uint64_t W = canFallThrough(Tail, Head)
                       ? Weights.weight(Tail->getId(), Head->getId())
                       : 0;
      size_t Orig = IncumbentIndex[Head];
      if (W > BestWeight || (W == BestWeight && Orig < BestIncumbent)) {
        BestWeight = W;
        BestIncumbent = Orig;
        BestPos = Pos;
      }
    }
    size_t Chosen = Pending[BestPos];
    Pending.erase(Pending.begin() + BestPos);
    Candidate.insert(Candidate.end(), Chains[Chosen].begin(),
                     Chains[Chosen].end());
  }

  uint64_t Before = orderFallThroughWeight(Incumbent, Weights);
  uint64_t After = orderFallThroughWeight(Candidate, Weights);

  if (Stats) {
    ++Stats->FunctionsLaidOut;
    Stats->ChainsMerged += Merged;
    Stats->FallThroughWeightBefore += Before;
  }

  // Keep-best via the shared layout tie-break (cost/BranchCostModel.h):
  // the measured order must beat the incumbent strictly, so the
  // profile-guided layout is never worse than what it replaces.
  if (!BranchCostModel::layoutPrefers(static_cast<double>(After),
                                      static_cast<double>(Before))) {
    if (Stats) {
      ++Stats->KeptIncumbent;
      Stats->FallThroughWeightAfter += Before;
    }
    return false;
  }

  unsigned Moved = 0;
  for (size_t Index = 0; Index < Candidate.size(); ++Index)
    if (Candidate[Index] != Incumbent[Index])
      ++Moved;
  if (Stats) {
    Stats->BlocksMoved += Moved;
    Stats->FallThroughWeightAfter += After;
  }

  F.setLayout(Candidate);
  materializeFallThroughs(F);
  return true;
}

bool bropt::applyProfileGuidedLayout(Module &M,
                                     const ModuleEdgeWeights &Weights,
                                     LayoutStats *Stats) {
  bool Changed = false;
  for (auto &F : M) {
    auto It = Weights.find(F->getName());
    if (It == Weights.end() || It->second.empty())
      continue;
    if (repositionCodeExtTsp(*F, It->second, Stats))
      Changed = true;
    notifyPassObserver("ext-tsp-layout", *F);
  }
  return Changed;
}
