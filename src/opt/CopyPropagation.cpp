//===- opt/CopyPropagation.cpp - Block-local copy/constant propagation ----===//

#include "opt/Passes.h"

#include <unordered_map>

using namespace bropt;

namespace {

/// Tracks, within one block, the operand each register is currently a copy
/// of (an immediate or another register).
class CopyTracker {
public:
  /// \returns the best replacement for reading \p Op.
  Operand resolve(Operand Op) const {
    if (!Op.isReg())
      return Op;
    auto It = Known.find(Op.getReg());
    if (It == Known.end())
      return Op;
    return It->second;
  }

  /// Records the effect of defining \p Dest (and optionally that it now
  /// holds \p Src).  Only immediates are propagated: rewriting a register
  /// use into a different register is block-local here, and splitting the
  /// uses of a variable between two registers would defeat the sequence
  /// detector, which keys on one branch variable register (paper §4).
  void define(unsigned Dest, std::optional<Operand> Src) {
    Known.erase(Dest);
    if (Src && Src->isImm())
      Known.emplace(Dest, *Src);
  }

private:
  std::unordered_map<unsigned, Operand> Known;
};

/// Rewrites the register reads of \p Inst through \p Tracker.
/// \returns true if anything changed.
bool rewriteUses(Instruction *Inst, const CopyTracker &Tracker) {
  bool Changed = false;
  auto replace = [&](Operand Current, auto Setter) {
    Operand New = Tracker.resolve(Current);
    if (!(New == Current)) {
      Setter(New);
      Changed = true;
    }
  };
  switch (Inst->getKind()) {
  case InstKind::Move: {
    auto *Move = cast<MoveInst>(Inst);
    replace(Move->getSrc(), [&](Operand Op) { Move->setSrc(Op); });
    break;
  }
  case InstKind::Binary: {
    auto *Bin = cast<BinaryInst>(Inst);
    replace(Bin->getLhs(), [&](Operand Op) { Bin->setLhs(Op); });
    replace(Bin->getRhs(), [&](Operand Op) { Bin->setRhs(Op); });
    break;
  }
  case InstKind::Unary: {
    auto *Un = cast<UnaryInst>(Inst);
    replace(Un->getSrc(), [&](Operand Op) { Un->setSrc(Op); });
    break;
  }
  case InstKind::Cmp: {
    auto *Cmp = cast<CmpInst>(Inst);
    replace(Cmp->getLhs(), [&](Operand Op) { Cmp->setLhs(Op); });
    replace(Cmp->getRhs(), [&](Operand Op) { Cmp->setRhs(Op); });
    break;
  }
  default:
    // Loads/stores/calls/terminators: leave their operands alone.  They are
    // not on the hot path the reordering transformation cares about, and
    // keeping the rewrite narrow keeps this pass evidently correct.
    break;
  }
  return Changed;
}

} // namespace

bool bropt::propagateCopies(Function &F) {
  bool Changed = false;
  for (auto &Block : F) {
    CopyTracker Tracker;
    for (auto &Inst : *Block) {
      Changed |= rewriteUses(Inst.get(), Tracker);
      if (auto Def = Inst->getDef()) {
        if (const auto *Move = dyn_cast<MoveInst>(Inst.get()))
          Tracker.define(*Def, Move->getSrc());
        else
          Tracker.define(*Def, std::nullopt);
      }
    }
  }
  return Changed;
}
