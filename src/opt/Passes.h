//===- opt/Passes.h - Conventional optimization passes ----------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "conventional optimizations" (paper §1, Figure 2) applied before
/// sequence detection, and the clean-up passes reinvoked after the
/// reordering transformation (paper §8: dead code elimination, branch
/// chaining, code repositioning).  Each pass is a free function returning
/// true if it changed the function.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_OPT_PASSES_H
#define BROPT_OPT_PASSES_H

#include "ir/Function.h"
#include "ir/Module.h"
#include "profile/EdgeProfile.h"

#include <functional>

namespace bropt {

/// Observer invoked after every individual pass application with the pass
/// name and the function it just transformed.  The differential-testing
/// harness installs a verifier here so structural damage is pinned to the
/// exact pass that caused it instead of surfacing at the pipeline end.
///
/// There is one process-wide observer and it is not synchronized: install
/// only from single-threaded test/tool code, never while the parallel
/// evaluation harness is compiling.
using PassObserver = std::function<void(const char *PassName, Function &F)>;

/// Installs \p Observer (replacing any previous one); pass an empty
/// function to remove it.
void setPassObserver(PassObserver Observer);

/// Invokes the installed observer, if any.  Pass implementations and the
/// pipelines below call this after each pass that ran.
void notifyPassObserver(const char *PassName, Function &F);

/// RAII installer that restores the empty observer on destruction.
class PassObserverScope {
public:
  explicit PassObserverScope(PassObserver Observer) {
    setPassObserver(std::move(Observer));
  }
  ~PassObserverScope() { setPassObserver({}); }
  PassObserverScope(const PassObserverScope &) = delete;
  PassObserverScope &operator=(const PassObserverScope &) = delete;
};

/// Evaluates constant-operand arithmetic, folds constant conditions into
/// unconditional jumps, and simplifies algebraic identities (x+0, x*1, ...).
bool foldConstants(Function &F);

/// Block-local copy and constant propagation: replaces register reads with
/// the immediate or register most recently moved into them.
bool propagateCopies(Function &F);

/// Removes pure instructions whose results are never used, including
/// comparisons whose condition codes are never consumed.
bool eliminateDeadCode(Function &F);

/// Removes blocks unreachable from the entry block.
bool removeUnreachableBlocks(Function &F);

/// Collapses jump-to-jump chains, turns conditional branches with equal
/// successors into jumps, and merges single-predecessor jump targets into
/// their predecessor.
bool chainBranches(Function &F);

/// Orders blocks to maximize fall-through, inverts branch conditions where
/// that saves a jump, inserts trampoline jumps where layout cannot satisfy
/// a fall-through edge, and flags layout-satisfied jumps as free
/// fall-throughs.  Run last; other passes invalidate its flags.
bool repositionCode(Function &F);

/// What the profile-guided layout did (satellite of the ext-TSP layout;
/// surfaced through ReorderStats and bench_json).
struct LayoutStats {
  /// Functions whose layout was recomputed from measured edge weights.
  unsigned FunctionsLaidOut = 0;
  /// Chain-merge steps taken across those functions.
  unsigned ChainsMerged = 0;
  /// Blocks whose layout position changed.
  unsigned BlocksMoved = 0;
  /// Functions where the measured order lost to the incumbent hot-first
  /// order and was discarded (the keep-best rule).
  unsigned KeptIncumbent = 0;
  /// Total measured weight of layout-satisfied fall-through edges, before
  /// and after.  After >= Before by construction.
  uint64_t FallThroughWeightBefore = 0;
  uint64_t FallThroughWeightAfter = 0;

  void accumulate(const LayoutStats &Other) {
    FunctionsLaidOut += Other.FunctionsLaidOut;
    ChainsMerged += Other.ChainsMerged;
    BlocksMoved += Other.BlocksMoved;
    KeptIncumbent += Other.KeptIncumbent;
    FallThroughWeightBefore += Other.FallThroughWeightBefore;
    FallThroughWeightAfter += Other.FallThroughWeightAfter;
  }
};

/// Measured weight of \p F's layout-adjacent edges that the terminator can
/// satisfy for free: either successor of a conditional branch (invertible)
/// or the target of a jump.  The objective ext-TSP maximizes.
uint64_t layoutFallThroughWeight(const Function &F,
                                 const EdgeWeightMap &Weights);

/// ext-TSP-style layout (Newell & Pupyrev): greedily merges fall-through
/// chains along the heaviest measured edges, orders the chains by junction
/// weight, and keeps whichever of {new order, incumbent order} satisfies
/// more fall-through weight — never worse than the hot-first layout it
/// replaces.  Re-materializes branches afterwards like repositionCode.
/// \returns true if the layout changed.
bool repositionCodeExtTsp(Function &F, const EdgeWeightMap &Weights,
                          LayoutStats *Stats = nullptr);

/// Runs repositionCodeExtTsp on every function of \p M that has measured
/// edge weights.  \returns true if any layout changed.
bool applyProfileGuidedLayout(Module &M, const ModuleEdgeWeights &Weights,
                              LayoutStats *Stats = nullptr);

/// Removes comparisons that recompute the condition codes produced by an
/// identical comparison, either earlier in the same block or at the tail of
/// every predecessor (the paper's Figure 9 clean-up after reordering).
bool eliminateRedundantCompares(Function &F);

/// Runs {fold, propagate, DCE, chain, unreachable} to a fixpoint.
/// \returns true if anything changed.
bool runCleanupPipeline(Function &F);

/// Cleanup pipeline followed by redundant-compare elimination and final
/// repositioning; the function is in layout-finalized form afterwards.
void finalizeFunction(Function &F);

/// Runs the full conventional pipeline on every function and finalizes
/// layout — the state the paper's pass 1 reaches before detection.
void optimizeModule(Module &M);

} // namespace bropt

#endif // BROPT_OPT_PASSES_H
