//===- opt/RedundantCompareElimination.cpp - Remove recomputed compares ---===//
//
// Implements the clean-up from paper Figure 9: after reordering, adjacent
// range conditions often compare the same register to the same constant; the
// second comparison recomputes condition codes that are already set, and can
// be deleted.  Two cases:
//
//  (1) within a block, a Cmp identical to an earlier Cmp with no intervening
//      redefinition of the compared registers (the intervening instructions
//      cannot write condition codes — only Cmp does — and an intervening Cmp
//      resets the chain);
//
//  (2) a Cmp at the head of a block all of whose predecessors end with an
//      identical Cmp immediately before their terminator.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

using namespace bropt;

namespace {

/// \returns true if \p Inst redefines any register that \p Cmp reads.
bool clobbersCompare(const Instruction &Inst, const CmpInst &Cmp) {
  auto Def = Inst.getDef();
  if (!Def)
    return false;
  return Cmp.getLhs().isRegister(*Def) || Cmp.getRhs().isRegister(*Def);
}

/// \returns the trailing compare of \p Block if its last two instructions
/// are [Cmp, terminator], else null.
const CmpInst *trailingCompare(const BasicBlock &Block) {
  if (Block.size() < 2)
    return nullptr;
  return dyn_cast<CmpInst>(Block.getInstruction(Block.size() - 2));
}

/// True if \p B consumes condition codes set by a predecessor.
bool needsCCOnEntry(const BasicBlock *B) {
  for (const auto &Inst : *B) {
    if (Inst->writesCC())
      return false;
    if (Inst->readsCC())
      return true;
  }
  return false;
}

/// Paper Figure 9: a relational test admits two encodings — v < c is
/// v <= c-1, v >= c is v > c-1, and so on.  If the trailing compare of
/// \p Pred can be re-encoded to test \p WantedConst (adjusting the branch
/// predicate to preserve the outcome), do so and return true.  Only legal
/// when the branch is the compare's sole consumer apart from \p Beneficiary:
/// any other successor inheriting the condition codes would observe the
/// changed constant.
bool reencodeTrailingCompare(BasicBlock &Pred, int64_t WantedConst,
                             const BasicBlock *Beneficiary) {
  if (Pred.size() < 2)
    return false;
  auto *Cmp = dyn_cast<CmpInst>(Pred.getInstruction(Pred.size() - 2));
  auto *Br = dyn_cast<CondBrInst>(Pred.getTerminator());
  if (!Cmp || !Br || !Cmp->getLhs().isReg() || !Cmp->getRhs().isImm())
    return false;
  for (BasicBlock *Succ : Pred.successors())
    if (Succ != Beneficiary && needsCCOnEntry(Succ))
      return false;

  int64_t C = Cmp->getRhs().getImm();
  CondCode PredCode = Br->getPred();
  // (C, <) == (C-1, <=); (C, <=) == (C+1, <); and the mirrored forms.
  CondCode NewPred;
  if (PredCode == CondCode::LT && WantedConst == C - 1)
    NewPred = CondCode::LE;
  else if (PredCode == CondCode::LE && C != INT64_MAX &&
           WantedConst == C + 1)
    NewPred = CondCode::LT;
  else if (PredCode == CondCode::GT && C != INT64_MAX &&
           WantedConst == C + 1)
    NewPred = CondCode::GE;
  else if (PredCode == CondCode::GE && WantedConst == C - 1)
    NewPred = CondCode::GT;
  else
    return false;
  Cmp->setRhs(Operand::imm(WantedConst));
  Br->setPred(NewPred);
  return true;
}

} // namespace

bool bropt::eliminateRedundantCompares(Function &F) {
  F.recomputePredecessors();
  bool Changed = false;

  for (auto &Block : F) {
    // Case 1: duplicates within the block.
    const CmpInst *Active = nullptr;
    for (size_t Index = 0; Index < Block->size();) {
      Instruction *Inst = Block->getInstruction(Index);
      if (auto *Cmp = dyn_cast<CmpInst>(Inst)) {
        if (Active && Cmp->isIdenticalTo(*Active)) {
          Block->removeAt(Index);
          Changed = true;
          continue;
        }
        Active = Cmp;
        ++Index;
        continue;
      }
      if (Inst->getKind() == InstKind::Call) {
        // Calls clobber condition codes on a real machine; model that.
        Active = nullptr;
      } else if (Active && clobbersCompare(*Inst, *Active)) {
        Active = nullptr;
      }
      ++Index;
    }

    // Case 2: the block's first instruction recomputes what every
    // predecessor just computed.
    if (Block->empty() || Block.get() == &F.getEntryBlock())
      continue;
    auto *LeadCmp = dyn_cast<CmpInst>(&Block->front());
    if (!LeadCmp || Block->predecessors().empty())
      continue;

    // Figure 9 re-encoding: when a predecessor's trailing compare tests
    // the same register against an adjacent constant, rewrite it (and its
    // branch) to test this block's constant, making this block's compare
    // redundant.  All predecessors must end up identical.
    if (LeadCmp->getLhs().isReg() && LeadCmp->getRhs().isImm()) {
      for (BasicBlock *Pred : Block->predecessors()) {
        const CmpInst *PredCmp = trailingCompare(*Pred);
        if (!PredCmp || PredCmp->isIdenticalTo(*LeadCmp))
          continue;
        if (PredCmp->getLhs() == LeadCmp->getLhs() &&
            PredCmp->getRhs().isImm() &&
            reencodeTrailingCompare(*Pred, LeadCmp->getRhs().getImm(),
                                    Block.get()))
          Changed = true;
      }
    }

    // Removal: every predecessor provides identical condition codes.
    bool AllPredsProvide = true;
    for (const BasicBlock *Pred : Block->predecessors()) {
      const CmpInst *PredCmp = trailingCompare(*Pred);
      if (!PredCmp || !PredCmp->isIdenticalTo(*LeadCmp)) {
        AllPredsProvide = false;
        break;
      }
    }
    if (AllPredsProvide) {
      Block->removeAt(0);
      Changed = true;
    }
  }
  return Changed;
}
