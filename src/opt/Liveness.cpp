//===- opt/Liveness.cpp - Register and condition-code liveness ------------===//

#include "opt/Liveness.h"

using namespace bropt;

namespace {

/// Applies one block's transfer function backward from \p Live.
void transferBlock(const BasicBlock &Block, std::vector<bool> &Live,
                   bool &CCLive) {
  for (size_t Index = Block.size(); Index-- > 0;) {
    const Instruction *Inst = Block.getInstruction(Index);
    if (auto Def = Inst->getDef())
      Live[*Def] = false;
    if (Inst->writesCC())
      CCLive = false;
    if (Inst->readsCC())
      CCLive = true;
    std::vector<unsigned> Uses;
    Inst->getUses(Uses);
    for (unsigned Reg : Uses)
      Live[Reg] = true;
  }
}

} // namespace

LivenessInfo bropt::computeLiveness(const Function &F) {
  LivenessInfo Info;
  const size_t NumRegs = F.getNumRegs();
  for (const auto &Block : F) {
    Info.LiveOut[Block.get()].assign(NumRegs, false);
    Info.LiveIn[Block.get()].assign(NumRegs, false);
    Info.CCLiveOut[Block.get()] = false;
  }

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Iterate in reverse layout order: a decent approximation of reverse
    // topological order that converges quickly on structured CFGs.
    for (size_t Index = F.size(); Index-- > 0;) {
      const BasicBlock *Block =
          const_cast<Function &>(F).getBlock(Index);
      std::vector<bool> Out(NumRegs, false);
      bool CCOut = false;
      for (const BasicBlock *Succ : Block->successors()) {
        const std::vector<bool> &SuccIn = Info.LiveIn[Succ];
        for (size_t Reg = 0; Reg < NumRegs; ++Reg)
          if (SuccIn[Reg])
            Out[Reg] = true;
        // CC live into a successor if the successor consumes CC before
        // writing it.
        bool SuccNeedsCC = false;
        for (const auto &Inst : *Succ) {
          if (Inst->writesCC())
            break;
          if (Inst->readsCC()) {
            SuccNeedsCC = true;
            break;
          }
        }
        // If the successor neither reads nor writes CC, CC liveness flows
        // through it; approximate with its own CCLiveOut.
        bool SuccTouchesCC = false;
        for (const auto &Inst : *Succ)
          if (Inst->writesCC() || Inst->readsCC()) {
            SuccTouchesCC = true;
            break;
          }
        if (SuccNeedsCC || (!SuccTouchesCC && Info.CCLiveOut[Succ]))
          CCOut = true;
      }

      std::vector<bool> In = Out;
      bool CCIn = CCOut;
      transferBlock(*Block, In, CCIn);

      if (Out != Info.LiveOut[Block] || In != Info.LiveIn[Block] ||
          CCOut != Info.CCLiveOut[Block]) {
        Info.LiveOut[Block] = std::move(Out);
        Info.LiveIn[Block] = std::move(In);
        Info.CCLiveOut[Block] = CCOut;
        Changed = true;
      }
    }
  }
  return Info;
}
