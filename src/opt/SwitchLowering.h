//===- opt/SwitchLowering.h - Heuristic switch translation ------*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expands SwitchInst terminators into one of three code shapes according
/// to the heuristic sets of paper Table 2 (n = number of cases, m = value
/// span between the first and last case):
///
///   Set I   (pcc front end, SPARC IPC / SPARC 20):
///              indirect jump   when n >= 4 && m <= 3n
///              binary search   when !indirect && n >= 8
///              linear search   otherwise
///   Set II  (SPARC Ultra I, indirect jumps ~4x as expensive):
///              indirect jump   when n >= 16 && m <= 3n
///              binary search   when !indirect && n >= 8
///              linear search   otherwise
///   Set III (maximum reordering exposure):
///              linear search   always
///   Set IV  (profile-optimal; docs/LOWERING.md):
///              linear search   always — like Set III this maximizes what
///              the detector can see; pass 2 then rebuilds each detected
///              sequence as the cost-optimal comparison tree
///              (cost/OptimalTree.h) or a jump table when the measured
///              profile says either beats the Figure-8 chain.
///
/// Linear searches — and the leaf chains of binary searches — are exactly
/// the compare/branch sequences the reordering transformation detects.
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_OPT_SWITCHLOWERING_H
#define BROPT_OPT_SWITCHLOWERING_H

#include "ir/Module.h"

namespace bropt {

/// The three translation policies of paper Table 2, plus the
/// profile-optimal Set IV added by this reproduction.
enum class SwitchHeuristicSet { SetI, SetII, SetIII, SetIV };

/// \returns "I", "II", "III", or "IV".
const char *switchHeuristicSetName(SwitchHeuristicSet Set);

/// How each switch was translated.
struct SwitchLoweringStats {
  unsigned JumpTables = 0;
  unsigned BinarySearches = 0;
  unsigned LinearSearches = 0;
};

/// The shape chosen for one switch.
enum class SwitchShape { JumpTable, BinarySearch, LinearSearch };

/// Decides the shape for a switch with \p NumCases cases spanning \p Span
/// consecutive values, per \p Set.  Exposed for unit tests.
SwitchShape classifySwitch(SwitchHeuristicSet Set, size_t NumCases,
                           uint64_t Span);

/// Lowers every SwitchInst in \p F.  \returns true if anything changed.
bool lowerSwitches(Function &F, SwitchHeuristicSet Set,
                   SwitchLoweringStats *Stats = nullptr);

/// Lowers every SwitchInst in \p M.
bool lowerSwitches(Module &M, SwitchHeuristicSet Set,
                   SwitchLoweringStats *Stats = nullptr);

} // namespace bropt

#endif // BROPT_OPT_SWITCHLOWERING_H
