//===- opt/SwitchLowering.cpp - Heuristic switch translation ---------------===//

#include "opt/SwitchLowering.h"

#include "ir/IRBuilder.h"
#include "opt/Passes.h"
#include "support/Debug.h"

#include <algorithm>

using namespace bropt;

const char *bropt::switchHeuristicSetName(SwitchHeuristicSet Set) {
  switch (Set) {
  case SwitchHeuristicSet::SetI:
    return "I";
  case SwitchHeuristicSet::SetII:
    return "II";
  case SwitchHeuristicSet::SetIII:
    return "III";
  case SwitchHeuristicSet::SetIV:
    return "IV";
  }
  BROPT_UNREACHABLE("unknown heuristic set");
}

SwitchShape bropt::classifySwitch(SwitchHeuristicSet Set, size_t NumCases,
                                  uint64_t Span) {
  // Density rule from the pcc heuristics (paper Table 2): a jump table is
  // worthwhile when the value span is at most three times the case count.
  bool Dense = Span <= 3 * static_cast<uint64_t>(NumCases);
  switch (Set) {
  case SwitchHeuristicSet::SetI:
    if (NumCases >= 4 && Dense)
      return SwitchShape::JumpTable;
    if (NumCases >= 8)
      return SwitchShape::BinarySearch;
    return SwitchShape::LinearSearch;
  case SwitchHeuristicSet::SetII:
    if (NumCases >= 16 && Dense)
      return SwitchShape::JumpTable;
    if (NumCases >= 8)
      return SwitchShape::BinarySearch;
    return SwitchShape::LinearSearch;
  case SwitchHeuristicSet::SetIII:
    return SwitchShape::LinearSearch;
  case SwitchHeuristicSet::SetIV:
    // Maximum detector exposure, like Set III; the optimal comparison
    // tree (or a profile-chosen jump table) is rebuilt in pass 2 where
    // the range counts exist.
    return SwitchShape::LinearSearch;
  }
  BROPT_UNREACHABLE("unknown heuristic set");
}

namespace {

class SwitchExpander {
public:
  SwitchExpander(Function &F, SwitchHeuristicSet Set,
                 SwitchLoweringStats *Stats)
      : F(F), Set(Set), Stats(Stats) {}

  bool run() {
    bool Changed = false;
    // Collect first: expansion adds blocks.
    std::vector<BasicBlock *> WithSwitch;
    for (auto &Block : F)
      if (Block->hasTerminator() &&
          Block->getTerminator()->getKind() == InstKind::Switch)
        WithSwitch.push_back(Block.get());
    for (BasicBlock *Block : WithSwitch) {
      expand(Block);
      Changed = true;
    }
    if (Changed)
      F.recomputePredecessors();
    return Changed;
  }

private:
  void expand(BasicBlock *Block) {
    auto Switch = Block->removeAt(Block->size() - 1);
    const auto *Sw = cast<SwitchInst>(Switch.get());
    Operand Value = Sw->getValue();
    BasicBlock *Default = Sw->getDefault();

    std::vector<SwitchInst::Case> Cases = Sw->getCases();
    std::sort(Cases.begin(), Cases.end(),
              [](const SwitchInst::Case &A, const SwitchInst::Case &B) {
                return A.Value < B.Value;
              });

    IRBuilder Builder(Block);
    if (Cases.empty()) {
      Builder.emitJump(Default);
      return;
    }

    // A constant selector folds to a direct jump.
    if (Value.isImm()) {
      BasicBlock *Target = Default;
      for (const SwitchInst::Case &Case : Cases)
        if (Case.Value == Value.getImm())
          Target = Case.Target;
      Builder.emitJump(Target);
      return;
    }

    uint64_t Span = static_cast<uint64_t>(Cases.back().Value) -
                    static_cast<uint64_t>(Cases.front().Value) + 1;
    switch (classifySwitch(Set, Cases.size(), Span)) {
    case SwitchShape::JumpTable:
      if (Stats)
        ++Stats->JumpTables;
      emitJumpTable(Block, Value, Cases, Default);
      return;
    case SwitchShape::BinarySearch:
      if (Stats)
        ++Stats->BinarySearches;
      emitBinarySearch(Block, Value, Cases, 0, Cases.size(), Default);
      return;
    case SwitchShape::LinearSearch:
      if (Stats)
        ++Stats->LinearSearches;
      emitLinearChain(Block, Value, Cases, 0, Cases.size(), Default);
      return;
    }
    BROPT_UNREACHABLE("unknown switch shape");
  }

  /// Emits eq-tests for Cases[Begin, End) starting in \p Block; control
  /// falls through to \p Default when none matches.
  void emitLinearChain(BasicBlock *Block, Operand Value,
                       const std::vector<SwitchInst::Case> &Cases,
                       size_t Begin, size_t End, BasicBlock *Default) {
    assert(Begin < End && "empty linear chain");
    IRBuilder Builder(Block);
    for (size_t Index = Begin; Index != End; ++Index) {
      bool Last = Index + 1 == End;
      BasicBlock *Next =
          Last ? Default : F.createBlockAfter(Block, "case.next");
      Builder.emitCmp(Value, Operand::imm(Cases[Index].Value));
      Builder.emitCondBr(CondCode::EQ, Cases[Index].Target, Next);
      Block = Next;
      Builder.setInsertionPoint(Block);
    }
  }

  /// Emits a binary-search tree over Cases[Begin, End) starting in
  /// \p Block.  Small partitions degenerate to linear chains, mirroring
  /// what compilers emit at the leaves.
  void emitBinarySearch(BasicBlock *Block, Operand Value,
                        const std::vector<SwitchInst::Case> &Cases,
                        size_t Begin, size_t End, BasicBlock *Default) {
    size_t Count = End - Begin;
    if (Count <= 3) {
      emitLinearChain(Block, Value, Cases, Begin, End, Default);
      return;
    }
    size_t Mid = Begin + Count / 2;
    IRBuilder Builder(Block);
    // cmp v,c; beq case; then reuse the condition codes for the direction
    // test — one comparison feeds both branches, as on SPARC.
    Builder.emitCmp(Value, Operand::imm(Cases[Mid].Value));
    BasicBlock *Direction = F.createBlockAfter(Block, "bsearch.dir");
    Builder.emitCondBr(CondCode::EQ, Cases[Mid].Target, Direction);
    BasicBlock *Left = F.createBlockAfter(Direction, "bsearch.lt");
    BasicBlock *Right = F.createBlockAfter(Left, "bsearch.ge");
    Builder.setInsertionPoint(Direction);
    Builder.emitCondBr(CondCode::LT, Left, Right);
    emitBinarySearch(Left, Value, Cases, Begin, Mid, Default);
    emitBinarySearch(Right, Value, Cases, Mid + 1, End, Default);
  }

  /// Emits a bounds-checked indirect jump through a dense table.
  void emitJumpTable(BasicBlock *Block, Operand Value,
                     const std::vector<SwitchInst::Case> &Cases,
                     BasicBlock *Default) {
    int64_t Lo = Cases.front().Value;
    int64_t Hi = Cases.back().Value;
    IRBuilder Builder(Block);
    Builder.emitCmp(Value, Operand::imm(Lo));
    BasicBlock *HighCheck = F.createBlockAfter(Block, "jt.high");
    Builder.emitCondBr(CondCode::LT, Default, HighCheck);
    Builder.setInsertionPoint(HighCheck);
    Builder.emitCmp(Value, Operand::imm(Hi));
    BasicBlock *Dispatch = F.createBlockAfter(HighCheck, "jt.dispatch");
    Builder.emitCondBr(CondCode::GT, Default, Dispatch);
    Builder.setInsertionPoint(Dispatch);

    Operand Index = Value;
    if (Lo != 0) {
      unsigned IndexReg = F.newReg();
      Builder.emitBinary(BinaryOp::Sub, IndexReg, Value, Operand::imm(Lo));
      Index = Operand::reg(IndexReg);
    }
    std::vector<BasicBlock *> Table(
        static_cast<size_t>(static_cast<uint64_t>(Hi) -
                            static_cast<uint64_t>(Lo) + 1),
        Default);
    for (const SwitchInst::Case &Case : Cases)
      Table[static_cast<size_t>(Case.Value - Lo)] = Case.Target;
    Builder.emitIndirectJump(Index, std::move(Table));
  }

  Function &F;
  SwitchHeuristicSet Set;
  SwitchLoweringStats *Stats;
};

} // namespace

bool bropt::lowerSwitches(Function &F, SwitchHeuristicSet Set,
                          SwitchLoweringStats *Stats) {
  if (!SwitchExpander(F, Set, Stats).run())
    return false;
  notifyPassObserver("switch-lowering", F);
  return true;
}

bool bropt::lowerSwitches(Module &M, SwitchHeuristicSet Set,
                          SwitchLoweringStats *Stats) {
  bool Changed = false;
  for (auto &F : M)
    Changed |= lowerSwitches(*F, Set, Stats);
  return Changed;
}
