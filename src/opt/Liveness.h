//===- opt/Liveness.h - Register and condition-code liveness ----*- C++ -*-===//
//
// Part of the bropt project, a reproduction of "Improving Performance by
// Branch Reordering" (Yang, Uh & Whalley, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward dataflow computing per-block live-out register sets and whether
/// condition codes are live out of each block.  Used by dead-code
/// elimination and by the reordering transformation's side-effect analysis
/// (paper Definition 6: an instruction is a side effect when its update can
/// reach a use outside the range condition).
///
//===----------------------------------------------------------------------===//

#ifndef BROPT_OPT_LIVENESS_H
#define BROPT_OPT_LIVENESS_H

#include "ir/Function.h"

#include <unordered_map>
#include <vector>

namespace bropt {

/// Per-function liveness facts.
struct LivenessInfo {
  /// LiveOut[B][Reg] = register Reg is live when B's terminator completes.
  std::unordered_map<const BasicBlock *, std::vector<bool>> LiveOut;
  /// LiveIn[B][Reg] = register Reg is live when B is entered.
  std::unordered_map<const BasicBlock *, std::vector<bool>> LiveIn;
  /// CCLiveOut[B] = some path from B consumes the condition codes before
  /// writing them.
  std::unordered_map<const BasicBlock *, bool> CCLiveOut;
};

/// Computes liveness for \p F.  Call recomputePredecessors() first if the
/// CFG changed.
LivenessInfo computeLiveness(const Function &F);

} // namespace bropt

#endif // BROPT_OPT_LIVENESS_H
