//===- examples/future_work.cpp - The paper's §10 extensions --------------===//
//
// Demonstrates the two future-work directions of paper §10 that bropt
// implements:
//
//  1. common-successor branch reordering (Figure 14): a && chain over
//     different variables, profiled with 2^n combination counters and
//     permuted so the most discriminating test runs first;
//
//  2. profile-guided search-method selection: the same dense switch is
//     emitted as a jump table when the profile is uniform and the dispatch
//     is cheap, but stays a reordered linear search when one case
//     dominates or indirect jumps are expensive.
//
// Build and run:  ./examples/future_work
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "sim/Interpreter.h"

#include <cstdio>
#include <random>

using namespace bropt;

namespace {

uint64_t runBranches(Module &M, std::string_view Input) {
  Interpreter Interp(M);
  Interp.setInput(Input);
  return Interp.run().Counts.CondBranches;
}

void demoCommonSuccessor() {
  std::printf("1. Common-successor reordering (Figure 14)\n\n");
  const char *Source = R"(
    int hits = 0; int misses = 0;
    int main() {
      int a;
      while ((a = getchar()) != -1) {
        int b = getchar();
        int d = getchar();
        if (a < 64 && b != 'x' && d == 'z')
          hits = hits + 1;
        else
          misses = misses + 1;
      }
      printint(hits); printint(misses);
      return 0;
    }
  )";
  // The d-test almost always fails: testing it first short-circuits.
  std::mt19937 Rng(7);
  std::string Input;
  for (int Index = 0; Index < 3000; ++Index) {
    Input.push_back(static_cast<char>(Rng() % 64));       // a passes
    Input.push_back(static_cast<char>('a' + Rng() % 20)); // b passes
    Input.push_back(Rng() % 20 == 0 ? 'z' : 'q');         // d rarely
  }

  CompileOptions Plain;
  CompileOptions WithCS;
  WithCS.EnableCommonSuccessorReordering = true;
  CompileResult Baseline = compileBaseline(Source, Plain);
  CompileResult Reordered = compileWithReordering(Source, Input, WithCS);
  if (!Baseline.ok() || !Reordered.ok()) {
    std::fprintf(stderr, "compile failed\n");
    std::exit(1);
  }
  std::printf("  common-successor sequences reordered: %u\n",
              Reordered.CommonStats.Reordered);
  std::printf("  expected branches per visit: %.2f -> %.2f\n",
              Reordered.CommonStats.SumExpectedBefore,
              Reordered.CommonStats.SumExpectedAfter);
  std::printf("  executed conditional branches: %llu -> %llu\n\n",
              static_cast<unsigned long long>(
                  runBranches(*Baseline.M, Input)),
              static_cast<unsigned long long>(
                  runBranches(*Reordered.M, Input)));
}

void demoMethodSelection() {
  std::printf("2. Profile-guided search-method selection\n\n");
  const char *Source = R"(
    int counts[8];
    int main() {
      int c;
      while ((c = getchar()) != -1)
        switch (c) {
        case 0: counts[0] = counts[0] + 1; break;
        case 1: counts[1] = counts[1] + 1; break;
        case 2: counts[2] = counts[2] + 1; break;
        case 3: counts[3] = counts[3] + 1; break;
        case 4: counts[4] = counts[4] + 1; break;
        case 5: counts[5] = counts[5] + 1; break;
        case 6: counts[6] = counts[6] + 1; break;
        case 7: counts[7] = counts[7] + 1; break;
        }
      int i = 0;
      while (i < 8) { printint(counts[i]); i = i + 1; }
      return 0;
    }
  )";

  std::mt19937 Rng(9);
  std::string Uniform, Skewed;
  for (int Index = 0; Index < 4000; ++Index) {
    Uniform.push_back(static_cast<char>(Rng() % 8));
    Skewed.push_back(static_cast<char>(Rng() % 16 == 0 ? Rng() % 8 : 5));
  }

  struct Scenario {
    const char *Name;
    const std::string *Training;
    unsigned IndirectJumpCost;
  };
  const Scenario Scenarios[] = {
      {"uniform profile, cheap ijmp (ipc)", &Uniform, 2},
      {"uniform profile, costly ijmp (ultra)", &Uniform, 8},
      {"skewed profile, cheap ijmp (ipc)", &Skewed, 2},
  };
  for (const Scenario &S : Scenarios) {
    CompileOptions Options;
    Options.HeuristicSet = SwitchHeuristicSet::SetIII;
    Options.Reorder.EnableMethodSelection = true;
    Options.Reorder.Cost.IndirectJumpCost = S.IndirectJumpCost;
    CompileResult Result =
        compileWithReordering(Source, *S.Training, Options);
    if (!Result.ok()) {
      std::fprintf(stderr, "compile failed: %s\n", Result.Error.c_str());
      std::exit(1);
    }
    std::printf("  %-38s -> %s\n", S.Name,
                Result.Stats.JumpTables ? "jump table"
                                        : "reordered linear search");
  }
  std::printf("\n");
}

void demoGroupChains() {
  std::printf("3. Sequence-of-sequences reordering (Figure 14 d/e)\n\n");
  // An || of two && groups: the groups themselves reorder as units when
  // the profile says the second clause usually decides.
  const char *Source = R"(
    int hits = 0; int misses = 0;
    int main() {
      int t;
      while ((t = getchar()) != -1) {
        int a = getchar();
        int b = getchar();
        int d = getchar();
        int e = getchar();
        if (a == 'p' && b == 'q' || d == 'r' && e == 's')
          hits = hits + 1;
        else
          misses = misses + 1;
      }
      printint(hits); printint(misses);
      return 0;
    }
  )";
  std::mt19937 Rng(13);
  std::string Input;
  for (int Index = 0; Index < 2500; ++Index) {
    Input.push_back('#');
    bool Second = Rng() % 100 < 90; // the second clause usually matches
    Input.push_back(Second ? 'x' : 'p');
    Input.push_back(Second ? 'x' : 'q');
    Input.push_back(Second ? 'r' : 'x');
    Input.push_back(Second ? 's' : 'x');
  }
  CompileOptions Plain;
  CompileOptions WithCS;
  WithCS.EnableCommonSuccessorReordering = true;
  CompileResult Baseline = compileBaseline(Source, Plain);
  CompileResult Reordered = compileWithReordering(Source, Input, WithCS);
  if (!Baseline.ok() || !Reordered.ok()) {
    std::fprintf(stderr, "compile failed\n");
    std::exit(1);
  }
  std::printf("  chains reordered: %u (expected branches %.2f -> %.2f)\n",
              Reordered.CommonStats.Reordered,
              Reordered.CommonStats.SumExpectedBefore,
              Reordered.CommonStats.SumExpectedAfter);
  std::printf("  executed conditional branches: %llu -> %llu\n\n",
              static_cast<unsigned long long>(
                  runBranches(*Baseline.M, Input)),
              static_cast<unsigned long long>(
                  runBranches(*Reordered.M, Input)));
}

} // namespace

int main() {
  std::printf("future_work: the paper's §10 extensions, implemented\n\n");
  demoCommonSuccessor();
  demoGroupChains();
  demoMethodSelection();
  return 0;
}
