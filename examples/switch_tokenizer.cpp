//===- examples/switch_tokenizer.cpp - Switch heuristics + reordering -----===//
//
// A small tokenizer whose hot switch is translated three ways (paper
// Table 2): a jump table, a binary search, or a linear search.  The
// example compiles it under each heuristic set, reorders, and compares
// dynamic cost under the two machine models — showing why Set II exists
// (indirect jumps were ~4x more expensive on the SPARC Ultra I) and why
// reordered linear searches can beat tables there.
//
// Build and run:  ./examples/switch_tokenizer
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "cost/MachineModel.h"
#include "sim/Interpreter.h"
#include "workloads/Inputs.h"

#include <cstdio>

using namespace bropt;

namespace {

const char *Source = R"(
  int idents = 0; int numbers = 0; int ops = 0; int spaces = 0; int other = 0;
  int main() {
    int c;
    while ((c = getchar()) != -1) {
      switch (c) {
      case '(': ops = ops + 1; break;
      case ')': ops = ops + 1; break;
      case '*': ops = ops + 1; break;
      case '+': ops = ops + 1; break;
      case ',': ops = ops + 1; break;
      case '-': ops = ops + 1; break;
      case '.': ops = ops + 1; break;
      case '/': ops = ops + 1; break;
      case ';': ops = ops + 1; break;
      case '<': ops = ops + 1; break;
      case '=': ops = ops + 1; break;
      case '>': ops = ops + 1; break;
      default:
        if (c >= '0' && c <= '9')
          numbers = numbers + 1;
        else if (c >= 'a' && c <= 'z')
          idents = idents + 1;
        else
          other = other + 1;
      }
    }
    printint(idents); printint(numbers); printint(ops);
    printint(spaces); printint(other);
    return 0;
  }
)";

} // namespace

int main() {
  std::printf("switch_tokenizer: one switch, three translations "
              "(paper Table 2)\n\n");
  std::string Training = cSourceText(/*Seed=*/11, 30000);
  std::string Test = cSourceText(/*Seed=*/12, 30000);

  std::printf("%-8s %12s %12s %14s %14s %10s\n", "set", "insts",
              "branches", "cycles (ipc)", "cycles (ultra)", "ijmps");
  for (SwitchHeuristicSet Set :
       {SwitchHeuristicSet::SetI, SwitchHeuristicSet::SetII,
        SwitchHeuristicSet::SetIII}) {
    CompileOptions Options;
    Options.HeuristicSet = Set;
    CompileResult Result = compileWithReordering(Source, Training, Options);
    if (!Result.ok()) {
      std::fprintf(stderr, "compile failed: %s\n", Result.Error.c_str());
      return 1;
    }
    Interpreter Interp(*Result.M);
    Interp.setInput(Test);
    RunResult Run = Interp.run();
    if (Run.Trapped) {
      std::fprintf(stderr, "run trapped: %s\n", Run.TrapReason.c_str());
      return 1;
    }
    std::printf("%-8s %12llu %12llu %14llu %14llu %10llu\n",
                switchHeuristicSetName(Set),
                static_cast<unsigned long long>(Run.Counts.TotalInsts),
                static_cast<unsigned long long>(Run.Counts.CondBranches),
                static_cast<unsigned long long>(computeCycles(
                    MachineModel::sparcIPCLike(), Run.Counts)),
                static_cast<unsigned long long>(computeCycles(
                    MachineModel::sparcUltraLike(), Run.Counts)),
                static_cast<unsigned long long>(Run.Counts.IndirectJumps));
  }

  std::printf(
      "\nReading the rows: Set I emits a jump table (the only row with "
      "indirect jumps) and pays a 4x dispatch premium on the ultra-like "
      "machine; Set II refuses small tables and falls back to a binary "
      "search; Set III turns the switch into a linear search that "
      "reordering then optimizes for the profile — here most characters "
      "miss the table entirely, so the reordered search wins on both "
      "machines, exactly the method-selection opportunity §10 points "
      "at (see examples/future_work).\n");
  return 0;
}
