//===- examples/quickstart.cpp - The paper's Figure 1, end to end ---------===//
//
// Compiles the character classifier from paper Figure 1, profiles it on
// English-like text, applies branch reordering, and shows the effect:
// the rebuilt code tests "greater than blank" first, exactly the
// hand-optimization of Figure 1(c), found automatically.
//
// Build and run:  ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "ir/Printer.h"
#include "sim/Interpreter.h"
#include "workloads/Inputs.h"

#include <cstdio>

using namespace bropt;

namespace {

// The paper's Figure 1(a): classify characters read from input.  A human
// would reorder these tests by hand (Figures 1(b) and 1(c)); bropt does it
// from a profile.
const char *Source = R"(
  int newlines = 0; int blanks = 0; int others = 0;
  int main() {
    int c;
    while ((c = getchar()) != -1) {
      if (c == ' ')
        blanks = blanks + 1;
      else if (c == '\n')
        newlines = newlines + 1;
      else
        others = others + 1;
    }
    printint(newlines); printint(blanks); printint(others);
    return 0;
  }
)";

void report(const char *Label, Module &M, std::string_view Input) {
  Interpreter Interp(M);
  Interp.setInput(Input);
  RunResult Run = Interp.run();
  std::printf("%-10s %9llu instructions, %8llu branches, %7llu jumps\n",
              Label,
              static_cast<unsigned long long>(Run.Counts.TotalInsts),
              static_cast<unsigned long long>(Run.Counts.CondBranches),
              static_cast<unsigned long long>(Run.Counts.UncondJumps));
}

} // namespace

int main() {
  std::printf("bropt quickstart: reordering the paper's Figure 1\n\n");

  // Training and test inputs: mostly letters, some blanks, few newlines.
  std::string Training = proseText(/*Seed=*/1, 20000);
  std::string Test = proseText(/*Seed=*/2, 20000);

  CompileOptions Options;
  CompileResult Baseline = compileBaseline(Source, Options);
  CompileResult Reordered = compileWithReordering(Source, Training, Options);
  if (!Baseline.ok() || !Reordered.ok()) {
    std::fprintf(stderr, "compile failed: %s%s\n", Baseline.Error.c_str(),
                 Reordered.Error.c_str());
    return 1;
  }

  std::printf("Detected %u reorderable sequence(s); reordered %u.\n",
              Reordered.Stats.Detected, Reordered.Stats.Reordered);
  for (auto [Before, After] : Reordered.Stats.Lengths)
    std::printf("Sequence grew from %u to %u conditional branches "
                "(default ranges became explicit, Figure 1(c)).\n\n",
                Before, After);

  std::printf("--- original hot loop ---\n%s\n",
              printFunction(*Baseline.M->getFunction("main")).c_str());
  std::printf("--- reordered hot loop ---\n%s\n",
              printFunction(*Reordered.M->getFunction("main")).c_str());

  std::printf("Dynamic counts on unseen test input:\n");
  report("original", *Baseline.M, Test);
  report("reordered", *Reordered.M, Test);
  return 0;
}
