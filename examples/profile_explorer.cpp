//===- examples/profile_explorer.cpp - Inside the cost model --------------===//
//
// Walks one sequence through the paper's machinery step by step: detection
// (Figure 4), the computed default ranges (Figure 7), the profile bins
// (§5), and the ordering decision with its Equation 1-4 cost — both the
// O(n) Figure 8 algorithm and the exhaustive oracle, which agree (paper
// §6 reports the same).
//
// Build and run:  ./examples/profile_explorer
//
//===----------------------------------------------------------------------===//

#include "core/Instrumentation.h"
#include "core/OrderingSelection.h"
#include "core/Reorder.h"
#include "driver/Driver.h"
#include "workloads/Inputs.h"

#include <cstdio>

using namespace bropt;

namespace {

const char *Source = R"(
  int digits = 0; int blanks = 0; int uppers = 0; int others = 0;
  int main() {
    int c;
    while ((c = getchar()) != -1) {
      if (c >= '0' && c <= '9')
        digits = digits + 1;
      else if (c == ' ')
        blanks = blanks + 1;
      else if (c >= 'A' && c <= 'Z')
        uppers = uppers + 1;
      else
        others = others + 1;
    }
    printint(digits); printint(blanks); printint(uppers); printint(others);
    return 0;
  }
)";

} // namespace

int main() {
  std::printf("profile_explorer: one sequence through the paper's "
              "machinery\n\n");

  CompileOptions Options;
  Pass1Result Pass1 = runPass1(Source, proseText(/*Seed=*/21, 30000),
                               Options);
  if (!Pass1.ok()) {
    std::fprintf(stderr, "pass 1 failed: %s\n", Pass1.Error.c_str());
    return 1;
  }

  SequenceKeyer Keyer;
  for (const RangeSequence &Seq : Pass1.Sequences) {
    std::printf("Sequence %u in %s, branch variable r%u\n", Seq.Id,
                Seq.F->getName().c_str(), Seq.ValueReg);
    std::printf("  explicit conditions (detection order):\n");
    for (const RangeConditionDesc &Cond : Seq.Conds)
      std::printf("    %-12s -> %-16s cost %u, %u branch(es)\n",
                  Cond.R.toString().c_str(), Cond.Target->getLabel().c_str(),
                  Cond.Cost, Cond.branchCount());
    std::printf("  default ranges (computed cover, paper Figure 7):\n");
    for (const Range &R : Seq.DefaultRanges)
      std::printf("    %s\n", R.toString().c_str());

    const ProfileEntry *Prof = Pass1.Profile.lookupSequence(
        ProfileKind::RangeBins, Seq.F->getName(), Seq.signature(),
        Seq.Conds.size() + Seq.DefaultRanges.size(), Keyer.next(
            ProfileKind::RangeBins, Seq.F->getName()));
    if (!Prof || Prof->totalExecutions() == 0) {
      std::printf("  (never executed in training)\n\n");
      continue;
    }
    double Total = static_cast<double>(Prof->totalExecutions());
    std::printf("  profile over %llu head executions:\n",
                static_cast<unsigned long long>(Prof->totalExecutions()));

    // Rebuild the cost-model inputs the way the rewriter does.
    std::vector<RangeInfo> Infos;
    size_t Bin = 0;
    for (size_t Index = 0; Index < Seq.Conds.size(); ++Index, ++Bin) {
      RangeInfo Info;
      Info.R = Seq.Conds[Index].R;
      Info.Target = Seq.Conds[Index].Target;
      Info.P = Prof->BinCounts[Bin] / Total;
      Info.C = Seq.Conds[Index].Cost;
      Info.OrigIndex = Index;
      Infos.push_back(Info);
    }
    for (const Range &R : Seq.DefaultRanges) {
      RangeInfo Info;
      Info.R = R;
      Info.Target = Seq.DefaultTarget;
      Info.P = Prof->BinCounts[Bin++] / Total;
      Info.C = R.branchCount() * 2;
      Info.WasExplicit = false;
      Infos.push_back(Info);
    }
    for (const RangeInfo &Info : Infos)
      std::printf("    %-12s p=%.4f c=%u p/c=%.5f%s\n",
                  Info.R.toString().c_str(), Info.P, Info.C,
                  Info.P / Info.C, Info.WasExplicit ? "" : "  (default)");

    OrderingDecision Greedy = selectOrdering(Infos);
    std::printf("  Figure 8 decision: cost %.4f, test order:", Greedy.Cost);
    for (size_t Index : Greedy.Order)
      std::printf(" %s", Infos[Index].R.toString().c_str());
    std::printf("\n    implicit (fall through to %s):",
                Greedy.DefaultTarget->getLabel().c_str());
    for (size_t Index : Greedy.Eliminated)
      std::printf(" %s", Infos[Index].R.toString().c_str());
    std::printf("\n");

    if (Infos.size() <= 10) {
      OrderingDecision Oracle = selectOrderingExhaustive(Infos);
      std::printf("  exhaustive oracle cost: %.4f (%s)\n", Oracle.Cost,
                  std::abs(Oracle.Cost - Greedy.Cost) < 1e-9
                      ? "matches Figure 8, as the paper observed"
                      : "MISMATCH");
    }
    std::printf("\n");
  }
  return 0;
}
