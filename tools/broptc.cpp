//===- tools/broptc.cpp - Command-line driver for bropt --------------------===//
//
// Compiles a Mini-C source file through the two-pass branch-reordering
// pipeline and optionally runs it:
//
//   broptc program.mc --train train.txt --input test.txt --run --stats
//
// Options:
//   --train FILE          training input for the profiling pass; may be
//                         given several times to merge training sets
//                         (no --train and no --profile-in means no
//                         reordering: baseline build)
//   --input FILE          input for --run (default: empty)
//   --set I|II|III|IV     switch-translation heuristic set (default I);
//                         Set IV adds optimal-tree lowering and method
//                         selection on top of Set III (docs/LOWERING.md)
//   --lowering setN       alias for --set: set1..set4
//   --common-successor    also reorder common-successor chains (paper §10)
//   --method-selection    allow profile-guided jump tables (paper §10)
//   --ijmp-cost N         indirect-jump cost estimate for method selection
//   --predictor NAME      compile misprediction-aware against a zoo
//                         predictor (paper, gshare, twobit, local, tage,
//                         tage-poor; docs/PREDICT.md): training runs
//                         measure per-branch mispredictions and shape
//                         selection charges them.  With --run, also
//                         reports mispredictions under that predictor
//   --emit-ir             print the final IR
//   --profile-in FILE     load a saved profile (text or binary; see
//                         docs/PROFILE.md) and feed it into pass 2; may be
//                         given several times — profiles merge, and any
//                         --train profile merges in on top.  Also
//                         warm-starts the adaptive engine.
//   --profile-out FILE    write the profile that fed pass 2; with the
//                         adaptive engine, write what the runtime learned
//                         instead (--profile is an alias)
//   --profile-binary      write --profile-out in the binary format
//   --stats               print detection/reordering statistics
//   --run                 interpret the program and echo its output
//   --predict             with --run: report mispredictions (under the
//                         --predictor scheme, default the paper's
//                         (0,2)/2048)
//   --interp MODE         execution engine for --run: 'fused' (default),
//                         'decoded' (pre-decoded flat dispatch), 'tree'
//                         (reference tree-walking interpreter), 'adaptive'
//                         (online tiering; see docs/RUNTIME.md), 'native'
//                         (AOT via the host C compiler), or
//                         'adaptive-native' (the full tier ladder: adaptive
//                         plus tier-2 promotion to machine code)
//   --adaptive            shorthand for --interp adaptive; prints the
//                         tiering counters after the run
//   --adaptive-native     shorthand for --interp adaptive-native; prints
//                         the tiering counters (native tier included)
//   --native-threshold N  estimated branch executions before a hot
//                         function is promoted to the native tier
//   --adaptive-trace      with the adaptive engines: log tier-up, swap,
//                         drift, recompile, and native-tier events to
//                         stderr
//   --serve               run as the broptd daemon instead of compiling;
//                         takes the broptd flag set (--socket PATH, ...)
//                         and ignores the options above (docs/SERVICE.md)
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "exec/ExecBackend.h"
#include "ir/Printer.h"
#include "predict/Zoo.h"
#include "runtime/AdaptiveController.h"
#include "service/ServeMain.h"
#include "sim/Interpreter.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace bropt;

namespace {

[[noreturn]] void usageError(const char *Message) {
  std::fprintf(stderr, "broptc: %s\n", Message);
  std::fprintf(stderr,
               "usage: broptc FILE.mc [--train FILE] [--input FILE] "
               "[--set I|II|III|IV] [--lowering set1..set4]\n"
               "              [--common-successor] [--method-selection] "
               "[--ijmp-cost N] [--predictor NAME]\n"
               "              [--emit-ir] [--profile-in FILE] "
               "[--profile-out FILE] [--profile-binary]\n"
               "              [--stats] [--run] [--predict]\n"
               "              [--interp fused|decoded|tree|adaptive|native|"
               "adaptive-native]\n"
               "              [--adaptive] [--adaptive-native] "
               "[--native-threshold N] [--adaptive-trace]\n"
               "       broptc --serve --socket PATH [flags]   "
               "(daemon mode; see docs/SERVICE.md)\n");
  std::exit(2);
}

std::string readFileOrDie(const std::string &Path) {
  std::ifstream Stream(Path, std::ios::binary);
  if (!Stream) {
    std::fprintf(stderr, "broptc: cannot read '%s'\n", Path.c_str());
    std::exit(1);
  }
  std::ostringstream Buffer;
  Buffer << Stream.rdbuf();
  return Buffer.str();
}

struct CliOptions {
  std::string SourcePath;
  std::vector<std::string> TrainPaths;
  std::string InputPath;
  std::vector<std::string> ProfileInPaths;
  std::string ProfileOutPath;
  bool ProfileBinary = false;
  CompileOptions Compile;
  bool EmitIR = false;
  bool Stats = false;
  bool Run = false;
  bool Predict = false;
  bool AdaptiveStats = false;
  bool AdaptiveTrace = false;
  uint64_t NativeThreshold = 0; ///< 0 keeps the RuntimeOptions default
  Interpreter::Mode InterpMode = Interpreter::Mode::Fused;
};

CliOptions parseArgs(int Argc, char **Argv) {
  CliOptions Options;
  for (int Index = 1; Index < Argc; ++Index) {
    std::string Arg = Argv[Index];
    auto nextValue = [&]() -> std::string {
      if (Index + 1 >= Argc)
        usageError(("missing value after " + Arg).c_str());
      return Argv[++Index];
    };
    if (Arg == "--train") {
      Options.TrainPaths.push_back(nextValue());
    } else if (Arg == "--input") {
      Options.InputPath = nextValue();
    } else if (Arg == "--set" || Arg == "--lowering") {
      std::string Set = nextValue();
      if (Set == "I" || Set == "set1")
        Options.Compile.HeuristicSet = SwitchHeuristicSet::SetI;
      else if (Set == "II" || Set == "set2")
        Options.Compile.HeuristicSet = SwitchHeuristicSet::SetII;
      else if (Set == "III" || Set == "set3")
        Options.Compile.HeuristicSet = SwitchHeuristicSet::SetIII;
      else if (Set == "IV" || Set == "set4")
        Options.Compile.HeuristicSet = SwitchHeuristicSet::SetIV;
      else
        usageError("--set expects I, II, III, or IV "
                   "(--lowering: set1..set4)");
    } else if (Arg == "--common-successor") {
      Options.Compile.EnableCommonSuccessorReordering = true;
    } else if (Arg == "--method-selection") {
      Options.Compile.Reorder.EnableMethodSelection = true;
    } else if (Arg == "--ijmp-cost") {
      Options.Compile.Reorder.Cost.IndirectJumpCost =
          std::atof(nextValue().c_str());
    } else if (Arg == "--predictor") {
      Options.Compile.Predictor = nextValue();
      if (!makePredictor(Options.Compile.Predictor))
        usageError("--predictor expects a zoo name: paper, gshare, "
                   "twobit, local, tage, or tage-poor");
    } else if (Arg == "--emit-ir") {
      Options.EmitIR = true;
    } else if (Arg == "--profile" || Arg == "--profile-out") {
      Options.ProfileOutPath = nextValue();
    } else if (Arg == "--profile-in") {
      Options.ProfileInPaths.push_back(nextValue());
    } else if (Arg == "--profile-binary") {
      Options.ProfileBinary = true;
    } else if (Arg == "--stats") {
      Options.Stats = true;
    } else if (Arg == "--run") {
      Options.Run = true;
    } else if (Arg == "--predict") {
      Options.Predict = true;
    } else if (Arg == "--interp") {
      std::string Mode = nextValue();
      if (std::optional<Interpreter::Mode> Parsed = parseExecMode(Mode))
        Options.InterpMode = *Parsed;
      else
        usageError("--interp expects 'fused', 'decoded', 'tree', "
                   "'adaptive', 'native', or 'adaptive-native'");
    } else if (Arg == "--adaptive") {
      Options.InterpMode = Interpreter::Mode::Adaptive;
      Options.AdaptiveStats = true;
    } else if (Arg == "--adaptive-native") {
      Options.InterpMode = Interpreter::Mode::AdaptiveNative;
      Options.AdaptiveStats = true;
    } else if (Arg == "--native-threshold") {
      Options.NativeThreshold =
          static_cast<uint64_t>(std::atoll(nextValue().c_str()));
    } else if (Arg == "--adaptive-trace") {
      if (Options.InterpMode != Interpreter::Mode::AdaptiveNative)
        Options.InterpMode = Interpreter::Mode::Adaptive;
      Options.AdaptiveStats = true;
      Options.AdaptiveTrace = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      usageError(("unknown option " + Arg).c_str());
    } else if (Options.SourcePath.empty()) {
      Options.SourcePath = Arg;
    } else {
      usageError("more than one source file given");
    }
  }
  if (Options.SourcePath.empty())
    usageError("no source file given");
  return Options;
}

} // namespace

int main(int Argc, char **Argv) {
  // `broptc --serve` is a thin alias for broptd: same flags, same loop
  // (docs/SERVICE.md).  Intercepted before the compile-driver parse,
  // which would otherwise demand a source file.
  for (int Index = 1; Index < Argc; ++Index) {
    if (std::strcmp(Argv[Index], "--serve") != 0)
      continue;
    ServiceOptions Serve;
    bool Verbose = false;
    std::string Error;
    if (!parseServeArgs(Argc, Argv, Serve, Verbose, &Error)) {
      std::fprintf(stderr,
                   "broptc --serve: %s\nusage: broptc --serve --socket "
                   "PATH [flags]\n%s",
                   Error.c_str(), serveUsage());
      return 2;
    }
    return runServeLoop(std::move(Serve), Verbose);
  }

  CliOptions Options = parseArgs(Argc, Argv);
  std::string Source = readFileOrDie(Options.SourcePath);

  // Assemble the pass-2 profile: saved files first (merging), then any
  // fresh training runs on top.  Conflicting records are skipped with a
  // warning, never silently misattributed.
  ProfileDB Profile;
  bool HaveProfile = false;
  for (const std::string &Path : Options.ProfileInPaths) {
    ProfileDB Loaded;
    std::string Error;
    if (!Loaded.loadFile(Path, &Error)) {
      std::fprintf(stderr, "broptc: cannot load profile '%s': %s\n",
                   Path.c_str(), Error.c_str());
      return 1;
    }
    ProfileMergeStats Merge = Profile.merge(Loaded);
    for (const std::string &Conflict : Merge.Conflicts)
      std::fprintf(stderr, "broptc: warning: %s: %s\n", Path.c_str(),
                   Conflict.c_str());
    HaveProfile = true;
  }
  std::vector<std::string> TrainingSets;
  std::vector<std::string_view> TrainingViews;
  if (!Options.TrainPaths.empty()) {
    for (const std::string &Path : Options.TrainPaths)
      TrainingSets.push_back(readFileOrDie(Path));
    TrainingViews.assign(TrainingSets.begin(), TrainingSets.end());
    Pass1Result Pass1 = runPass1(Source, TrainingViews, Options.Compile);
    if (!Pass1.ok()) {
      std::fprintf(stderr, "broptc: %s\n", Pass1.Error.c_str());
      return 1;
    }
    ProfileMergeStats Merge = Profile.merge(Pass1.Profile);
    for (const std::string &Conflict : Merge.Conflicts)
      std::fprintf(stderr, "broptc: warning: training profile: %s\n",
                   Conflict.c_str());
    HaveProfile = true;
  }

  CompileResult Result;
  if (HaveProfile) {
    Result = compileWithProfile(Source, Profile, Options.Compile);
    Result.ProfileText = Profile.serializeText();
    // Fresh training runs also yield an edge-weight measurement for the
    // ext-TSP layout; with only --profile-in, compileWithProfile already
    // imported any saved edge records.
    if (!TrainingViews.empty())
      applyMeasuredLayout(Result, TrainingViews, Profile, Options.Compile);
  } else {
    Result = compileBaseline(Source, Options.Compile);
  }
  if (!Result.ok()) {
    std::fprintf(stderr, "broptc: %s\n", Result.Error.c_str());
    return 1;
  }

  if (Options.Stats) {
    std::printf("switch translation: %u jump table(s), %u binary "
                "search(es), %u linear search(es)\n",
                Result.SwitchStats.JumpTables,
                Result.SwitchStats.BinarySearches,
                Result.SwitchStats.LinearSearches);
    std::printf("sequences: %u detected, %u reordered, %u never executed, "
                "%u profile problems, %u emitted as jump tables, "
                "%u as optimal trees\n",
                Result.Stats.Detected, Result.Stats.Reordered,
                Result.Stats.NeverExecuted, Result.Stats.ProfileProblems,
                Result.Stats.JumpTables, Result.Stats.OptimalTrees);
    if (Result.Stats.Reordered > 0)
      std::printf("modeled cost: chain %.3f, chosen %.3f\n",
                  Result.Stats.ChainModelCost, Result.Stats.ChosenModelCost);
    if (Result.Stats.Layout.FunctionsLaidOut > 0)
      std::printf("layout: %u function(s) ext-TSP, %u chains merged, "
                  "%u blocks moved, %u kept incumbent, fall-through "
                  "weight %llu -> %llu\n",
                  Result.Stats.Layout.FunctionsLaidOut,
                  Result.Stats.Layout.ChainsMerged,
                  Result.Stats.Layout.BlocksMoved,
                  Result.Stats.Layout.KeptIncumbent,
                  static_cast<unsigned long long>(
                      Result.Stats.Layout.FallThroughWeightBefore),
                  static_cast<unsigned long long>(
                      Result.Stats.Layout.FallThroughWeightAfter));
    if (Options.Compile.EnableCommonSuccessorReordering)
      std::printf("common-successor: %u detected, %u reordered "
                  "(expected branches %.2f -> %.2f)\n",
                  Result.CommonStats.Detected, Result.CommonStats.Reordered,
                  Result.CommonStats.SumExpectedBefore,
                  Result.CommonStats.SumExpectedAfter);
    for (auto [Before, After] : Result.Stats.Lengths)
      std::printf("  sequence length %u -> %u branches\n", Before, After);
    std::printf("static code size: %zu instructions\n",
                Result.M->codeSize());
  }

  if (Options.EmitIR)
    std::printf("%s", printModule(*Result.M).c_str());

  std::unique_ptr<AdaptiveController> Adaptive;
  if (Options.Run) {
    std::string Input;
    if (!Options.InputPath.empty())
      Input = readFileOrDie(Options.InputPath);
    // All engines — including the native AOT backend — dispatch through
    // the exec seam; broptc no longer hand-assembles an Interpreter.
    ExecRequest Req;
    Req.Input = Input;
    if (Options.InterpMode == Interpreter::Mode::Adaptive ||
        Options.InterpMode == Interpreter::Mode::AdaptiveNative) {
      RuntimeOptions RO;
      RO.NativeTier =
          Options.InterpMode == Interpreter::Mode::AdaptiveNative;
      if (Options.NativeThreshold)
        RO.NativeThreshold = Options.NativeThreshold;
      if (Options.AdaptiveTrace)
        RO.Trace = [](const std::string &Event) {
          std::fprintf(stderr, "[adaptive] %s\n", Event.c_str());
        };
      // The tier-2 rebuild must select shapes under the same model as the
      // offline compile (Set IV preset, armed cost model included).
      RO.Reorder = effectiveReorderOptions(Options.Compile);
      RO.Predictor = Options.Compile.Predictor;
      Adaptive = std::make_unique<AdaptiveController>(*Result.M, RO);
      if (HaveProfile)
        Adaptive->importProfile(Profile);
      Req.Adaptive = Adaptive.get();
    }
    std::unique_ptr<Predictor> Measured;
    if (Options.Predict || !Options.Compile.Predictor.empty()) {
      // Measure under the targeted predictor; plain --predict keeps the
      // paper's (0,2)/2048 hardware scheme.
      Measured = makePredictor(Options.Compile.Predictor.empty()
                                   ? "paper"
                                   : Options.Compile.Predictor);
      Req.AttachedPredictor = Measured.get();
    }
    RunResult Run = executeModule(*Result.M, Options.InterpMode, Req);
    if (Adaptive)
      Adaptive->drainBackgroundWork();
    if (Run.Trapped) {
      std::fprintf(stderr, "broptc: program trapped: %s\n",
                   Run.TrapReason.c_str());
      return 1;
    }
    std::fwrite(Run.Output.data(), 1, Run.Output.size(), stdout);
    std::fprintf(stderr,
                 "exit %lld; %llu instructions, %llu branches, "
                 "%llu jumps, %llu indirect\n",
                 static_cast<long long>(Run.ExitValue),
                 static_cast<unsigned long long>(Run.Counts.TotalInsts),
                 static_cast<unsigned long long>(Run.Counts.CondBranches),
                 static_cast<unsigned long long>(Run.Counts.UncondJumps),
                 static_cast<unsigned long long>(Run.Counts.IndirectJumps));
    if (Options.InterpMode == Interpreter::Mode::Native)
      std::fprintf(stderr,
                   "(native: dynamic counters are not collected)\n");
    if (Measured)
      std::fprintf(stderr, "mispredictions (%s): %llu of %llu branches\n",
                   Measured->name(),
                   static_cast<unsigned long long>(
                       Measured->getStats().Mispredictions),
                   static_cast<unsigned long long>(
                       Measured->getStats().Branches));
    if (Adaptive && Options.AdaptiveStats) {
      RuntimeStats RS = Adaptive->stats();
      std::fprintf(
          stderr,
          "adaptive: %llu samples (%llu dropped), %llu tier-up(s), "
          "%llu swap(s) (%llu deferred), %llu drift event(s), "
          "%llu recompile(s) (%llu suppressed, %.3fs)\n",
          static_cast<unsigned long long>(RS.SamplesTaken),
          static_cast<unsigned long long>(RS.DroppedSamples),
          static_cast<unsigned long long>(RS.TierUps),
          static_cast<unsigned long long>(RS.Swaps),
          static_cast<unsigned long long>(RS.DeferredSwaps),
          static_cast<unsigned long long>(RS.DriftEvents),
          static_cast<unsigned long long>(RS.Recompiles),
          static_cast<unsigned long long>(RS.RecompilesSuppressed),
          RS.RecompileSeconds);
      if (Adaptive->options().NativeTier)
        std::fprintf(
            stderr,
            "native tier: %llu promotion(s), %llu native run(s), "
            "%llu recheck(s), %llu deopt(s), %llu compile(s) "
            "(%llu failed, %llu cancelled, %llu suppressed, %.3fs)\n",
            static_cast<unsigned long long>(RS.NativeTierUps),
            static_cast<unsigned long long>(RS.NativeRuns),
            static_cast<unsigned long long>(RS.NativeRecheckRuns),
            static_cast<unsigned long long>(RS.NativeDeopts),
            static_cast<unsigned long long>(RS.NativeCompiles),
            static_cast<unsigned long long>(RS.NativeCompilesFailed),
            static_cast<unsigned long long>(RS.NativeCompilesCancelled),
            static_cast<unsigned long long>(RS.NativeCompilesSuppressed),
            RS.NativeCompileSeconds);
    }
  }

  if (!Options.ProfileOutPath.empty()) {
    // With the adaptive engine, write what the runtime learned — the
    // headline round trip: `--adaptive --profile-out=p` then
    // `--profile-in=p` reproduces the tier-up's orderings offline.
    // Otherwise write the profile that fed pass 2.
    ProfileDB Out;
    if (Adaptive)
      Adaptive->exportProfile(Out);
    else if (HaveProfile && !Out.deserialize(Result.ProfileText)) {
      std::fprintf(stderr, "broptc: internal error: profile re-read failed\n");
      return 1;
    }
    std::string Error;
    if (!Out.saveFile(Options.ProfileOutPath, Options.ProfileBinary,
                      &Error)) {
      std::fprintf(stderr, "broptc: cannot write '%s': %s\n",
                   Options.ProfileOutPath.c_str(), Error.c_str());
      return 1;
    }
  }
  return 0;
}
