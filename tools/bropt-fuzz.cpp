//===- tools/bropt-fuzz.cpp - Differential-testing fuzzer CLI --------------===//
//
// Runs randomized differential-testing campaigns over the full pipeline:
//
//   bropt-fuzz --programs 200 --seed 1 --corpus fuzz/corpus
//
// Each program is generated from a seed, compiled baseline and reordered
// under a seed-derived configuration, and checked against four oracles
// (behavior, engine agreement, per-pass verification, ordering cost).
// Violations are delta-debugged to a minimal reproducer.
//
// Options:
//   --programs N      number of programs to run (default 200)
//   --seconds N       run for N wall-clock seconds instead of a fixed count
//   --seed N          base campaign seed (default 1)
//   --corpus DIR      write minimized reproducers into DIR
//   --fault KIND      inject a pipeline fault (self-test): 'corrupt-reorder'
//                     breaks a reordered branch, 'pretend-cost' inverts the
//                     cost check, 'pretend-lowering' inverts the Set IV
//                     never-worse check; the run then EXPECTS violations and
//                     fails if the oracles stay silent.
//                     'hang-native-compile' wedges the tier-2 JIT's host
//                     compiler instead; that run expects the INVERSE — zero
//                     violations and at least one recorded compile
//                     cancellation — proving the compile deadline tears the
//                     hang down without observable divergence.
//                     'drop-connection' (implies --serve) kills client
//                     connections to the in-process broptd mid-request;
//                     also inverted — zero violations and at least one
//                     recorded drop prove a vanishing client never
//                     corrupts the daemon's shared caches or shards
//   --serve           also replay every program through a campaign-wide
//                     in-process broptd and hold the wire responses to
//                     bit-identical agreement with direct execution
//   --minimize-rounds N  cap delta-debugging passes (default 16)
//   --native MODE     native-engine agreement checks: 'auto' (default)
//                     runs them when a host compiler is available and
//                     silently skips otherwise, 'on' fails fast when no
//                     compiler is found, 'off' disables them
//   --adaptive-native MODE  tier-2 (adaptive-native) engine agreement
//                     checks, same modes and semantics as --native
//   --lowering-check MODE  Set IV lowering-optimality invariant: 'on'
//                     (default) recompiles every program under Set IV and
//                     holds it to observable identity plus the never-worse
//                     model-cost guarantee, 'off' disables the recompile
//                     to keep smoke campaigns cheap
//   --quiet           suppress per-violation detail
//
// Exit status: 0 when expectations hold (no violations normally; at least
// one detected violation under --fault), 1 otherwise, 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "codegen/NativeRunner.h"
#include "fuzz/Fuzzer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace bropt;

namespace {

[[noreturn]] void usageError(const char *Message) {
  std::fprintf(stderr, "bropt-fuzz: %s\n", Message);
  std::fprintf(stderr,
               "usage: bropt-fuzz [--programs N] [--seconds N] [--seed N]\n"
               "                  [--corpus DIR] [--fault corrupt-reorder|"
               "pretend-cost|pretend-lowering|hang-native-compile|"
               "drop-connection]\n"
               "                  [--serve] [--minimize-rounds N] "
               "[--native on|off|auto] [--adaptive-native on|off|auto]\n"
               "                  [--lowering-check on|off] [--quiet]\n");
  std::exit(2);
}

uint64_t parseCount(const char *Text, const char *Flag) {
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Text, &End, 10);
  if (!End || *End)
    usageError((std::string("bad value for ") + Flag).c_str());
  return Value;
}

} // namespace

int main(int argc, char **argv) {
  FuzzOptions Opts;
  Opts.Verbose = true;
  bool RequireNative = false;
  for (int Arg = 1; Arg < argc; ++Arg) {
    auto needValue = [&](const char *Flag) -> const char * {
      if (Arg + 1 >= argc)
        usageError((std::string(Flag) + " needs a value").c_str());
      return argv[++Arg];
    };
    if (!std::strcmp(argv[Arg], "--programs"))
      Opts.Programs = static_cast<unsigned>(parseCount(
          needValue("--programs"), "--programs"));
    else if (!std::strcmp(argv[Arg], "--seconds"))
      Opts.Seconds = static_cast<unsigned>(parseCount(
          needValue("--seconds"), "--seconds"));
    else if (!std::strcmp(argv[Arg], "--seed"))
      Opts.Seed = parseCount(needValue("--seed"), "--seed");
    else if (!std::strcmp(argv[Arg], "--corpus"))
      Opts.CorpusDir = needValue("--corpus");
    else if (!std::strcmp(argv[Arg], "--minimize-rounds"))
      Opts.MinimizeRounds = static_cast<unsigned>(parseCount(
          needValue("--minimize-rounds"), "--minimize-rounds"));
    else if (!std::strcmp(argv[Arg], "--fault")) {
      const char *Kind = needValue("--fault");
      if (!std::strcmp(Kind, "corrupt-reorder"))
        Opts.Fault = FaultKind::CorruptReorderedBlock;
      else if (!std::strcmp(Kind, "pretend-cost"))
        Opts.Fault = FaultKind::PretendCostRegression;
      else if (!std::strcmp(Kind, "pretend-lowering"))
        Opts.Fault = FaultKind::PretendLoweringRegression;
      else if (!std::strcmp(Kind, "hang-native-compile"))
        Opts.Fault = FaultKind::HangNativeCompile;
      else if (!std::strcmp(Kind, "drop-connection"))
        Opts.Fault = FaultKind::DropConnection;
      else
        usageError("unknown --fault kind");
    } else if (!std::strcmp(argv[Arg], "--serve"))
      Opts.CheckServiceEngine = true;
    else if (!std::strcmp(argv[Arg], "--native")) {
      const char *Policy = needValue("--native");
      if (!std::strcmp(Policy, "off"))
        Opts.CheckNativeEngine = false;
      else if (!std::strcmp(Policy, "on")) {
        Opts.CheckNativeEngine = true;
        RequireNative = true;
      } else if (!std::strcmp(Policy, "auto"))
        Opts.CheckNativeEngine = true;
      else
        usageError("unknown --native mode (want on, off, or auto)");
    } else if (!std::strcmp(argv[Arg], "--adaptive-native")) {
      const char *Policy = needValue("--adaptive-native");
      if (!std::strcmp(Policy, "off"))
        Opts.CheckAdaptiveNativeEngine = false;
      else if (!std::strcmp(Policy, "on")) {
        Opts.CheckAdaptiveNativeEngine = true;
        RequireNative = true;
      } else if (!std::strcmp(Policy, "auto"))
        Opts.CheckAdaptiveNativeEngine = true;
      else
        usageError("unknown --adaptive-native mode (want on, off, or auto)");
    } else if (!std::strcmp(argv[Arg], "--lowering-check")) {
      const char *Policy = needValue("--lowering-check");
      if (!std::strcmp(Policy, "off"))
        Opts.CheckLoweringOptimal = false;
      else if (!std::strcmp(Policy, "on"))
        Opts.CheckLoweringOptimal = true;
      else
        usageError("unknown --lowering-check mode (want on or off)");
    } else if (!std::strcmp(argv[Arg], "--quiet"))
      Opts.Verbose = false;
    else
      usageError((std::string("unknown option ") + argv[Arg]).c_str());
  }

  if (RequireNative && !NativeRunner::shared().available()) {
    std::fprintf(stderr,
                 "bropt-fuzz: native checks forced on, but %s\n",
                 NativeRunner::shared().unavailableReason().c_str());
    return 2;
  }

  FuzzCampaignResult Result = runFuzzCampaign(Opts);

  std::printf("bropt-fuzz: %u programs, %u compile errors, %zu violations, "
              "%llu native compile cancellations, %llu dropped "
              "connections\n",
              Result.ProgramsRun, Result.CompileErrors,
              Result.Violations.size(),
              (unsigned long long)Result.NativeCompileCancellations,
              (unsigned long long)Result.DroppedConnections);
  for (const FuzzViolation &V : Result.Violations)
    std::printf("  seed %llu: %s (%zu statements minimized%s%s)\n",
                (unsigned long long)V.ProgramSeed,
                violationKindName(V.Kind), V.Statements,
                V.Path.empty() ? "" : ", written to ",
                V.Path.c_str());

  // Generated programs must always compile; a compile error is a bug in
  // the generator even when the pipeline behaves.
  bool Failed = Result.CompileErrors != 0;
  if (Opts.Fault == FaultKind::None)
    Failed |= !Result.Violations.empty();
  else if (Opts.Fault == FaultKind::HangNativeCompile) {
    // Inverted expectation: the wedged compiler must never surface as a
    // violation (the fused tier keeps running), but the deadline must
    // actually have fired at least once.
    Failed |= !Result.Violations.empty();
    if (!Result.NativeCompileCancellations) {
      std::printf("bropt-fuzz: hang fault injected but no compile was "
                  "cancelled — the tier-2 deadline is not firing\n");
      Failed = true;
    }
  } else if (Opts.Fault == FaultKind::DropConnection) {
    // Inverted the same way: dropped connections must never surface as a
    // violation (the daemon's shared state stays sound), but the daemon
    // must actually have recorded at least one drop.
    Failed |= !Result.Violations.empty();
    if (!Result.DroppedConnections) {
      std::printf("bropt-fuzz: drop-connection fault injected but the "
                  "daemon recorded no dropped connection\n");
      Failed = true;
    }
  } else if (Result.Violations.empty()) {
    std::printf("bropt-fuzz: fault injection found no violations — the "
                "oracles are not detecting the fault\n");
    Failed = true;
  }
  return Failed ? 1 : 0;
}
