//===- tools/broptd.cpp - The bropt compile-profile-execute daemon --------===//
//
// Serves compile, execute, evaluate, profile-export, and profile-merge
// requests over a Unix-domain socket (docs/SERVICE.md):
//
//   broptd --socket /tmp/bropt.sock --threads 8 --queue-high-water 128
//
// Runs until SIGINT/SIGTERM or a client shutdown request, then drains
// gracefully: admitted work completes, in-flight tier-2 native compiles
// past the drain deadline are cancelled.
//
//===----------------------------------------------------------------------===//

#include "service/ServeMain.h"

#include <cstdio>

using namespace bropt;

int main(int Argc, char **Argv) {
  ServiceOptions Options;
  bool Verbose = false;
  std::string Error;
  if (!parseServeArgs(Argc, Argv, Options, Verbose, &Error)) {
    std::fprintf(stderr, "broptd: %s\nusage: broptd --socket PATH [flags]\n%s",
                 Error.c_str(), serveUsage());
    return 2;
  }
  return runServeLoop(std::move(Options), Verbose);
}
