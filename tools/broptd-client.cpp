//===- tools/broptd-client.cpp - CLI client for broptd --------------------===//
//
// Drives a running broptd over its Unix-domain socket:
//
//   broptd-client --socket PATH compile FILE.mc [--train FILE]... [opts]
//   broptd-client --socket PATH run FILE.mc [--input FILE] [--mode NAME]
//   broptd-client --socket PATH evaluate WORKLOAD
//   broptd-client --socket PATH profile-export KEY [--out FILE]
//   broptd-client --socket PATH profile-merge KEY FILE
//   broptd-client --socket PATH stats
//   broptd-client --socket PATH shutdown
//
// Shared compile options: --train FILE (repeatable), --profile-in FILE,
// --set I..IV, --common-successor, --method-selection, --warm-start.
// `run` adds --input FILE and --mode tree|decoded|fused|adaptive|native|
// adaptive-native.  Rejected requests (backpressure) are retried after
// the server's hint.
//
//===----------------------------------------------------------------------===//

#include "exec/ExecBackend.h"
#include "service/Client.h"
#include "sim/Interpreter.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace bropt;

namespace {

[[noreturn]] void usageError(const char *Message) {
  std::fprintf(
      stderr,
      "broptd-client: %s\n"
      "usage: broptd-client --socket PATH COMMAND [options]\n"
      "commands: compile FILE.mc | run FILE.mc | evaluate WORKLOAD |\n"
      "          profile-export KEY | profile-merge KEY FILE |\n"
      "          stats | shutdown\n"
      "compile/run options: --train FILE, --profile-in FILE, --set I..IV,\n"
      "          --common-successor, --method-selection, --warm-start\n"
      "run options: --input FILE, --mode NAME\n",
      Message);
  std::exit(2);
}

std::string readFileOrDie(const std::string &Path) {
  std::ifstream Stream(Path, std::ios::binary);
  if (!Stream) {
    std::fprintf(stderr, "broptd-client: cannot read '%s'\n", Path.c_str());
    std::exit(1);
  }
  std::ostringstream Buffer;
  Buffer << Stream.rdbuf();
  return Buffer.str();
}

void printStats(const ServiceStats &S) {
  auto row = [](const char *Name, uint64_t Value) {
    std::printf("%-24s %llu\n", Name, static_cast<unsigned long long>(Value));
  };
  row("requests_accepted", S.RequestsAccepted);
  row("requests_completed", S.RequestsCompleted);
  row("requests_rejected", S.RequestsRejected);
  row("protocol_errors", S.ProtocolErrors);
  row("dropped_connections", S.DroppedConnections);
  row("queue_depth", S.QueueDepth);
  row("queue_high_water_seen", S.QueueHighWaterSeen);
  row("queue_wait_micros_total", S.QueueWaitMicrosTotal);
  row("queue_wait_micros_max", S.QueueWaitMicrosMax);
  row("compile_hits", S.CompileHits);
  row("compile_misses", S.CompileMisses);
  row("artifact_evictions", S.ArtifactEvictions);
  row("profile_merges", S.ProfileMerges);
  row("profile_merge_conflicts", S.ProfileMergeConflicts);
  row("profile_aggregations", S.ProfileAggregations);
  row("profile_records", S.ProfileRecords);
  row("warm_starts", S.WarmStarts);
  row("learned_exports", S.LearnedExports);
  row("active_connections", S.ActiveConnections);
  row("tier_two_cancellations", S.TierTwoCancellations);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath, Command;
  std::vector<std::string> Positional;
  ServiceRequest Request;
  std::string InputPath, OutPath;

  for (int Index = 1; Index < Argc; ++Index) {
    std::string Arg = Argv[Index];
    auto nextValue = [&]() -> std::string {
      if (Index + 1 >= Argc)
        usageError(("missing value after " + Arg).c_str());
      return Argv[++Index];
    };
    if (Arg == "--socket") {
      SocketPath = nextValue();
    } else if (Arg == "--train") {
      Request.Spec.TrainingInputs.push_back(readFileOrDie(nextValue()));
    } else if (Arg == "--profile-in") {
      Request.Spec.ProfileData = readFileOrDie(nextValue());
    } else if (Arg == "--set") {
      std::string Set = nextValue();
      if (Set == "I")
        Request.Spec.HeuristicSet = 0;
      else if (Set == "II")
        Request.Spec.HeuristicSet = 1;
      else if (Set == "III")
        Request.Spec.HeuristicSet = 2;
      else if (Set == "IV")
        Request.Spec.HeuristicSet = 3;
      else
        usageError("--set expects I, II, III, or IV");
    } else if (Arg == "--common-successor") {
      Request.Spec.CommonSuccessor = true;
    } else if (Arg == "--method-selection") {
      Request.Spec.MethodSelection = true;
    } else if (Arg == "--warm-start") {
      Request.Spec.WarmStart = true;
    } else if (Arg == "--input") {
      InputPath = nextValue();
    } else if (Arg == "--mode") {
      std::string Mode = nextValue();
      if (std::optional<Interpreter::Mode> Parsed = parseExecMode(Mode))
        Request.Mode = static_cast<uint8_t>(*Parsed);
      else
        usageError("--mode expects tree|decoded|fused|adaptive|native|"
                   "adaptive-native");
    } else if (Arg == "--out") {
      OutPath = nextValue();
    } else if (!Arg.empty() && Arg[0] == '-') {
      usageError(("unknown option " + Arg).c_str());
    } else if (Command.empty()) {
      Command = Arg;
    } else {
      Positional.push_back(Arg);
    }
  }
  if (SocketPath.empty())
    usageError("--socket PATH is required");
  if (Command.empty())
    usageError("no command given");

  if (Command == "compile" || Command == "run") {
    if (Positional.size() != 1)
      usageError("expected exactly one source file");
    Request.Kind = Command == "run" ? RequestKind::Execute
                                    : RequestKind::Compile;
    Request.Spec.Source = readFileOrDie(Positional[0]);
    if (!InputPath.empty())
      Request.Input = readFileOrDie(InputPath);
  } else if (Command == "evaluate") {
    if (Positional.size() != 1)
      usageError("expected exactly one workload name");
    Request.Kind = RequestKind::Evaluate;
    Request.WorkloadName = Positional[0];
  } else if (Command == "profile-export") {
    if (Positional.size() != 1)
      usageError("expected exactly one program key");
    Request.Kind = RequestKind::ProfileExport;
    Request.ProgramKey = Positional[0];
  } else if (Command == "profile-merge") {
    if (Positional.size() != 2)
      usageError("expected a program key and a profile file");
    Request.Kind = RequestKind::ProfileMerge;
    Request.ProgramKey = Positional[0];
    Request.ProfileData = readFileOrDie(Positional[1]);
  } else if (Command == "stats") {
    Request.Kind = RequestKind::Stats;
  } else if (Command == "shutdown") {
    Request.Kind = RequestKind::Shutdown;
  } else {
    usageError(("unknown command " + Command).c_str());
  }

  ServiceClient Client;
  std::string Error;
  // Retry briefly: covers the race with a daemon still binding its
  // socket (scripts routinely start broptd & then call the client).
  if (!Client.connectWithRetry(SocketPath, 5.0, &Error)) {
    std::fprintf(stderr, "broptd-client: %s\n", Error.c_str());
    return 1;
  }
  ServiceResponse Response;
  if (!Client.roundTripRetrying(Request, Response, &Error)) {
    std::fprintf(stderr, "broptd-client: %s\n", Error.c_str());
    return 1;
  }
  if (Response.Status == ResponseStatus::ShuttingDown) {
    std::fprintf(stderr, "broptd-client: daemon is shutting down\n");
    return 1;
  }
  if (Response.Status == ResponseStatus::Error) {
    std::fprintf(stderr, "broptd-client: %s\n", Response.Error.c_str());
    return 1;
  }

  switch (Request.Kind) {
  case RequestKind::Compile:
    std::printf("program %s: %u sequences reordered, %llu instructions%s%s\n",
                Response.ProgramKey.c_str(), Response.SequencesReordered,
                static_cast<unsigned long long>(Response.CodeSize),
                Response.CompileCacheHit ? " (cache hit)" : "",
                Response.WarmStarted ? " (warm start)" : "");
    break;
  case RequestKind::Execute:
    fwrite(Response.Output.data(), 1, Response.Output.size(), stdout);
    if (Response.Trapped) {
      std::fprintf(stderr, "broptd-client: trap: %s\n",
                   Response.TrapReason.c_str());
      return 1;
    }
    return static_cast<int>(Response.ExitValue & 0xff);
  case RequestKind::Evaluate:
    std::printf("%s: branch delta %+.2f%%, outputs %s, %u reordered\n",
                Request.WorkloadName.c_str(), Response.BranchDeltaPercent,
                Response.OutputsMatch ? "match" : "MISMATCH",
                Response.SequencesReordered);
    return Response.OutputsMatch ? 0 : 1;
  case RequestKind::ProfileExport:
    if (OutPath.empty()) {
      fwrite(Response.ProfileData.data(), 1, Response.ProfileData.size(),
             stdout);
    } else {
      std::ofstream Out(OutPath, std::ios::binary);
      Out.write(Response.ProfileData.data(),
                static_cast<std::streamsize>(Response.ProfileData.size()));
      if (!Out) {
        std::fprintf(stderr, "broptd-client: cannot write '%s'\n",
                     OutPath.c_str());
        return 1;
      }
    }
    break;
  case RequestKind::ProfileMerge:
    std::printf("merged: %llu added, %llu merged, %llu skipped\n",
                static_cast<unsigned long long>(Response.MergeAdded),
                static_cast<unsigned long long>(Response.MergeMerged),
                static_cast<unsigned long long>(Response.MergeSkipped));
    break;
  case RequestKind::Stats:
    printStats(Response.Stats);
    break;
  case RequestKind::Shutdown:
    std::printf("shutdown requested\n");
    break;
  }
  return 0;
}
